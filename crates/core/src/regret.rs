//! Throughput regret of LiBRA against `Oracle-Data`.
//!
//! The §8 evaluation reports byte *deficits* per entry; scenario search
//! needs a single bounded score per scenario plus a coverage signature
//! describing *where* in feature space the scenario exercised the
//! classifier. This module provides both:
//!
//! * [`entry_regret`] — relative bytes lost vs `Oracle-Data` on one
//!   dataset entry, with the [`CoverageKey`] bucket it landed in.
//! * [`RegretReport`] — the per-scenario aggregate: mean/max regret,
//!   sorted coverage set, and a stable digest for determinism checks.
//!
//! Scoring is sequential per scenario on purpose — the fuzz engine
//! parallelises at the candidate level, and keeping the inner loop
//! serial means a scenario's report is identical no matter which worker
//! evaluated it.

use crate::classifier::LibraClassifier;
use crate::sim::{run_policy_segment, LinkState, PolicyKind, SegmentData, SimConfig};
use libra_dataset::DatasetEntry;
use libra_util::{binser, checksum};
use serde::{Deserialize, Serialize};

/// A bucket of the coverage grid: SNR-drop band × impairment kind ×
/// the MCS LiBRA's run ended on. The grid is intentionally coarse
/// (3 dB SNR bands) — coverage should reward *new regimes*, not every
/// float wiggle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoverageKey {
    /// `floor(snr_diff_db / 3)`, clamped to `[-8, 16]`.
    pub snr_bucket: i8,
    /// `Impairment` discriminant (0 = displacement, 1 = blockage,
    /// 2 = interference).
    pub impairment: u8,
    /// MCS in use at the end of LiBRA's segment.
    pub mcs: u8,
}

impl CoverageKey {
    /// Width of one SNR bucket, dB.
    pub const SNR_STEP_DB: f64 = 3.0;

    fn snr_bucket(snr_diff_db: f64) -> i8 {
        let b = (snr_diff_db / Self::SNR_STEP_DB).floor();
        b.clamp(-8.0, 16.0) as i8
    }
}

/// Regret of one dataset entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntryRegret {
    /// Bytes `Oracle-Data` delivered, MB.
    pub oracle_mb: f64,
    /// Bytes LiBRA delivered, MB.
    pub libra_mb: f64,
    /// Relative regret `max(0, oracle − libra) / oracle`, in `[0, 1]`
    /// (0 when the oracle itself delivered nothing).
    pub regret: f64,
    /// Coverage bucket this entry exercised.
    pub key: CoverageKey,
}

/// Scores one entry: LiBRA vs `Oracle-Data` over a `flow_ms` flow,
/// both starting from the initial state's best MCS.
pub fn entry_regret(
    entry: &DatasetEntry,
    clf: &LibraClassifier,
    sim: &SimConfig,
    flow_ms: f64,
) -> EntryRegret {
    let seg = SegmentData::from_entry(entry, flow_ms);
    let state = LinkState::at_mcs(entry.initial.best_mcs());
    let oracle = run_policy_segment(&seg, PolicyKind::OracleData, None, state, sim);
    let libra = run_policy_segment(&seg, PolicyKind::Libra, Some(clf), state, sim);
    let regret = if oracle.bytes > 0.0 {
        ((oracle.bytes - libra.bytes) / oracle.bytes).clamp(0.0, 1.0)
    } else {
        0.0
    };
    EntryRegret {
        oracle_mb: oracle.bytes / 1e6,
        libra_mb: libra.bytes / 1e6,
        regret,
        key: CoverageKey {
            snr_bucket: CoverageKey::snr_bucket(entry.features.snr_diff_db),
            impairment: entry.impairment as u8,
            mcs: libra.end_state.mcs.min(u8::MAX as usize) as u8,
        },
    }
}

/// Aggregate regret over the entries of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RegretReport {
    /// Per-entry results, in dataset entry order.
    pub entries: Vec<EntryRegret>,
}

impl RegretReport {
    /// Scores a slice of entries in order.
    pub fn score(
        entries: &[DatasetEntry],
        clf: &LibraClassifier,
        sim: &SimConfig,
        flow_ms: f64,
    ) -> Self {
        Self {
            entries: entries
                .iter()
                .map(|e| entry_regret(e, clf, sim, flow_ms))
                .collect(),
        }
    }

    /// Mean relative regret (0 for an empty report).
    pub fn mean(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.regret).sum::<f64>() / self.entries.len() as f64
    }

    /// Maximum relative regret (0 for an empty report).
    pub fn max(&self) -> f64 {
        self.entries.iter().map(|e| e.regret).fold(0.0, f64::max)
    }

    /// Sorted, deduplicated coverage buckets this report touched.
    pub fn coverage(&self) -> Vec<CoverageKey> {
        let mut keys: Vec<CoverageKey> = self.entries.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Stable 64-bit digest of the full report (FNV-1a over its binary
    /// serialisation). Equal digests ⇒ bitwise-equal reports; the
    /// determinism suites compare these across thread counts.
    pub fn digest(&self) -> u64 {
        checksum::fnv1a64(&binser::to_bytes(self).expect("serialize regret report"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_buckets_are_coarse_and_clamped() {
        assert_eq!(CoverageKey::snr_bucket(0.0), 0);
        assert_eq!(CoverageKey::snr_bucket(2.9), 0);
        assert_eq!(CoverageKey::snr_bucket(3.1), 1);
        assert_eq!(CoverageKey::snr_bucket(-0.1), -1);
        assert_eq!(CoverageKey::snr_bucket(1e9), 16);
        assert_eq!(CoverageKey::snr_bucket(-1e9), -8);
    }

    #[test]
    fn empty_report_is_benign() {
        let r = RegretReport::default();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.max(), 0.0);
        assert!(r.coverage().is_empty());
        assert_eq!(r.digest(), RegretReport::default().digest());
    }

    #[test]
    fn coverage_sorted_dedup() {
        let k = |s: i8, i: u8, m: u8| CoverageKey {
            snr_bucket: s,
            impairment: i,
            mcs: m,
        };
        let e = |key| EntryRegret {
            oracle_mb: 1.0,
            libra_mb: 1.0,
            regret: 0.0,
            key,
        };
        let r = RegretReport {
            entries: vec![e(k(2, 1, 3)), e(k(0, 0, 3)), e(k(2, 1, 3))],
        };
        assert_eq!(r.coverage(), vec![k(0, 0, 3), k(2, 1, 3)]);
    }
}
