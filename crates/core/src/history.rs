//! History-window classification — the paper's future-work extension.
//!
//! §7 closes with: *"in the case of 60 GHz, longer observation windows
//! may have some benefits, e.g., they may allow the transmitter to learn
//! blockage patterns and make better decisions in the future. We believe
//! that learning link status patterns over longer periods of time is an
//! interesting avenue for future investigation."*
//!
//! This module implements that investigation: a classifier over the
//! **last K observation windows** instead of one. Features from the K
//! most recent window-to-window transitions are stacked into a single
//! `K×7` row, and the forest is trained on *timeline-derived* data —
//! sequences of segments labelled by the byte-maximizing oracle — so
//! recurring patterns (a blocker stepping in and out, periodic
//! interference bursts) become learnable.
//!
//! The `ablation_history` experiment in `libra-bench` quantifies the
//! gain over single-window LiBRA.

use crate::classifier::LibraClassifier;
use crate::sim::{execute, ConfigData, LinkState, PolicyKind, SegmentData, SimConfig};
use crate::timeline::{generate_timeline, ScenarioType, Timeline, TimelineConfig};
use libra_dataset::measure::{expected_best_pair, expected_pair_measurement};
use libra_dataset::{Action3, Features, Instruments, FEATURE_NAMES};
use libra_ml::{Dataset, ForestConfig, RandomForest};
use libra_util::rng::{derive_seed_index, rng_from_seed};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A rolling buffer of the most recent per-window features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureHistory {
    window: usize,
    buf: VecDeque<Features>,
}

impl FeatureHistory {
    /// A history of depth `window` (K ≥ 1), pre-filled with "no change"
    /// observations.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "history depth must be at least 1");
        let mut buf = VecDeque::with_capacity(window);
        for _ in 0..window {
            buf.push_back(Features::no_change(8));
        }
        Self { window, buf }
    }

    /// Pushes the newest observation, discarding the oldest.
    pub fn push(&mut self, f: Features) {
        self.buf.pop_back();
        self.buf.push_front(f);
    }

    /// The stacked feature row: newest window first, `window × 7` wide.
    pub fn to_row(&self) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.window * 7);
        for f in &self.buf {
            row.extend(f.to_row());
        }
        row
    }

    /// Column names for the stacked row.
    pub fn feature_names(window: usize) -> Vec<String> {
        (0..window)
            .flat_map(|k| FEATURE_NAMES.iter().map(move |n| format!("{n}[t-{k}]")))
            .collect()
    }
}

/// A LiBRA variant whose model sees the last K windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryClassifier {
    forest: RandomForest,
    /// History depth K.
    pub window: usize,
}

impl HistoryClassifier {
    /// Trains on a stacked dataset built by [`collect_history_dataset`].
    pub fn train(data: &Dataset, window: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(data.n_features(), window * 7, "feature width must be K×7");
        assert_eq!(data.n_classes, 3);
        let mut forest = RandomForest::new(ForestConfig::default());
        forest.fit(data, rng);
        Self { forest, window }
    }

    /// Classifies the current history buffer.
    pub fn classify(&self, history: &FeatureHistory) -> Action3 {
        assert_eq!(history.window, self.window, "history depth mismatch");
        match self.forest.predict_one(&history.to_row()) {
            0 => Action3::Ba,
            1 => Action3::Ra,
            _ => Action3::Na,
        }
    }
}

/// Builds a 3-class training set from oracle-labelled timeline segments:
/// each row is the stacked K-window history at a segment entry, labelled
/// with the action the byte-maximizing oracle takes there.
pub fn collect_history_dataset(
    scenarios: &[ScenarioType],
    n_timelines_per_scenario: usize,
    window: usize,
    sim: &SimConfig,
    instruments: &Instruments,
    seed: u64,
) -> Dataset {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (si, &scenario) in scenarios.iter().enumerate() {
        for i in 0..n_timelines_per_scenario {
            let mut rng = rng_from_seed(derive_seed_index(seed ^ (si as u64) << 32, i as u64));
            let tl = generate_timeline(scenario, &TimelineConfig::default(), &mut rng);
            walk_timeline_collecting(&tl, window, sim, instruments, &mut rows, &mut labels);
        }
    }
    Dataset::new(rows, labels, 3, FeatureHistory::feature_names(window))
}

/// Walks one timeline following the oracle, emitting (history, label)
/// pairs.
fn walk_timeline_collecting(
    tl: &Timeline,
    window: usize,
    sim: &SimConfig,
    instruments: &Instruments,
    rows: &mut Vec<Vec<f64>>,
    labels: &mut Vec<usize>,
) {
    let first = &tl.segments[0].scene;
    let mut held_pair = expected_best_pair(first, instruments);
    let mut prev_meas = expected_pair_measurement(first, instruments, held_pair);
    let mut state = LinkState::at_mcs(prev_meas.best_mcs());
    let mut history = FeatureHistory::new(window);

    for (k, segment) in tl.segments.iter().enumerate() {
        let old_meas = expected_pair_measurement(&segment.scene, instruments, held_pair);
        let best_pair = expected_best_pair(&segment.scene, instruments);
        let best_meas = if best_pair == held_pair {
            old_meas.clone()
        } else {
            expected_pair_measurement(&segment.scene, instruments, best_pair)
        };
        let features = if k == 0 {
            Features::extract(&old_meas, &old_meas)
        } else {
            Features::extract(&prev_meas, &old_meas)
        };
        history.push(features);

        let seg = SegmentData {
            old: ConfigData::from_measurement(&old_meas),
            best: ConfigData::from_measurement(&best_meas),
            features,
            duration_ms: segment.duration_ms,
        };
        // Oracle label: best of the three actions by bytes.
        let na = execute(&seg, Action3::Na, state, sim);
        let ra = execute(&seg, Action3::Ra, state, sim);
        let ba = execute(&seg, Action3::Ba, state, sim);
        let (label, out) = if na.bytes >= ra.bytes && na.bytes >= ba.bytes {
            (Action3::Na, na)
        } else if ra.bytes >= ba.bytes {
            (Action3::Ra, ra)
        } else {
            (Action3::Ba, ba)
        };
        rows.push(history.to_row());
        labels.push(label.class_index());

        state = out.end_state;
        if state.did_ba {
            held_pair = best_pair;
            prev_meas = best_meas;
        } else {
            prev_meas = old_meas;
        }
    }
}

/// Runs a timeline with a [`HistoryClassifier`]-driven policy (the
/// K-window LiBRA variant), mirroring `run_timeline` but feeding the
/// classifier a rolling history. Returns the bytes delivered.
pub fn run_timeline_with_history(
    tl: &Timeline,
    clf: &HistoryClassifier,
    fallback: &LibraClassifier,
    sim: &SimConfig,
    instruments: &Instruments,
) -> f64 {
    let first = &tl.segments[0].scene;
    let mut held_pair = expected_best_pair(first, instruments);
    let mut prev_meas = expected_pair_measurement(first, instruments, held_pair);
    let mut state = LinkState::at_mcs(prev_meas.best_mcs());
    let mut history = FeatureHistory::new(clf.window);
    let mut bytes = 0.0;

    for (k, segment) in tl.segments.iter().enumerate() {
        let old_meas = expected_pair_measurement(&segment.scene, instruments, held_pair);
        let best_pair = expected_best_pair(&segment.scene, instruments);
        let best_meas = if best_pair == held_pair {
            old_meas.clone()
        } else {
            expected_pair_measurement(&segment.scene, instruments, best_pair)
        };
        let features = if k == 0 {
            Features::extract(&old_meas, &old_meas)
        } else {
            Features::extract(&prev_meas, &old_meas)
        };
        history.push(features);
        let seg = SegmentData {
            old: ConfigData::from_measurement(&old_meas),
            best: ConfigData::from_measurement(&best_meas),
            features,
            duration_ms: segment.duration_ms,
        };
        let ack_missing = seg.old.cdr[state.mcs] < 0.005;
        let action = if ack_missing {
            fallback.fallback(state.mcs, sim.params.ba_ms())
        } else {
            clf.classify(&history)
        };
        let out = execute(&seg, action, state, sim);
        bytes += out.bytes;
        state = out.end_state;
        if state.did_ba {
            held_pair = best_pair;
            prev_meas = best_meas;
        } else {
            prev_meas = old_meas;
        }
    }
    bytes
}

/// Convenience for evaluation: bytes delivered by single-window LiBRA on
/// the same timeline (shares the fallback rule).
pub fn run_timeline_single_window(
    tl: &Timeline,
    clf: &LibraClassifier,
    sim: &SimConfig,
    instruments: &Instruments,
) -> f64 {
    crate::timeline::run_timeline(tl, PolicyKind::Libra, Some(clf), sim, instruments).bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_mac::{BaOverheadPreset, ProtocolParams};

    fn sim() -> SimConfig {
        SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0))
    }

    #[test]
    fn history_buffer_rolls() {
        let mut h = FeatureHistory::new(3);
        assert_eq!(h.to_row().len(), 21);
        let mut f = Features::no_change(8);
        f.snr_diff_db = 9.0;
        h.push(f);
        let row = h.to_row();
        assert_eq!(row[0], 9.0, "newest first");
        assert_eq!(row[7], 0.0, "older slots unchanged");
        h.push(Features::no_change(8));
        let row = h.to_row();
        assert_eq!(row[0], 0.0);
        assert_eq!(row[7], 9.0, "previous observation shifted back");
    }

    #[test]
    fn feature_names_match_width() {
        let names = FeatureHistory::feature_names(2);
        assert_eq!(names.len(), 14);
        assert!(names[0].contains("[t-0]"));
        assert!(names[13].contains("[t-1]"));
    }

    #[test]
    fn collect_dataset_has_stacked_width() {
        let data = collect_history_dataset(
            &[ScenarioType::Blockage],
            2,
            2,
            &sim(),
            &Instruments::default(),
            1,
        );
        assert_eq!(data.n_features(), 14);
        assert_eq!(data.n_classes, 3);
        assert_eq!(data.len(), 2 * 10, "10 segments per timeline");
        // All three labels should appear across blockage timelines.
        let counts = data.class_counts();
        assert!(counts[2] > 0, "NA segments expected: {counts:?}");
    }

    #[test]
    fn history_classifier_trains_and_runs() {
        let instruments = Instruments::default();
        let data = collect_history_dataset(
            &[ScenarioType::Blockage, ScenarioType::Mobility],
            3,
            2,
            &sim(),
            &instruments,
            2,
        );
        let mut rng = libra_util::rng::rng_from_seed(3);
        let clf = HistoryClassifier::train(&data, 2, &mut rng);
        // Run on a fresh timeline — must deliver data without panicking.
        let mut rng2 = libra_util::rng::rng_from_seed(77);
        let tl = generate_timeline(
            ScenarioType::Blockage,
            &TimelineConfig::default(),
            &mut rng2,
        );
        let fallback_data = data_single();
        let mut rng3 = libra_util::rng::rng_from_seed(4);
        let fallback = LibraClassifier::train(&fallback_data, &mut rng3);
        let bytes = run_timeline_with_history(&tl, &clf, &fallback, &sim(), &instruments);
        assert!(bytes > 0.0);
    }

    /// A tiny synthetic single-window 3-class dataset (for the fallback).
    fn data_single() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let (row, label) = match i % 3 {
                0 => (vec![15.0, 0.0, 0.5, 0.9, 0.5, 0.0, 3.0], 0usize),
                1 => (vec![4.0, -10.0, 0.3, 0.97, 0.9, 0.2, 6.0], 1),
                _ => (vec![0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 6.0], 2),
            };
            features.push(row);
            labels.push(label);
        }
        Dataset::new(
            features,
            labels,
            3,
            FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn depth_mismatch_rejected() {
        let data = collect_history_dataset(
            &[ScenarioType::Blockage],
            1,
            2,
            &sim(),
            &Instruments::default(),
            5,
        );
        let mut rng = libra_util::rng::rng_from_seed(6);
        let clf = HistoryClassifier::train(&data, 2, &mut rng);
        clf.classify(&FeatureHistory::new(3));
    }
}
