//! # libra
//!
//! **LiBRA** — *Learning-based Beam and Rate Adaptation* — the paper's
//! primary contribution (CoNEXT 2020): a practical, standard-compliant
//! link adaptation framework for 60 GHz WLANs that uses PHY-layer
//! information and a 3-class machine-learned model to decide (i) *when*
//! link adaptation is needed and (ii) *which* mechanism — beam
//! adaptation (BA) or rate adaptation (RA) — to trigger first.
//!
//! The crate sits on top of the substrates built for this reproduction
//! (`libra-channel`, `libra-phy`, `libra-mac`, `libra-ml`,
//! `libra-dataset`) and provides:
//!
//! * [`classifier`] — the trained BA/RA/NA random forest plus the
//!   missing-ACK fallback rule of §7.
//! * [`sim`] — the frame-level trace-based simulator implementing
//!   Algorithm 1 (downward RA ladder, BA fallback, adaptive upward
//!   probing) and the five evaluated algorithms: `RA First`, `BA First`,
//!   `LiBRA`, `Oracle-Data`, `Oracle-Delay`.
//! * [`event`] — the discrete-event core under the simulator: a
//!   deterministic event queue plus the per-link adaptation state
//!   machine (`LinkMachine`) extracted from the old monolithic
//!   `execute` loop.
//! * [`multisim`] — the multi-station engine on top of [`event`]:
//!   N APs × M stations with TDMA airtime contention, cross-cell
//!   interference coupling, waypoint roaming, and delayed decisions —
//!   bitwise identical at any thread count.
//! * [`timeline`] — multi-impairment random timelines (§8.3) with a
//!   scene-based runner that tracks each policy's true beam pair.
//! * [`vr`] — the 8K/60FPS VR streaming study (§8.4): synthetic encoded
//!   frame trace and stall accounting.
//! * [`history`] — the paper's future-work extension: classification
//!   over the last K observation windows, trained on oracle-labelled
//!   timeline segments (learning blockage patterns).
//! * [`online`] — outcome-driven online retraining: deriving labels
//!   from the device's own recovery outcomes to adapt the model to an
//!   unseen deployment environment (the cross-building accuracy gap).
//! * [`regret`] — relative throughput regret of LiBRA vs `Oracle-Data`
//!   with coverage-grid bucketing, the scoring function of the
//!   `libra-fuzz` scenario search.
//!
//! ## Quickstart
//!
//! ```no_run
//! use libra::prelude::*;
//! use libra_util::rng::rng_from_seed;
//!
//! // 1. Emulate the measurement campaign and train LiBRA's model.
//! let cfg = CampaignConfig::default();
//! let dataset = generate(&main_campaign_plan(), &cfg);
//! let table = libra_phy::McsTable::x60();
//! let params = GroundTruthParams::default();
//! let mut rng = rng_from_seed(7);
//! let clf = LibraClassifier::train(&dataset.to_ml_3class(&table, &params), &mut rng);
//!
//! // 2. Simulate a link break and compare policies.
//! let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
//! let seg = SegmentData::from_entry(&dataset.entries[0], 1000.0);
//! let state = LinkState::at_mcs(dataset.entries[0].initial.best_mcs());
//! for policy in [PolicyKind::Libra, PolicyKind::RaFirst, PolicyKind::BaFirst] {
//!     let out = run_policy_segment(&seg, policy, Some(&clf), state, &sim);
//!     println!("{:10} {:.1} MB", policy.label(), out.bytes / 1e6);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod event;
pub mod history;
pub mod multisim;
pub mod online;
pub mod regret;
pub mod sim;
pub mod timeline;
pub mod vr;

pub use classifier::{DecidePolicy, Decision, LibraClassifier, CLASS_LABELS};
pub use event::{EventKey, EventQueue, LinkMachine, StepEvent, StepKind};
pub use history::{
    collect_history_dataset, run_timeline_with_history, FeatureHistory, HistoryClassifier,
};
pub use multisim::{
    run_multisim, DelayDist, DelayModel, MultiSimConfig, MultiSimOutcome, StationChannel,
    StationStats,
};
pub use online::{run_timeline_online, OnlineLibra};
pub use regret::{entry_regret, CoverageKey, EntryRegret, RegretReport};
pub use sim::{
    decide_action, execute, run_policy_segment, Config, ConfigData, LinkState, PolicyKind,
    RateSpan, SegmentData, SegmentOutcome, SimConfig,
};
pub use timeline::{
    generate_timeline, run_timeline, ScenarioType, Timeline, TimelineConfig, TimelineResult,
    TimelineSegment,
};
pub use vr::{play, StallReport, VrTrace, COTS_TPUT_SCALE};

/// One-stop imports for examples and the experiment harness.
pub mod prelude {
    pub use crate::classifier::{DecidePolicy, Decision, LibraClassifier};
    pub use crate::sim::{run_policy_segment, LinkState, PolicyKind, SegmentData, SimConfig};
    pub use crate::timeline::{generate_timeline, run_timeline, ScenarioType, TimelineConfig};
    pub use crate::vr::{play, VrTrace, COTS_TPUT_SCALE};
    pub use libra_dataset::{
        generate, main_campaign_plan, testing_campaign_plan, CampaignConfig, CampaignDataset,
        GroundTruthParams, Impairment,
    };
    pub use libra_mac::{BaOverheadPreset, ProtocolParams};
}
