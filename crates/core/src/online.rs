//! Online adaptation — learning from deployment outcomes.
//!
//! The authors' earlier ML-RA study (their ref. [9]) found that learned
//! link adaptation "is environment-dependent and requires online
//! training", and this paper's own cross-building experiment (§6.2)
//! shows the accuracy drop that motivates it. This module implements the
//! missing piece: a LiBRA variant that keeps learning after deployment
//! **without an oracle**, from labels it can derive from its own
//! outcomes:
//!
//! * it chose **RA** and the downward ladder ran dry (BA fallback fired)
//!   → the right answer was *BA*;
//! * it chose **RA** and the ladder settled within a couple of probes →
//!   *RA* was right;
//! * it chose **BA** and the post-sweep throughput barely beats what the
//!   old pair could still deliver → the sweep was unnecessary: *RA*;
//! * it chose **BA** and the new pair is substantially better → *BA*;
//! * the link never broke and no action was taken → *NA*.
//!
//! Derived labels accumulate in a replay buffer; every `retrain_every`
//! observations the forest is refitted on *offline ∪ buffer*, letting
//! the deployment environment reweight the decision boundaries.
//!
//! With a [candidate feed](OnlineLibra::with_candidate_feed) attached,
//! every retrained model is additionally frozen into a
//! [`ModelRegistry`] as a **staged candidate**: the artifact is
//! published (crash-safely) so shadow evaluation and the lifecycle
//! controller can find it, but the `LATEST` pointer is put back where
//! it was — an online retrain may *nominate* `name@vNext`, never bless
//! it. Promotion stays the guarded lifecycle's decision.

use crate::classifier::{DecidePolicy, LibraClassifier};
use crate::sim::{execute, ConfigData, LinkState, SegmentData, SegmentOutcome, SimConfig};
use crate::timeline::Timeline;
use libra_dataset::measure::{expected_best_pair, expected_pair_measurement};
use libra_dataset::{Action3, Features, Instruments};
use libra_infer::ModelRegistry;
use libra_ml::Dataset;
use libra_obs as obs;
use libra_util::rng::rng_from_seed;
use rand::rngs::SmallRng;

/// Where retrained models are staged as shadow-evaluation candidates.
#[derive(Debug, Clone)]
struct CandidateFeed {
    registry: ModelRegistry,
    name: String,
    published: Vec<u32>,
    last_error: Option<String>,
}

/// LiBRA with outcome-driven online retraining.
#[derive(Debug, Clone)]
pub struct OnlineLibra {
    clf: LibraClassifier,
    /// The offline training rows (kept so retraining never forgets the
    /// base campaign).
    offline: Dataset,
    /// Replay buffer of deployment-derived examples.
    buffer: Vec<(Vec<f64>, usize)>,
    /// Retrain after this many new observations.
    pub retrain_every: usize,
    observations_since_retrain: usize,
    rng: SmallRng,
    /// Number of retrains performed (observability).
    pub retrain_count: usize,
    seed: u64,
    feed: Option<CandidateFeed>,
}

impl OnlineLibra {
    /// Builds from an offline 3-class dataset (trains the initial model).
    pub fn new(offline: Dataset, retrain_every: usize, seed: u64) -> Self {
        assert!(retrain_every >= 1);
        let mut rng = rng_from_seed(seed);
        let clf = LibraClassifier::train(&offline, &mut rng);
        Self {
            clf,
            offline,
            buffer: Vec::new(),
            retrain_every,
            observations_since_retrain: 0,
            rng,
            retrain_count: 0,
            seed,
            feed: None,
        }
    }

    /// Attaches a candidate feed: every retrained model is frozen into
    /// `registry` under `name` as a staged (un-blessed) candidate for
    /// shadow evaluation. Publication failures are absorbed — the
    /// learner keeps learning — and surfaced via
    /// [`last_publish_error`](Self::last_publish_error).
    pub fn with_candidate_feed(mut self, registry: ModelRegistry, name: &str) -> Self {
        self.feed = Some(CandidateFeed {
            registry,
            name: name.to_string(),
            published: Vec::new(),
            last_error: None,
        });
        self
    }

    /// Versions this learner has staged as candidates, in order.
    pub fn published_candidates(&self) -> &[u32] {
        self.feed.as_ref().map_or(&[], |f| &f.published)
    }

    /// The most recent candidate-publication failure, if any.
    pub fn last_publish_error(&self) -> Option<&str> {
        self.feed.as_ref().and_then(|f| f.last_error.as_deref())
    }

    /// The current model.
    pub fn classifier(&self) -> &LibraClassifier {
        &self.clf
    }

    /// Buffered deployment examples so far.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Decides the action for a segment (same decision path as the
    /// static LiBRA policy).
    pub fn decide(&self, seg: &SegmentData, state: &LinkState, cfg: &SimConfig) -> Action3 {
        self.clf
            .decide(
                &seg.features,
                &DecidePolicy {
                    current_mcs: state.mcs,
                    ba_overhead_ms: cfg.params.ba_ms(),
                    confidence_gate: cfg.libra_confidence_gate,
                    ack_missing: seg.old.cdr[state.mcs] < 0.005,
                },
            )
            .action
    }

    /// Derives an outcome-based label for the (action, outcome) the
    /// device just lived through. Returns `None` when the outcome is
    /// uninformative.
    pub fn derived_label(
        action: Action3,
        outcome: &SegmentOutcome,
        seg: &SegmentData,
        entry_state: &LinkState,
        cfg: &SimConfig,
    ) -> Option<Action3> {
        let broken = seg.old.cdr[entry_state.mcs] < 0.10
            || seg.old.tput_mbps[entry_state.mcs] * cfg.tput_scale < 150.0;
        match action {
            Action3::Na => {
                if !broken {
                    Some(Action3::Na)
                } else {
                    None // mispredicted NA teaches nothing about BA vs RA
                }
            }
            Action3::Ra => {
                if outcome.end_state.did_ba {
                    // The ladder ran dry and BA had to fire anyway.
                    Some(Action3::Ba)
                } else {
                    match outcome.recovery_delay_ms {
                        // Quick settle: RA was the right call.
                        Some(d) if d <= 3.0 * cfg.params.fat_ms => Some(Action3::Ra),
                        // Slow or no recovery without BA: ambiguous.
                        _ => None,
                    }
                }
            }
            Action3::Ba => {
                // Compare what the sweep bought against what the old pair
                // could still deliver (both are observable: the device
                // measured the old pair right before sweeping).
                let old_best =
                    seg.old.tput_mbps.iter().cloned().fold(0.0f64, f64::max) * cfg.tput_scale;
                let new_best =
                    seg.best.tput_mbps.iter().cloned().fold(0.0f64, f64::max) * cfg.tput_scale;
                if new_best > old_best * 1.15 {
                    Some(Action3::Ba)
                } else {
                    Some(Action3::Ra)
                }
            }
        }
    }

    /// Records one deployment observation and retrains when due.
    pub fn observe(
        &mut self,
        features: &Features,
        action: Action3,
        outcome: &SegmentOutcome,
        seg: &SegmentData,
        entry_state: &LinkState,
        cfg: &SimConfig,
    ) {
        obs::counter("online.observations", 1);
        if let Some(label) = Self::derived_label(action, outcome, seg, entry_state, cfg) {
            obs::counter("online.labels_derived", 1);
            self.buffer.push((features.to_row(), label.class_index()));
            self.observations_since_retrain += 1;
            if self.observations_since_retrain >= self.retrain_every {
                self.retrain();
            }
        }
    }

    /// Refits the forest on offline ∪ buffer, then stages the result as
    /// a registry candidate when a feed is attached.
    pub fn retrain(&mut self) {
        let _span = obs::span("online.retrain");
        obs::record_value("online.retrain.buffer_rows", self.buffer.len() as u64);
        let mut data = self.offline.clone();
        for (row, label) in &self.buffer {
            data.push_row(row, *label);
        }
        self.clf = LibraClassifier::train(&data, &mut self.rng);
        self.observations_since_retrain = 0;
        self.retrain_count += 1;
        self.publish_candidate(data.len() as u64);
    }

    /// Freezes the freshly retrained model into the feed's registry as
    /// a staged candidate: the artifact is published (so it exists on
    /// disk for shadow evaluation), but `LATEST` is restored — only the
    /// lifecycle controller's promote may bless it.
    fn publish_candidate(&mut self, train_rows: u64) {
        let Some(feed) = &mut self.feed else { return };
        let notes = format!("online retrain #{}", self.retrain_count);
        let artifact = self
            .clf
            .to_artifact(&feed.name, self.seed, train_rows, &notes);
        let staged = (|| {
            let before = feed.registry.latest(&feed.name)?;
            let version = feed.registry.save(&feed.name, &artifact)?;
            if let Some(before) = before {
                feed.registry.repoint_latest(&feed.name, before)?;
            }
            Ok::<u32, libra_infer::Error>(version)
        })();
        match staged {
            Ok(version) => {
                obs::counter("online.candidates_published", 1);
                feed.published.push(version);
                feed.last_error = None;
            }
            Err(e) => {
                obs::counter("online.candidate_publish_failed", 1);
                feed.last_error = Some(e.to_string());
            }
        }
    }
}

/// Runs a timeline with the online learner, feeding every outcome back.
/// Returns the bytes delivered (the learner mutates as it goes).
pub fn run_timeline_online(
    tl: &Timeline,
    online: &mut OnlineLibra,
    sim: &SimConfig,
    instruments: &Instruments,
) -> f64 {
    let first = &tl.segments[0].scene;
    let mut held_pair = expected_best_pair(first, instruments);
    let mut prev_meas = expected_pair_measurement(first, instruments, held_pair);
    let mut state = LinkState::at_mcs(prev_meas.best_mcs());
    let mut bytes = 0.0;

    for (k, segment) in tl.segments.iter().enumerate() {
        let old_meas = expected_pair_measurement(&segment.scene, instruments, held_pair);
        let best_pair = expected_best_pair(&segment.scene, instruments);
        let best_meas = if best_pair == held_pair {
            old_meas.clone()
        } else {
            expected_pair_measurement(&segment.scene, instruments, best_pair)
        };
        let features = if k == 0 {
            Features::extract(&old_meas, &old_meas)
        } else {
            Features::extract(&prev_meas, &old_meas)
        };
        let seg = SegmentData {
            old: ConfigData::from_measurement(&old_meas),
            best: ConfigData::from_measurement(&best_meas),
            features,
            duration_ms: segment.duration_ms,
        };
        let entry_state = state;
        let action = online.decide(&seg, &entry_state, sim);
        let out = execute(&seg, action, entry_state, sim);
        online.observe(&features, action, &out, &seg, &entry_state, sim);
        bytes += out.bytes;
        state = out.end_state;
        if state.did_ba {
            held_pair = best_pair;
            prev_meas = best_meas;
        } else {
            prev_meas = old_meas;
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{generate_timeline, ScenarioType, TimelineConfig};
    use libra_dataset::FEATURE_NAMES;
    use libra_mac::{BaOverheadPreset, ProtocolParams};

    fn offline_3class() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let (row, label) = match i % 3 {
                0 => (
                    vec![15.0 + (i % 4) as f64, 0.0, 0.5, 0.9, 0.5, 0.0, 3.0],
                    0usize,
                ),
                1 => (vec![4.0, -15.0, 0.3, 0.97, 0.9, 0.3, 7.0], 1),
                _ => (vec![0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 7.0], 2),
            };
            features.push(row);
            labels.push(label);
        }
        Dataset::new(
            features,
            labels,
            3,
            FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
        )
    }

    fn sim() -> SimConfig {
        SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0))
    }

    fn seg(old_ok: bool) -> SegmentData {
        let dead = ConfigData {
            tput_mbps: vec![0.0; 9].into(),
            cdr: vec![0.0; 9].into(),
        };
        let alive = ConfigData {
            tput_mbps: vec![
                300.0, 850.0, 1400.0, 1950.0, 2400.0, 2800.0, 1200.0, 0.0, 0.0,
            ]
            .into(),
            cdr: vec![1.0, 1.0, 1.0, 1.0, 0.97, 0.92, 0.35, 0.0, 0.0].into(),
        };
        SegmentData {
            old: if old_ok { alive.clone() } else { dead },
            best: alive,
            features: Features::no_change(5),
            duration_ms: 800.0,
        }
    }

    #[test]
    fn ra_that_needed_ba_teaches_ba() {
        let s = seg(false);
        let state = LinkState::at_mcs(5);
        let out = execute(&s, Action3::Ra, state, &sim());
        assert!(out.end_state.did_ba);
        let label = OnlineLibra::derived_label(Action3::Ra, &out, &s, &state, &sim());
        assert_eq!(label, Some(Action3::Ba));
    }

    #[test]
    fn quick_ra_settle_teaches_ra() {
        let mut s = seg(true);
        // Break only the top: MCS 5 dead, 4 fine.
        s.old.cdr[5] = 0.01;
        s.old.tput_mbps[5] = 30.0;
        let state = LinkState::at_mcs(5);
        let out = execute(&s, Action3::Ra, state, &sim());
        assert!(!out.end_state.did_ba);
        let label = OnlineLibra::derived_label(Action3::Ra, &out, &s, &state, &sim());
        assert_eq!(label, Some(Action3::Ra));
    }

    #[test]
    fn useless_ba_teaches_ra() {
        let s = seg(true); // old pair as good as the "best"
        let state = LinkState::at_mcs(5);
        let out = execute(&s, Action3::Ba, state, &sim());
        let label = OnlineLibra::derived_label(Action3::Ba, &out, &s, &state, &sim());
        assert_eq!(label, Some(Action3::Ra));
    }

    #[test]
    fn productive_ba_teaches_ba() {
        let mut s = seg(false);
        s.old = ConfigData {
            tput_mbps: vec![300.0, 600.0, 300.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0].into(),
            cdr: vec![1.0, 0.7, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0].into(),
        };
        let state = LinkState::at_mcs(5);
        let out = execute(&s, Action3::Ba, state, &sim());
        let label = OnlineLibra::derived_label(Action3::Ba, &out, &s, &state, &sim());
        assert_eq!(label, Some(Action3::Ba));
    }

    #[test]
    fn healthy_na_teaches_na() {
        let s = seg(true);
        let state = LinkState::at_mcs(5);
        let out = execute(&s, Action3::Na, state, &sim());
        let label = OnlineLibra::derived_label(Action3::Na, &out, &s, &state, &sim());
        assert_eq!(label, Some(Action3::Na));
    }

    #[test]
    fn retrains_after_enough_observations() {
        let mut online = OnlineLibra::new(offline_3class(), 3, 1);
        let s = seg(false);
        let state = LinkState::at_mcs(5);
        let out = execute(&s, Action3::Ra, state, &sim());
        for _ in 0..3 {
            online.observe(&s.features, Action3::Ra, &out, &s, &state, &sim());
        }
        assert_eq!(online.retrain_count, 1);
        assert_eq!(online.buffer_len(), 3);
    }

    #[test]
    fn online_runner_delivers_and_learns() {
        let mut online = OnlineLibra::new(offline_3class(), 5, 2);
        let mut rng = rng_from_seed(3);
        let tl = generate_timeline(ScenarioType::Mixed, &TimelineConfig::default(), &mut rng);
        let bytes = run_timeline_online(&tl, &mut online, &sim(), &Instruments::default());
        assert!(bytes > 0.0);
        assert!(
            online.buffer_len() > 0,
            "should derive labels from outcomes"
        );
    }
}
