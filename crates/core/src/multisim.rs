//! The multi-station discrete-event simulator.
//!
//! Scales the §8 single-link engine to N APs × M stations: every
//! station runs the same per-segment [`LinkMachine`] as the single-link
//! executor, but the machines of one AP cell interleave on a shared
//! [`EventQueue`] and contend for airtime through the
//! [`TdmaArbiter`] — a station's BA sweep occupies real slots the other
//! stations lose, and an active neighbor's side-lobe leakage raises the
//! measured interference floor ([`coupled_interference_dbm`]).
//!
//! ## Determinism contract
//!
//! A run is a pure function of [`MultiSimConfig`] — bitwise identical
//! at any thread count. The construction:
//!
//! * Roaming is **precomputed**: the full handoff schedule is derived
//!   from the seed before any cell runs, so cells never communicate at
//!   runtime and can be simulated independently.
//! * Cells shard across [`par_map`] and merge in **cell-index order**;
//!   every stochastic quantity draws from a [`SplitMix64`] stream
//!   derived per `(station, residency, segment)`, never from a shared
//!   stream.
//! * Within a cell, events pop in `(time_ns, station, seq)` order and
//!   TDMA shares are pure functions of set membership.
//!
//! The per-run [`MultiSimOutcome::digest`] folds every processed event
//! and every final per-station outcome, so the contract is checkable
//! with one integer comparison (`tests/multisim.rs` pins 1-vs-N-thread
//! equality; the CI smoke job re-checks it on every push).
//!
//! ## Relation to the single-link paths
//!
//! With 1 AP × 1 station, no roaming and no decision delay, the engine
//! degenerates to exactly the single-link executor: the lone station
//! holds a TDMA share of 1.0, the interference sum is empty (rise is
//! exactly 0 dB), and each segment reduces to
//! [`crate::sim::run_policy_segment`] (`tests/multisim.rs` pins bitwise
//! byte equality).

use crate::classifier::LibraClassifier;
use crate::event::{ms_to_ns, EventQueue, LinkMachine, StepKind};
use crate::sim::{decide_action, ConfigData, LinkState, PolicyKind, SegmentData, SimConfig};
use libra_channel::{coupled_interference_dbm, noise_rise_db, ActiveTx, Point};
use libra_dataset::{Action3, Features};
use libra_mac::{BaOverheadPreset, ProtocolParams, TdmaArbiter};
use libra_obs as obs;
use libra_phy::{ErrorModel, McsTable};
use libra_util::checksum::Fnv64;
use libra_util::db::noise_floor_dbm;
use libra_util::par::par_map;
use libra_util::rng::{derive_seed, derive_seed_index, SplitMix64};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How long the decision path stalls each segment before its chosen
/// action applies (ROADMAP item 4: close the loop from the *measured*
/// serving latency back into the simulator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every decision costs exactly this many ms. `Constant(0.0)` is
    /// the legacy instant-decision path and draws **no** randomness, so
    /// existing run digests are unchanged.
    Constant(f64),
    /// Each decision draws its delay from a measured latency
    /// distribution (one derived RNG stream per station stay, so runs
    /// stay bitwise reproducible at any thread count).
    Measured(DelayDist),
}

impl DelayModel {
    /// The delay, in ms, of the next decision. Only `Measured` advances
    /// the stream.
    fn draw(&self, rng: &mut SplitMix64) -> f64 {
        match self {
            Self::Constant(ms) => *ms,
            Self::Measured(dist) => dist.sample(rng.uniform()),
        }
    }
}

/// An inverse-CDF table distilled from an `obs` latency histogram —
/// typically the `serve.decision_ns` wall hist of a real serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayDist {
    /// Delay quantiles in ms at evenly spaced ranks `i / (len − 1)`;
    /// at least two entries (p0 and p100).
    pub quantiles_ms: Vec<f64>,
}

impl DelayDist {
    /// Quantile table resolution used by [`from_hist`](Self::from_hist).
    pub const POINTS: usize = 33;

    /// Distills a histogram into a quantile table. `unit_to_ms` converts
    /// the histogram's recorded unit to ms (`1e-6` for a `_ns` wall
    /// hist, `1e-3` for a `_us` value hist). Returns `None` for an
    /// empty histogram — there is no distribution to sample.
    pub fn from_hist(hist: &libra_obs::Hist, unit_to_ms: f64) -> Option<Self> {
        if hist.count == 0 {
            return None;
        }
        let quantiles_ms = (0..Self::POINTS)
            .map(|i| {
                let q = i as f64 / (Self::POINTS - 1) as f64;
                hist.percentile(q) as f64 * unit_to_ms
            })
            .collect();
        Some(Self { quantiles_ms })
    }

    /// Inverse-CDF sample at rank `u ∈ [0, 1)` (linear interpolation
    /// between table entries).
    pub fn sample(&self, u: f64) -> f64 {
        assert!(
            self.quantiles_ms.len() >= 2,
            "a delay distribution needs at least p0 and p100"
        );
        let u = u.clamp(0.0, 1.0);
        let steps = (self.quantiles_ms.len() - 1) as f64;
        let pos = u * steps;
        let lo = (pos.floor() as usize).min(self.quantiles_ms.len() - 2);
        let frac = pos - lo as f64;
        self.quantiles_ms[lo] * (1.0 - frac) + self.quantiles_ms[lo + 1] * frac
    }
}

/// Configuration of one multi-station run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSimConfig {
    /// Number of AP cells.
    pub n_aps: u32,
    /// Stations initially associated with each AP.
    pub stations_per_ap: u32,
    /// Simulated wall time, ms.
    pub duration_ms: f64,
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Adaptation policy every station runs.
    pub policy: PolicyKind,
    /// Single-link simulator parameters (BA overhead, FAT, thresholds).
    pub sim: SimConfig,
    /// Decision-path compute delay: each segment transmits on the stale
    /// entry configuration this long before the chosen action is
    /// applied. Feed the `obs`-measured `serve.decision_ns` distribution
    /// in via [`DelayModel::Measured`] to make a slow classifier pay for
    /// its staleness (ROADMAP item 4).
    pub delay: DelayModel,
    /// Mean channel-coherence segment length, ms (actual lengths draw
    /// uniformly in ±50 %).
    pub mean_segment_ms: f64,
    /// Mean interval between roaming handoffs per station, ms;
    /// `0` disables roaming (as does a single-AP topology).
    pub roam_interval_ms: f64,
    /// Side-lobe leakage EIRP of an active station toward its
    /// neighbors, dBm (cross-station coupling).
    pub station_eirp_dbm: f64,
    /// Radius stations wander within around their AP, m.
    pub cell_radius_m: f64,
    /// Spacing of the AP grid, m.
    pub ap_spacing_m: f64,
}

impl MultiSimConfig {
    /// Defaults for an `n_aps` × `stations_per_ap` topology: 10 s of
    /// wall time, RA-First (no model required), the 5 ms BA preset with
    /// 2 ms FAT, roaming every ~3 s, 8 m cells on a 20 m grid.
    pub fn new(n_aps: u32, stations_per_ap: u32) -> Self {
        Self {
            n_aps,
            stations_per_ap,
            duration_ms: 10_000.0,
            seed: 0x11B7A,
            policy: PolicyKind::RaFirst,
            sim: SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni3, 2.0)),
            delay: DelayModel::Constant(0.0),
            mean_segment_ms: 800.0,
            roam_interval_ms: 3_000.0,
            station_eirp_dbm: 8.0,
            cell_radius_m: 8.0,
            ap_spacing_m: 20.0,
        }
    }

    /// Total station count.
    pub fn n_stations(&self) -> u32 {
        self.n_aps * self.stations_per_ap
    }

    /// Center of cell `ap` on the square deployment grid.
    pub fn ap_center(&self, ap: u32) -> Point {
        let g = (self.n_aps as f64).sqrt().ceil().max(1.0) as u32;
        Point::new(
            (ap % g) as f64 * self.ap_spacing_m,
            (ap / g) as f64 * self.ap_spacing_m,
        )
    }
}

/// Per-station aggregate results of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationStats {
    /// Global station id.
    pub station: u32,
    /// AP the station started on.
    pub home_ap: u32,
    /// Bytes delivered over the whole run (TDMA-share scaled).
    pub bytes: f64,
    /// Mean delivered rate over the run, Mbps.
    pub mean_mbps: f64,
    /// Channel segments simulated.
    pub segments: u64,
    /// Roaming handoffs performed.
    pub handoffs: u64,
    /// Segments entered with a broken link.
    pub broken_segments: u64,
    /// Total link-recovery delay across broken segments, ms.
    pub recovery_ms_total: f64,
}

impl StationStats {
    fn zero(station: u32, home_ap: u32) -> Self {
        Self {
            station,
            home_ap,
            bytes: 0.0,
            mean_mbps: 0.0,
            segments: 0,
            handoffs: 0,
            broken_segments: 0,
            recovery_ms_total: 0.0,
        }
    }

    /// Mean recovery delay over this station's broken segments, ms
    /// (0 when none were broken).
    pub fn mean_recovery_ms(&self) -> f64 {
        if self.broken_segments == 0 {
            0.0
        } else {
            self.recovery_ms_total / self.broken_segments as f64
        }
    }
}

/// What one multi-station run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSimOutcome {
    /// Per-station results, by station id.
    pub stations: Vec<StationStats>,
    /// Discrete events processed across all cells.
    pub events: u64,
    /// FNV-1a fold of every event and every final station outcome —
    /// the bitwise-determinism witness.
    pub digest: u64,
    /// Bytes delivered across all stations.
    pub total_bytes: f64,
    /// Simulated wall time, ms.
    pub duration_ms: f64,
}

impl MultiSimOutcome {
    /// Total roaming handoffs across all stations.
    pub fn total_handoffs(&self) -> u64 {
        self.stations.iter().map(|s| s.handoffs).sum()
    }

    /// The `p`-th percentile (0–100) of the per-station mean rate, Mbps.
    pub fn mbps_percentile(&self, p: f64) -> f64 {
        let mbps: Vec<f64> = self.stations.iter().map(|s| s.mean_mbps).collect();
        libra_util::percentile(&mbps, p)
    }
}

/// Synthetic per-station 60 GHz channel: a bounded random walk around
/// the AP with distance-dependent SNR, per-segment shadowing, and
/// old/best beam-pair divergence mapped through the PHY error model.
///
/// Public so the degenerate-case test (and anyone replaying a station's
/// exact segment sequence) can regenerate segments outside the engine:
/// the draw sequence is a pure function of `(run seed, station,
/// residency, segment index)`.
///
/// The single-link §8 paths keep the ray-traced [`libra_channel`]
/// scenes; this synthetic channel exists so topologies of thousands of
/// stations need no per-station scene geometry.
#[derive(Debug, Clone)]
pub struct StationChannel {
    seed: u64,
    seg_index: u64,
    pos: Point,
    ap_center: Point,
    placed: bool,
    prev_snr_db: f64,
    prev_spread_ns: f64,
    prev_rise_db: f64,
}

impl StationChannel {
    /// A channel stream for `station`'s `residency`-th association
    /// (0 = initial; bumped on every roam so a station returning to a
    /// cell never replays its earlier segments).
    pub fn new(run_seed: u64, station: u32, residency: u64, ap_center: Point) -> Self {
        let base = derive_seed(run_seed, "chan");
        Self {
            seed: derive_seed_index(derive_seed_index(base, station as u64), residency),
            seg_index: 0,
            pos: ap_center,
            ap_center,
            placed: false,
            prev_snr_db: 20.0,
            prev_spread_ns: 2.0,
            prev_rise_db: 0.0,
        }
    }

    /// The station's current position.
    pub fn position(&self) -> Point {
        self.pos
    }

    /// Draws the next channel-coherence segment.
    ///
    /// `interference_rise_db` is the effective-SNR loss from neighbor
    /// coupling at segment entry (the engine recomputes it on every
    /// topology change); `remaining_ms` caps the drawn duration at the
    /// end of the run. The number and order of RNG draws is fixed, so
    /// the stream is insensitive to the *values* of either argument.
    pub fn next_segment(
        &mut self,
        cfg: &MultiSimConfig,
        entry_mcs: usize,
        interference_rise_db: f64,
        remaining_ms: f64,
    ) -> SegmentData {
        let mut rng = SplitMix64::new(derive_seed_index(self.seed, self.seg_index));
        self.seg_index += 1;
        let moved_m;
        if !self.placed {
            // Uniform placement over the cell disc.
            let r = cfg.cell_radius_m * rng.uniform().sqrt();
            let th = rng.range(0.0, std::f64::consts::TAU);
            self.pos = self.ap_center.add(Point::new(r * th.cos(), r * th.sin()));
            self.placed = true;
            moved_m = 0.0;
        } else {
            // Random-walk step, reflected back inside the cell radius.
            let step = Point::new(0.4 * rng.normal(), 0.4 * rng.normal());
            let mut p = self.pos.add(step);
            let d = self.ap_center.distance(p);
            if d > cfg.cell_radius_m {
                p = self
                    .ap_center
                    .add(p.sub(self.ap_center).scale(cfg.cell_radius_m / d));
            }
            moved_m = self.pos.distance(p);
            self.pos = p;
        }
        let duration_ms = (cfg.mean_segment_ms * rng.range(0.5, 1.5))
            .min(remaining_ms)
            .max(cfg.sim.params.fat_ms);
        // Distance-dependent median SNR spanning the X60 MCS ladder
        // (~26 dB at 1 m down to ~8 dB at the 8 m cell edge), plus
        // shadowing.
        let dist = self.pos.distance(self.ap_center).max(1.0);
        let pair_snr = 26.0 - 20.0 * dist.log10() + 2.0 * rng.normal();
        // The held pair degrades by the impairment the segment boundary
        // represents (heavy tail: occasionally the link breaks); the
        // sweep-best pair tracks the channel much more closely.
        let old_snr = pair_snr - rng.normal().abs() * 5.0 - interference_rise_db;
        let best_snr = pair_snr - rng.normal().abs() * 1.0 - interference_rise_db;
        let old_spread = 1.5 + rng.normal().abs() * 2.5;
        let best_spread = 1.0 + rng.normal().abs() * 1.0;
        let table = McsTable::x60();
        let em = ErrorModel::default();
        let old = table_data(&em, &table, old_snr, old_spread);
        let best = table_data(&em, &table, best_snr, best_spread);
        let entry_mcs = entry_mcs.min(table.len() - 1);
        let features = Features {
            snr_diff_db: self.prev_snr_db - old_snr,
            // Free-space ToF shift of the walked distance (~3.34 ns/m).
            tof_diff_ns: moved_m * 3.336,
            noise_diff_db: interference_rise_db - self.prev_rise_db,
            pdp_similarity: (-(old_spread - self.prev_spread_ns).abs() / 8.0).exp(),
            csi_similarity: (-(self.prev_snr_db - old_snr).abs() / 12.0).exp(),
            cdr: old.cdr[entry_mcs],
            initial_mcs: entry_mcs,
        };
        self.prev_snr_db = old_snr;
        self.prev_spread_ns = old_spread;
        self.prev_rise_db = interference_rise_db;
        SegmentData {
            old,
            best,
            features,
            duration_ms,
        }
    }
}

/// Per-MCS measurement tables for one beam pair under the error model.
fn table_data(em: &ErrorModel, table: &McsTable, snr_db: f64, spread_ns: f64) -> ConfigData {
    let mut tput = Vec::with_capacity(table.len());
    let mut cdr = Vec::with_capacity(table.len());
    for e in table.iter() {
        tput.push(em.expected_throughput_mbps(e, snr_db, spread_ns));
        cdr.push(em.cdr(e, snr_db, spread_ns));
    }
    ConfigData {
        tput_mbps: tput.into(),
        cdr: cdr.into(),
    }
}

/// Precomputed membership timeline of one cell: who starts here, who
/// roams in (with their per-station residency counter), who roams out.
struct CellPlan {
    ap: u32,
    initial: Vec<u32>,
    /// `(time_ns, time_ms, station, residency)`, time-sorted.
    arrivals: Vec<(u64, f64, u32, u64)>,
    /// `(time_ns, station)`, time-sorted.
    departures: Vec<(u64, u32)>,
}

/// Derives the full roaming schedule from the seed — a pure function of
/// the config, computed before any cell runs, so cells stay independent.
fn build_plans(cfg: &MultiSimConfig) -> Vec<CellPlan> {
    let mut plans: Vec<CellPlan> = (0..cfg.n_aps)
        .map(|ap| CellPlan {
            ap,
            initial: Vec::new(),
            arrivals: Vec::new(),
            departures: Vec::new(),
        })
        .collect();
    let roam_seed = derive_seed(cfg.seed, "roam");
    for s in 0..cfg.n_stations() {
        let home = s / cfg.stations_per_ap;
        plans[home as usize].initial.push(s);
        if cfg.roam_interval_ms <= 0.0 || cfg.n_aps < 2 {
            continue;
        }
        let mut rng = SplitMix64::new(derive_seed_index(roam_seed, s as u64));
        let mut t = 0.0;
        let mut ap = home;
        let mut residency: u64 = 1;
        loop {
            t += cfg.roam_interval_ms * rng.range(0.75, 1.25);
            if t >= cfg.duration_ms {
                break;
            }
            let mut to = (rng.next_u64() % cfg.n_aps as u64) as u32;
            if to == ap {
                to = (to + 1) % cfg.n_aps;
            }
            plans[ap as usize].departures.push((ms_to_ns(t), s));
            plans[to as usize]
                .arrivals
                .push((ms_to_ns(t), t, s, residency));
            ap = to;
            residency += 1;
        }
    }
    for p in &mut plans {
        p.arrivals.sort_unstable_by_key(|a| (a.0, a.2));
        p.departures.sort_unstable_by_key(|d| (d.0, d.1));
    }
    plans
}

/// Cell-local event payloads (ordering lives in the queue key).
enum Ev {
    /// Station associates (initial association or roam-in).
    Join { at_ms: f64, residency: u64 },
    /// Station roams out.
    Leave,
    /// Segment boundary: finalize the running segment, draw and decide
    /// the next one.
    Decide { gen: u64, at_ms: f64 },
    /// One machine step (frame, sweep, or transition) is due.
    Step { gen: u64 },
    /// A BA sweep's airtime window ends; release its TDMA slots.
    BaEnd { gen: u64 },
}

fn ev_tag(ev: &Ev) -> u64 {
    match ev {
        Ev::Join { .. } => 1,
        Ev::Leave => 2,
        Ev::Decide { .. } => 3,
        Ev::Step { .. } => 4,
        Ev::BaEnd { .. } => 5,
    }
}

/// Digest tag for machine steps drained inline at a segment boundary.
const TAG_DRAIN: u64 = 6;

/// One station's live state within a cell.
struct StationSim {
    chan: StationChannel,
    link: LinkState,
    /// Segment generation; bumped per segment so stale `Step`/`BaEnd`
    /// events from a finalized segment are ignored.
    gen: u64,
    machine: Option<(LinkMachine, SegmentData)>,
    seg_start_ms: f64,
    /// TDMA-share-scaled bytes of the running segment.
    seg_bytes: f64,
    sweeping: bool,
    /// Per-stay stream for `DelayModel::Measured` draws; the constant
    /// model never advances it.
    delay_rng: SplitMix64,
    stats: StationStats,
}

struct CellOutcome {
    /// Partial per-station stats in deterministic order; a station that
    /// leaves and returns contributes one entry per stay.
    stats: Vec<StationStats>,
    events: u64,
    digest: u64,
}

fn simulate_cell(
    cfg: &MultiSimConfig,
    clf: Option<&LibraClassifier>,
    plan: &CellPlan,
) -> CellOutcome {
    let center = cfg.ap_center(plan.ap);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut arb = TdmaArbiter::new();
    let mut present: BTreeMap<u32, StationSim> = BTreeMap::new();
    let mut done: Vec<StationStats> = Vec::new();
    let mut digest = Fnv64::new();
    let mut events: u64 = 0;

    for &s in &plan.initial {
        q.push(
            0,
            s,
            Ev::Join {
                at_ms: 0.0,
                residency: 0,
            },
        );
    }
    for &(ns, ms, s, residency) in &plan.arrivals {
        q.push(
            ns,
            s,
            Ev::Join {
                at_ms: ms,
                residency,
            },
        );
    }
    for &(ns, s) in &plan.departures {
        q.push(ns, s, Ev::Leave);
    }

    while let Some((key, ev)) = q.pop() {
        events += 1;
        digest
            .write_u64(key.time_ns)
            .write_u64(((key.station as u64) << 8) | ev_tag(&ev));
        let s = key.station;
        match ev {
            Ev::Join { at_ms, residency } => {
                arb.join(s);
                let mut st = StationSim {
                    chan: StationChannel::new(cfg.seed, s, residency, center),
                    link: LinkState::at_mcs(6),
                    gen: 0,
                    machine: None,
                    seg_start_ms: at_ms,
                    seg_bytes: 0.0,
                    sweeping: false,
                    delay_rng: SplitMix64::new(derive_seed_index(
                        derive_seed(cfg.seed, "multisim.delay"),
                        ((s as u64) << 16) | residency,
                    )),
                    stats: StationStats::zero(s, s / cfg.stations_per_ap),
                };
                if residency > 0 {
                    st.stats.handoffs = 1;
                    obs::counter("multisim.handoff", 1);
                }
                present.insert(s, st);
                // A roam-in re-associates: the first segment opens with
                // the 802.11ad association beam training (a forced BA).
                start_segment(
                    cfg,
                    clf,
                    &mut q,
                    &arb,
                    &mut present,
                    s,
                    at_ms,
                    residency > 0,
                );
            }
            Ev::Leave => {
                if let Some(mut st) = present.remove(&s) {
                    // The in-flight segment completes at the handoff
                    // instant (its remaining frames run back-to-back) —
                    // the simplification that keeps cells independent.
                    drain_machine(cfg, &mut arb, &mut st, s, &mut events, &mut digest);
                    arb.leave(s);
                    done.push(st.stats);
                }
            }
            Ev::Decide { gen, at_ms } => {
                let Some(st) = present.get_mut(&s) else {
                    continue;
                };
                if st.gen != gen {
                    continue;
                }
                drain_machine(cfg, &mut arb, st, s, &mut events, &mut digest);
                start_segment(cfg, clf, &mut q, &arb, &mut present, s, at_ms, false);
            }
            Ev::Step { gen } => {
                let Some(st) = present.get_mut(&s) else {
                    continue;
                };
                if st.gen != gen {
                    continue;
                }
                let Some((machine, seg)) = st.machine.as_mut() else {
                    continue;
                };
                let step = machine.step(seg, &cfg.sim);
                if step.kind == StepKind::Sweep {
                    st.sweeping = true;
                    arb.ba_start(s);
                    q.push(
                        ms_to_ns(st.seg_start_ms + machine.local_time_ms()),
                        s,
                        Ev::BaEnd { gen },
                    );
                }
                st.seg_bytes += step.bytes * arb.share(s);
                if machine.is_done() {
                    finalize_segment(&mut arb, st, s);
                } else {
                    q.push(
                        ms_to_ns(st.seg_start_ms + machine.local_time_ms()),
                        s,
                        Ev::Step { gen },
                    );
                }
            }
            Ev::BaEnd { gen } => {
                if let Some(st) = present.get_mut(&s) {
                    if st.gen == gen && st.sweeping {
                        arb.ba_end(s);
                        st.sweeping = false;
                    }
                }
            }
        }
    }

    // The queue drains with every machine finalized (the last Decide of
    // each segment chain fires at or past the run end and starts
    // nothing new); collect the stations still associated.
    for (_, mut st) in std::mem::take(&mut present) {
        let id = st.stats.station;
        drain_machine(cfg, &mut arb, &mut st, id, &mut events, &mut digest);
        done.push(st.stats);
    }
    done.sort_by_key(|s| s.station);
    CellOutcome {
        stats: done,
        events,
        digest: digest.finish(),
    }
}

/// Draws, decides and launches the next segment for `station`.
#[allow(clippy::too_many_arguments)]
fn start_segment(
    cfg: &MultiSimConfig,
    clf: Option<&LibraClassifier>,
    q: &mut EventQueue<Ev>,
    arb: &TdmaArbiter,
    present: &mut BTreeMap<u32, StationSim>,
    station: u32,
    now_ms: f64,
    force_ba: bool,
) {
    if now_ms >= cfg.duration_ms {
        return;
    }
    // Cross-station coupling, recomputed at every topology change (this
    // segment boundary): every *other* station mid-segment radiates
    // side-lobe leakage weighted by its TDMA duty cycle.
    let victim = present[&station].chan.position();
    let sources: Vec<ActiveTx> = present
        .iter()
        .filter(|(id, other)| **id != station && other.machine.is_some())
        .map(|(id, other)| ActiveTx {
            position: other.chan.position(),
            eirp_dbm: cfg.station_eirp_dbm,
            duty_cycle: arb.share(*id),
        })
        .collect();
    let rise = noise_rise_db(
        coupled_interference_dbm(victim, &sources),
        noise_floor_dbm(),
    );
    let st = present.get_mut(&station).expect("station present");
    let seg = st
        .chan
        .next_segment(cfg, st.link.mcs, rise, cfg.duration_ms - now_ms);
    let action = if force_ba {
        Action3::Ba
    } else {
        decide_action(&seg, cfg.policy, clf, st.link, &cfg.sim)
    };
    let delay_ms = cfg.delay.draw(&mut st.delay_rng);
    let machine = LinkMachine::with_delay(&seg, action, st.link, &cfg.sim, delay_ms);
    st.gen += 1;
    st.seg_start_ms = now_ms;
    st.seg_bytes = 0.0;
    st.stats.segments += 1;
    q.push(ms_to_ns(now_ms), station, Ev::Step { gen: st.gen });
    q.push(
        ms_to_ns(now_ms + seg.duration_ms),
        station,
        Ev::Decide {
            gen: st.gen,
            at_ms: now_ms + seg.duration_ms,
        },
    );
    st.machine = Some((machine, seg));
}

/// Runs the in-flight machine to completion at the current instant
/// (segment boundary or roam-out) and folds its outcome into the stats.
fn drain_machine(
    cfg: &MultiSimConfig,
    arb: &mut TdmaArbiter,
    st: &mut StationSim,
    station: u32,
    events: &mut u64,
    digest: &mut Fnv64,
) {
    while let Some((machine, seg)) = st.machine.as_mut() {
        let step = machine.step(seg, &cfg.sim);
        *events += 1;
        digest.write_u64(((station as u64) << 8) | TAG_DRAIN);
        if step.kind == StepKind::Sweep {
            st.sweeping = true;
            arb.ba_start(station);
        }
        st.seg_bytes += step.bytes * arb.share(station);
        if machine.is_done() {
            finalize_segment(arb, st, station);
        }
    }
}

/// Retires a completed machine: outcome into the running stats, TDMA
/// sweep slots released, link state carried to the next segment.
fn finalize_segment(arb: &mut TdmaArbiter, st: &mut StationSim, station: u32) {
    let (machine, _seg) = st.machine.take().expect("finalize with live machine");
    let out = machine.into_outcome();
    st.link = out.end_state;
    st.stats.bytes += st.seg_bytes;
    st.seg_bytes = 0.0;
    if let Some(d) = out.recovery_delay_ms {
        st.stats.broken_segments += 1;
        st.stats.recovery_ms_total += d;
    }
    if st.sweeping {
        arb.ba_end(station);
        st.sweeping = false;
    }
}

/// Runs the full multi-station simulation.
///
/// `clf` is required for [`PolicyKind::Libra`] and ignored otherwise.
/// Cells shard across the configured worker threads and merge in cell
/// order; the result is bitwise identical at any thread count.
pub fn run_multisim(cfg: &MultiSimConfig, clf: Option<&LibraClassifier>) -> MultiSimOutcome {
    assert!(
        cfg.n_aps > 0 && cfg.stations_per_ap > 0,
        "multisim needs at least one AP and one station"
    );
    assert!(
        cfg.policy != PolicyKind::Libra || clf.is_some(),
        "LiBRA policy needs a classifier"
    );
    let _span = obs::span("multisim.run");
    let plans = build_plans(cfg);
    let cells = par_map(&plans, |_, plan| simulate_cell(cfg, clf, plan));

    let mut merged: BTreeMap<u32, StationStats> = BTreeMap::new();
    let mut digest = Fnv64::new();
    let mut events: u64 = 0;
    for cell in &cells {
        digest.write_u64(cell.digest);
        events += cell.events;
        for part in &cell.stats {
            let e = merged
                .entry(part.station)
                .or_insert_with(|| StationStats::zero(part.station, part.home_ap));
            e.bytes += part.bytes;
            e.segments += part.segments;
            e.handoffs += part.handoffs;
            e.broken_segments += part.broken_segments;
            e.recovery_ms_total += part.recovery_ms_total;
        }
    }
    let secs = cfg.duration_ms / 1000.0;
    let mut stations: Vec<StationStats> = merged.into_values().collect();
    for s in &mut stations {
        s.mean_mbps = s.bytes * 8.0 / 1e6 / secs;
        digest
            .write_f64(s.bytes)
            .write_u64(s.segments)
            .write_u64(s.handoffs);
    }
    let total_bytes = stations.iter().map(|s| s.bytes).sum();
    obs::counter("multisim.events", events);
    MultiSimOutcome {
        stations,
        events,
        digest: digest.finish(),
        total_bytes,
        duration_ms: cfg.duration_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(mut cfg: MultiSimConfig) -> MultiSimConfig {
        cfg.roam_interval_ms = 0.0;
        cfg.duration_ms = 3_000.0;
        cfg
    }

    #[test]
    fn runs_and_reports_every_station() {
        let cfg = quiet(MultiSimConfig::new(2, 3));
        let out = run_multisim(&cfg, None);
        assert_eq!(out.stations.len(), 6);
        assert!(out.events > 0);
        assert!(out.total_bytes > 0.0);
        for s in &out.stations {
            assert!(s.segments > 0, "station {} simulated no segment", s.station);
            assert_eq!(s.home_ap, s.station / 3);
            assert!((s.mean_mbps - s.bytes * 8.0 / 1e6 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_seed_same_digest_different_seed_differs() {
        let cfg = quiet(MultiSimConfig::new(2, 2));
        let a = run_multisim(&cfg, None);
        let b = run_multisim(&cfg, None);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.total_bytes.to_bits(), b.total_bytes.to_bits());
        let mut other = cfg;
        other.seed ^= 1;
        assert_ne!(run_multisim(&other, None).digest, a.digest);
    }

    #[test]
    fn contention_costs_throughput() {
        // The same station delivers fewer bytes when seven neighbors
        // share its cell than when it owns the frame alone.
        let solo_cfg = quiet(MultiSimConfig::new(1, 1));
        let solo = run_multisim(&solo_cfg, None);
        let crowded_cfg = quiet(MultiSimConfig::new(1, 8));
        let crowded = run_multisim(&crowded_cfg, None);
        let s0 = |o: &MultiSimOutcome| o.stations[0].bytes;
        assert!(
            s0(&crowded) < 0.5 * s0(&solo),
            "station 0 crowded {} vs solo {}",
            s0(&crowded),
            s0(&solo)
        );
    }

    #[test]
    fn decision_delay_costs_throughput() {
        let cfg = quiet(MultiSimConfig::new(1, 4));
        let fast = run_multisim(&cfg, None);
        let mut slow_cfg = cfg.clone();
        slow_cfg.delay = DelayModel::Constant(25.0);
        let slow = run_multisim(&slow_cfg, None);
        assert!(
            slow.total_bytes < fast.total_bytes,
            "stale decisions should cost bytes: {} vs {}",
            slow.total_bytes,
            fast.total_bytes
        );
    }

    #[test]
    fn delay_dist_interpolates_its_quantile_table() {
        let dist = DelayDist {
            quantiles_ms: vec![1.0, 3.0, 9.0],
        };
        assert_eq!(dist.sample(0.0), 1.0);
        assert_eq!(dist.sample(0.5), 3.0);
        assert_eq!(dist.sample(1.0), 9.0);
        assert!((dist.sample(0.25) - 2.0).abs() < 1e-12);
        assert!((dist.sample(0.75) - 6.0).abs() < 1e-12);
        // Out-of-range ranks clamp instead of indexing out of bounds.
        assert_eq!(dist.sample(7.0), 9.0);
        assert_eq!(dist.sample(-1.0), 1.0);
    }

    #[test]
    fn delay_dist_distills_an_obs_hist() {
        let ((), report) = obs::with_scope(|| {
            // A fake decision-latency wall hist: 1 ms-ish with a tail.
            for _ in 0..90 {
                obs::record_wall("test.msim.decision_ns", 1_000_000);
            }
            for _ in 0..10 {
                obs::record_wall("test.msim.decision_ns", 32_000_000);
            }
        });
        let hist = report.hist("test.msim.decision_ns").expect("recorded");
        let dist = DelayDist::from_hist(hist, 1e-6).expect("non-empty");
        assert_eq!(dist.quantiles_ms.len(), DelayDist::POINTS);
        // Monotone table; the low quantiles sit near 1 ms, the top near
        // the tail (log₂ buckets give order-of-magnitude resolution).
        assert!(dist.quantiles_ms.windows(2).all(|w| w[0] <= w[1]));
        assert!(dist.sample(0.1) < 3.0, "p10 {}", dist.sample(0.1));
        assert!(dist.sample(1.0) > 16.0, "p100 {}", dist.sample(1.0));
        assert!(DelayDist::from_hist(&obs::Hist::default(), 1e-6).is_none());
    }

    #[test]
    fn measured_delay_costs_throughput_and_stays_deterministic() {
        let cfg = quiet(MultiSimConfig::new(1, 4));
        let fast = run_multisim(&cfg, None);
        let mut slow_cfg = cfg.clone();
        slow_cfg.delay = DelayModel::Measured(DelayDist {
            quantiles_ms: vec![20.0, 25.0, 40.0],
        });
        let slow = run_multisim(&slow_cfg, None);
        assert!(
            slow.total_bytes < fast.total_bytes,
            "measured delays should cost bytes: {} vs {}",
            slow.total_bytes,
            fast.total_bytes
        );
        // Replaying the same measured-delay config is bitwise stable.
        let replay = run_multisim(&slow_cfg, None);
        assert_eq!(slow.digest, replay.digest);
        assert_eq!(slow.total_bytes, replay.total_bytes);
    }

    #[test]
    fn neighbor_interference_costs_throughput() {
        // Same topology, leakage on vs effectively off.
        let mut on = quiet(MultiSimConfig::new(1, 6));
        on.station_eirp_dbm = 20.0;
        let mut off = on.clone();
        off.station_eirp_dbm = -300.0;
        let with = run_multisim(&on, None);
        let without = run_multisim(&off, None);
        assert!(
            with.total_bytes < without.total_bytes,
            "coupling should cost bytes: {} vs {}",
            with.total_bytes,
            without.total_bytes
        );
    }

    #[test]
    fn roaming_produces_handoffs() {
        let mut cfg = MultiSimConfig::new(3, 2);
        cfg.duration_ms = 5_000.0;
        cfg.roam_interval_ms = 1_000.0;
        let out = run_multisim(&cfg, None);
        assert!(out.total_handoffs() > 0, "no handoffs in a roaming run");
        // Every station still accounted for exactly once.
        assert_eq!(out.stations.len(), 6);
        let ids: Vec<u32> = out.stations.iter().map(|s| s.station).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn percentiles_are_ordered() {
        let cfg = quiet(MultiSimConfig::new(2, 8));
        let out = run_multisim(&cfg, None);
        let p10 = out.mbps_percentile(10.0);
        let p50 = out.mbps_percentile(50.0);
        let p90 = out.mbps_percentile(90.0);
        assert!(p10 <= p50 && p50 <= p90, "{p10} {p50} {p90}");
        assert!(p90 > 0.0);
    }
}
