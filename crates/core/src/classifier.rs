//! LiBRA's learning component: a 3-class (BA / RA / NA) random-forest
//! classifier over the PHY-layer features, plus the missing-ACK fallback
//! rule of §7.
//!
//! The paper trains the §6.2 random forest with three classes — BA, RA,
//! and NA (no adaptation) — reaching 98 % 5-fold accuracy on the training
//! building and 94 % on the held-out buildings. At run time the model is
//! consulted every other frame over two 20 ms observation windows; when a
//! frame gets no ACK at all the metrics cannot be updated, and LiBRA
//! falls back to a rule mined from the training data: *below MCS 6, BA is
//! right 92 % of the time → always BA; at MCS ≥ 6 it is a coin flip →
//! BA only when BA is cheap*.
//!
//! Serving runs on the flattened engine of `libra_infer`: training fits
//! the recursive forest, then compiles it into contiguous node tables
//! whose predictions are bitwise identical to the recursive walk. The
//! trained model freezes into a checksummed [`ModelArtifact`] for the
//! registry, and a simulator can [`LibraClassifier::from_artifact`] a
//! frozen file instead of retraining.

use libra_dataset::{Action3, Features, FEATURE_NAMES};
use libra_infer::{
    ArtifactMeta, BlockedForest, EngineKind, EngineOpts, FlatForest, ModelArtifact, ModelPayload,
};
use libra_ml::{Classifier, ForestConfig, RandomForest};
use libra_obs as obs;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Class labels in class-index order, as frozen into artifacts.
pub const CLASS_LABELS: [&str; 3] = ["BA", "RA", "NA"];

/// The run-time context of a single adaptation decision: everything
/// [`LibraClassifier::decide`] needs besides the feature vector.
///
/// This replaces the former `classify` / `classify_proba` /
/// `classify_gated` trio with one entry point the telemetry layer wraps
/// once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecidePolicy {
    /// The MCS in use when the decision is made (fallback-rule input).
    pub current_mcs: usize,
    /// Cost of a full beam adaptation in milliseconds (fallback-rule
    /// input).
    pub ba_overhead_ms: f64,
    /// Confidence gate (extension): when set, the model's prediction is
    /// acted on only if its vote share clears the gate; below it the
    /// §7 fallback rule decides instead.
    pub confidence_gate: Option<f64>,
    /// True when the last frame got no ACK at all — the PHY metrics
    /// cannot be updated, so the model is skipped entirely and the §7
    /// fallback rule decides (the paper's missing-ACK path).
    pub ack_missing: bool,
}

impl DecidePolicy {
    /// A policy that always acts on the raw model prediction: no gate,
    /// no missing-ACK path (the fallback inputs are never consulted).
    pub fn model_only() -> Self {
        Self {
            current_mcs: 0,
            ba_overhead_ms: 0.0,
            confidence_gate: None,
            ack_missing: false,
        }
    }
}

/// The outcome of [`LibraClassifier::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The adaptation action to take.
    pub action: Action3,
    /// The forest's confidence (vote share of the winning class), or
    /// `0.0` when the model was skipped on the missing-ACK path.
    pub proba: f64,
    /// True when the §7 fallback rule produced the action (missing ACK,
    /// or confidence below the gate) rather than the model.
    pub gated: bool,
}

fn action_counter(action: Action3) -> &'static str {
    match action {
        Action3::Ba => "core.decide.action.ba",
        Action3::Ra => "core.decide.action.ra",
        Action3::Na => "core.decide.action.na",
    }
}

/// Which compiled engine serves this classifier's predictions.
///
/// The flat tables are the serialized source of truth; the blocked
/// arena is recompiled from them on demand ([`LibraClassifier::
/// select_engine`]) and never persisted, so artifact bytes and save/load
/// round-trips are untouched by engine selection. Exact blocked tables
/// predict bitwise identically to the flat engine, so switching modes
/// can never move a digest.
#[derive(Debug, Clone, Default)]
enum EngineMode {
    /// Depth-first walk of the struct-of-arrays tables.
    #[default]
    Flat,
    /// Branchless level-synchronous walk of the breadth-first arena.
    Blocked(Arc<BlockedForest>),
}

/// The trained LiBRA decision model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LibraClassifier {
    engine: FlatForest,
    /// Below this MCS a missing ACK always triggers BA (§7: "when the
    /// current MCS is lower than 6, BA is the right mechanism 92 % of
    /// the time").
    pub fallback_mcs_threshold: usize,
    /// At or above the threshold MCS, trigger BA first only when the BA
    /// overhead is below this many milliseconds.
    pub fallback_ba_overhead_ms: f64,
    /// Run-time engine selection; recompiled, never serialized.
    #[serde(skip, default)]
    mode: EngineMode,
}

impl LibraClassifier {
    /// Trains the 3-class forest on a dataset produced by
    /// `CampaignDataset::to_ml_3class` (labels BA=0, RA=1, NA=2) and
    /// compiles it for serving.
    pub fn train(data: &libra_ml::Dataset, rng: &mut impl Rng) -> Self {
        assert_eq!(data.n_classes, 3, "LiBRA uses the 3-class model");
        let mut forest = RandomForest::new(ForestConfig::default());
        forest.fit(data, rng);
        Self::from_forest(forest)
    }

    /// Wraps an externally fitted forest (ablations), compiling it into
    /// the flattened serving form.
    pub fn from_forest(forest: RandomForest) -> Self {
        Self::from_engine(FlatForest::compile(&forest))
    }

    /// Wraps an already-compiled engine.
    pub fn from_engine(engine: FlatForest) -> Self {
        Self {
            engine,
            fallback_mcs_threshold: 6,
            fallback_ba_overhead_ms: 10.0,
            mode: EngineMode::default(),
        }
    }

    /// Routes this classifier's predictions through the selected engine.
    ///
    /// `blocked` (the serving default elsewhere) recompiles the flat
    /// tables into the branchless arena — with `quantized` opting into
    /// the `f32` threshold tables; `flat` restores the depth-first walk.
    /// The recursive models are train-time only: artifacts carry the
    /// flattened tables, so there is nothing recursive left to serve.
    pub fn select_engine(&mut self, opts: &EngineOpts) -> Result<(), String> {
        match opts.kind {
            EngineKind::Recursive => Err(
                "the recursive engine is train-time only; artifacts carry flattened tables \
                 (choose flat or blocked)"
                    .into(),
            ),
            EngineKind::Flat => {
                self.mode = EngineMode::Flat;
                Ok(())
            }
            EngineKind::Blocked => {
                self.mode = EngineMode::Blocked(Arc::new(BlockedForest::compile(
                    &self.engine,
                    opts.exactness(),
                )));
                Ok(())
            }
        }
    }

    /// Label of the engine currently serving predictions
    /// (`flat`, `blocked`, or `blocked+quantized`).
    pub fn engine_label(&self) -> String {
        match &self.mode {
            EngineMode::Flat => "flat".into(),
            EngineMode::Blocked(b) => match b.exactness() {
                libra_infer::Exactness::Exact => "blocked".into(),
                libra_infer::Exactness::Quantized => "blocked+quantized".into(),
            },
        }
    }

    /// Per-class vote shares for one feature row on the selected engine
    /// (BA, RA, NA in class-index order).
    pub fn predict_proba_one(&self, row: &[f64]) -> Vec<f64> {
        match &self.mode {
            EngineMode::Flat => self.engine.predict_proba_one(row),
            EngineMode::Blocked(b) => b.predict_proba_one(row),
        }
    }

    /// Unpacks a frozen model artifact. Rejects artifacts whose engine
    /// kind or feature/class schema does not match the LiBRA pipeline.
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, libra_infer::Error> {
        let engine = match &artifact.payload {
            ModelPayload::Forest(f) => f.clone(),
            other => {
                return Err(libra_infer::Error::Payload(format!(
                    "LiBRA serves forest artifacts, got {}",
                    other.kind()
                )))
            }
        };
        if engine.n_features() != FEATURE_NAMES.len() {
            return Err(libra_infer::Error::Payload(format!(
                "artifact expects {} features, the LiBRA pipeline produces {}",
                engine.n_features(),
                FEATURE_NAMES.len()
            )));
        }
        if artifact.meta.class_labels != CLASS_LABELS {
            return Err(libra_infer::Error::Payload(format!(
                "artifact class labels {:?} != {:?}",
                artifact.meta.class_labels, CLASS_LABELS
            )));
        }
        Ok(Self::from_engine(engine))
    }

    /// Freezes the model into a registry artifact. `name` is the
    /// registry name to stamp into the metadata; `train_seed` /
    /// `train_rows` / `notes` record provenance.
    pub fn to_artifact(
        &self,
        name: &str,
        train_seed: u64,
        train_rows: u64,
        notes: &str,
    ) -> ModelArtifact {
        ModelArtifact {
            meta: ArtifactMeta {
                name: name.to_string(),
                feature_names: FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
                class_labels: CLASS_LABELS.iter().map(|s| s.to_string()).collect(),
                train_seed,
                train_rows,
                notes: notes.to_string(),
            },
            payload: ModelPayload::Forest(self.engine.clone()),
        }
    }

    /// Makes one adaptation decision — the single run-time entry point
    /// (and the telemetry choke point) replacing the former `classify` /
    /// `classify_proba` / `classify_gated` trio.
    ///
    /// Order of authority: a missing ACK skips the model entirely and
    /// applies the §7 fallback rule; otherwise the forest predicts, and
    /// a confidence gate (when set) can override a low-confidence
    /// prediction with the fallback rule.
    pub fn decide(&self, features: &Features, policy: &DecidePolicy) -> Decision {
        obs::counter("core.decide.calls", 1);
        if policy.ack_missing {
            obs::counter("core.decide.fallback", 1);
            let action = self.fallback(policy.current_mcs, policy.ba_overhead_ms);
            obs::counter(action_counter(action), 1);
            return Decision {
                action,
                proba: 0.0,
                gated: true,
            };
        }
        let probs = self.predict_proba_one(&features.to_row());
        let (idx, &p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .expect("non-empty");
        let model_action = match idx {
            0 => Action3::Ba,
            1 => Action3::Ra,
            _ => Action3::Na,
        };
        let decision = match policy.confidence_gate {
            Some(gate) if p < gate => {
                obs::counter("core.decide.gated", 1);
                Decision {
                    action: self.fallback(policy.current_mcs, policy.ba_overhead_ms),
                    proba: p,
                    gated: true,
                }
            }
            _ => Decision {
                action: model_action,
                proba: p,
                gated: false,
            },
        };
        obs::counter(action_counter(decision.action), 1);
        decision
    }

    /// The missing-ACK fallback rule (§7).
    pub fn fallback(&self, current_mcs: usize, ba_overhead_ms: f64) -> Action3 {
        if current_mcs < self.fallback_mcs_threshold
            || ba_overhead_ms < self.fallback_ba_overhead_ms
        {
            Action3::Ba
        } else {
            Action3::Ra
        }
    }

    /// The compiled serving engine (inspection, batch prediction).
    pub fn engine(&self) -> &FlatForest {
        &self.engine
    }

    /// Gini importances of the compiled forest (Table 3).
    pub fn feature_importances(&self) -> &[f64] {
        self.engine.feature_importances()
    }

    /// Persists the trained model to a binary file — what a vendor would
    /// ship in firmware after the offline training of §7. Prefer the
    /// checksummed [`LibraClassifier::to_artifact`] path for anything
    /// that leaves the machine.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), libra_util::binser::Error> {
        libra_util::binser::write_file(path, self)
    }

    /// Loads a model previously written by [`LibraClassifier::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, libra_util::binser::Error> {
        libra_util::binser::read_file(path)
    }
}

impl Classifier for LibraClassifier {
    fn predict_one(&self, row: &[f64]) -> usize {
        match &self.mode {
            EngineMode::Flat => self.engine.predict_one(row),
            EngineMode::Blocked(b) => b.predict_one(row),
        }
    }

    /// Batch-classifies every row of a frame view on the selected
    /// engine — the zero-copy serving path: rows are borrowed slices of
    /// the backing frame and `out` is reused across calls.
    fn predict_batch_into(&self, data: &libra_ml::FrameView<'_>, out: &mut Vec<usize>) {
        match &self.mode {
            EngineMode::Flat => self.engine.predict_batch_into(data, out),
            EngineMode::Blocked(b) => b.predict_batch_into(data, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_util::rng::rng_from_seed;

    fn tiny_3class() -> libra_ml::Dataset {
        // Synthetic separable 3-class data in the feature schema: big SNR
        // drop → BA, small drop + low CDR → RA, no change → NA.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let (row, label) = match i % 3 {
                0 => (
                    vec![12.0 + (i % 5) as f64, 1000.0, 0.5, 0.9, 0.5, 0.0, 3.0],
                    0usize,
                ),
                1 => (
                    vec![4.0 + (i % 3) as f64 * 0.3, -10.0, 0.3, 0.97, 0.9, 0.2, 6.0],
                    1,
                ),
                _ => (vec![0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 6.0], 2),
            };
            features.push(row);
            labels.push(label);
        }
        libra_ml::Dataset::new(
            features,
            labels,
            3,
            libra_dataset::FEATURE_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        )
    }

    fn feat(row: [f64; 7]) -> Features {
        Features {
            snr_diff_db: row[0],
            tof_diff_ns: row[1],
            noise_diff_db: row[2],
            pdp_similarity: row[3],
            csi_similarity: row[4],
            cdr: row[5],
            initial_mcs: row[6] as usize,
        }
    }

    fn model_decide(clf: &LibraClassifier, features: &Features) -> Action3 {
        clf.decide(features, &DecidePolicy::model_only()).action
    }

    #[test]
    fn classifies_separable_classes() {
        let mut rng = rng_from_seed(1);
        let clf = LibraClassifier::train(&tiny_3class(), &mut rng);
        assert_eq!(
            model_decide(&clf, &feat([13.0, 1000.0, 0.5, 0.9, 0.5, 0.0, 3.0])),
            Action3::Ba
        );
        assert_eq!(
            model_decide(&clf, &feat([4.2, -10.0, 0.3, 0.97, 0.9, 0.2, 6.0])),
            Action3::Ra
        );
        assert_eq!(
            model_decide(&clf, &feat([0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 6.0])),
            Action3::Na
        );
    }

    #[test]
    fn missing_ack_skips_the_model() {
        let mut rng = rng_from_seed(8);
        let clf = LibraClassifier::train(&tiny_3class(), &mut rng);
        // Clear NA features — but a missing ACK must route to the §7
        // fallback rule without consulting the model.
        let features = feat([0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 6.0]);
        let d = clf.decide(
            &features,
            &DecidePolicy {
                current_mcs: 3,
                ba_overhead_ms: 250.0,
                confidence_gate: None,
                ack_missing: true,
            },
        );
        assert_eq!(d.action, Action3::Ba); // MCS < 6 → BA
        assert!(d.gated);
        assert_eq!(d.proba, 0.0);
    }

    #[test]
    fn confidence_gate_defers_to_fallback() {
        let mut rng = rng_from_seed(9);
        let clf = LibraClassifier::train(&tiny_3class(), &mut rng);
        let features = feat([13.0, 1000.0, 0.5, 0.9, 0.5, 0.0, 7.0]);
        let base = clf.decide(&features, &DecidePolicy::model_only());
        assert!(!base.gated);
        // An unclearable gate forces the fallback (MCS 7, expensive BA → RA).
        let gated = clf.decide(
            &features,
            &DecidePolicy {
                current_mcs: 7,
                ba_overhead_ms: 250.0,
                confidence_gate: Some(1.1),
                ack_missing: false,
            },
        );
        assert!(gated.gated);
        assert_eq!(gated.action, Action3::Ra);
        assert_eq!(gated.proba, base.proba); // model confidence still reported
                                             // A trivially clearable gate acts on the model.
        let open = clf.decide(
            &features,
            &DecidePolicy {
                current_mcs: 7,
                ba_overhead_ms: 250.0,
                confidence_gate: Some(0.0),
                ack_missing: false,
            },
        );
        assert!(!open.gated);
        assert_eq!(open.action, base.action);
    }

    #[test]
    fn compiled_engine_matches_recursive_forest() {
        // The classifier serves from the flattened engine; its calls must
        // agree bitwise with the recursive forest it was compiled from.
        let data = tiny_3class();
        let mut rng = rng_from_seed(7);
        let mut forest = RandomForest::new(ForestConfig::default());
        forest.fit(&data, &mut rng);
        let clf = LibraClassifier::from_forest(forest.clone());
        for row in data.rows() {
            let rp = forest.predict_proba_one(row);
            let fp = clf.engine().predict_proba_one(row);
            assert_eq!(rp.len(), fp.len());
            for (a, b) in rp.iter().zip(fp.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(clf.feature_importances(), forest.feature_importances());
    }

    #[test]
    fn engine_selection_switches_modes_and_rejects_recursive() {
        use libra_ml::Classifier;

        let data = tiny_3class();
        let mut rng = rng_from_seed(11);
        let mut clf = LibraClassifier::train(&data, &mut rng);
        assert_eq!(clf.engine_label(), "flat");

        // Recursive is train-time only: artifacts carry flattened tables.
        let recursive = EngineOpts::new(libra_infer::EngineKind::Recursive, false);
        let err = clf.select_engine(&recursive.unwrap()).unwrap_err();
        assert!(err.contains("train-time only"), "got: {err}");
        assert_eq!(
            clf.engine_label(),
            "flat",
            "failed selection must not switch"
        );

        // Blocked exact is bitwise identical to flat on every row.
        let flat_preds = clf.predict_view(&data.view());
        clf.select_engine(&EngineOpts::default()).unwrap();
        assert_eq!(clf.engine_label(), "blocked");
        assert_eq!(clf.predict_view(&data.view()), flat_preds);
        for row in data.rows() {
            let (f, b) = (
                clf.engine().predict_proba_one(row),
                clf.predict_proba_one(row),
            );
            assert_eq!(f.len(), b.len());
            for (a, b) in f.iter().zip(b.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Quantized is an explicit opt-in and labels itself as such.
        let quant = EngineOpts::new(libra_infer::EngineKind::Blocked, true).unwrap();
        clf.select_engine(&quant).unwrap();
        assert_eq!(clf.engine_label(), "blocked+quantized");
    }

    #[test]
    fn fallback_rule_matches_paper() {
        let mut rng = rng_from_seed(2);
        let clf = LibraClassifier::train(&tiny_3class(), &mut rng);
        // MCS below 6 → always BA, regardless of overhead.
        assert_eq!(clf.fallback(3, 250.0), Action3::Ba);
        // MCS 6+, cheap BA → BA.
        assert_eq!(clf.fallback(6, 0.5), Action3::Ba);
        // MCS 6+, expensive BA → RA.
        assert_eq!(clf.fallback(7, 250.0), Action3::Ra);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = rng_from_seed(4);
        let clf = LibraClassifier::train(&tiny_3class(), &mut rng);
        let dir = std::env::temp_dir().join("libra-clf-test");
        let path = dir.join("model.bin");
        clf.save(&path).expect("save");
        let back = LibraClassifier::load(&path).expect("load");
        // The loaded model must classify identically.
        for row in [
            [13.0, 1000.0, 0.5, 0.9, 0.5, 0.0, 3.0],
            [4.2, -10.0, 0.3, 0.97, 0.9, 0.2, 6.0],
            [0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 6.0],
        ] {
            assert_eq!(
                model_decide(&clf, &feat(row)),
                model_decide(&back, &feat(row))
            );
        }
        assert_eq!(clf.feature_importances(), back.feature_importances());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn artifact_roundtrip_preserves_predictions() {
        let mut rng = rng_from_seed(5);
        let clf = LibraClassifier::train(&tiny_3class(), &mut rng);
        let art = clf.to_artifact("unit-test", 5, 120, "classifier unit test");
        let bytes = art.to_bytes().expect("serialize");
        let back =
            LibraClassifier::from_artifact(&ModelArtifact::from_bytes(&bytes).expect("parse"))
                .expect("unpack");
        for row in [
            [13.0, 1000.0, 0.5, 0.9, 0.5, 0.0, 3.0],
            [4.2, -10.0, 0.3, 0.97, 0.9, 0.2, 6.0],
            [0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 6.0],
        ] {
            let a = clf.decide(&feat(row), &DecidePolicy::model_only());
            let b = back.decide(&feat(row), &DecidePolicy::model_only());
            assert_eq!(a.action, b.action);
            assert_eq!(a.proba.to_bits(), b.proba.to_bits());
        }
    }

    #[test]
    fn artifact_schema_mismatch_is_rejected() {
        let mut rng = rng_from_seed(6);
        let clf = LibraClassifier::train(&tiny_3class(), &mut rng);
        let mut art = clf.to_artifact("unit-test", 6, 120, "");
        art.meta.class_labels = vec!["UP".into(), "DOWN".into(), "HOLD".into()];
        assert!(LibraClassifier::from_artifact(&art).is_err());
    }

    #[test]
    #[should_panic(expected = "3-class")]
    fn rejects_binary_dataset() {
        let data = libra_ml::Dataset::new(
            vec![vec![0.0; 7], vec![1.0; 7]],
            vec![0, 1],
            2,
            libra_dataset::FEATURE_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        let mut rng = rng_from_seed(3);
        LibraClassifier::train(&data, &mut rng);
    }
}
