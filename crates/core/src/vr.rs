//! The VR application study (paper §8.4, Table 4).
//!
//! The paper streams a 30 s Viking Village scene at 8K / 60 FPS —
//! a demand of about 1.2 Gbps — over mobility timelines, with all link
//! throughputs scaled from X60's 4.75 Gbps envelope down to what COTS
//! 802.11ad achieves (~2.4 Gbps peak). Quality of experience is
//! measured as the *average stall duration* and the *number of stalls*.
//!
//! This module provides a synthetic encoded-frame-size trace with the
//! same mean demand and scene-driven variation, plus a playback model:
//! frame `f` is due `f/60` s into playback; if its bytes have not fully
//! arrived by its scheduled display time, playback stalls until they
//! have.

use crate::sim::RateSpan;
use libra_util::rng::standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Throughput scale factor from X60's envelope (4.75 Gbps) to COTS
/// 802.11ad peak rates (~2.4 Gbps, §8.4).
pub const COTS_TPUT_SCALE: f64 = 2400.0 / 4750.0;

/// A sequence of encoded VR frame sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VrTrace {
    /// Bytes per video frame.
    pub frame_bytes: Vec<f64>,
    /// Frames per second.
    pub fps: f64,
}

impl VrTrace {
    /// A synthetic 8K@60FPS trace of the given duration with mean demand
    /// `mean_gbps` (paper: ≤ 1.2 Gbps). Frame sizes vary with a slow
    /// scene-complexity oscillation (≈ 5 s period, ±25 %) plus white
    /// per-frame variation (±10 %), floored at 20 % of the mean.
    pub fn synthetic_8k(duration_s: f64, mean_gbps: f64, rng: &mut impl Rng) -> Self {
        let fps = 60.0;
        let n = (duration_s * fps).round() as usize;
        let mean_bytes = mean_gbps * 1e9 / 8.0 / fps;
        let frame_bytes = (0..n)
            .map(|f| {
                let t = f as f64 / fps;
                let scene = 1.0 + 0.25 * (2.0 * std::f64::consts::PI * t / 5.0).sin();
                let noise = 1.0 + 0.10 * standard_normal(rng);
                (mean_bytes * scene * noise).max(mean_bytes * 0.2)
            })
            .collect();
        Self { frame_bytes, fps }
    }

    /// Total bytes of the trace.
    pub fn total_bytes(&self) -> f64 {
        self.frame_bytes.iter().sum()
    }

    /// Mean demand in Gbps.
    pub fn mean_gbps(&self) -> f64 {
        self.total_bytes() * 8.0 / 1e9 / (self.frame_bytes.len() as f64 / self.fps)
    }
}

/// Playback quality metrics of one streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    /// Number of distinct stall events.
    pub n_stalls: usize,
    /// Total stalled time, ms.
    pub total_stall_ms: f64,
    /// Mean duration of a stall event, ms (0 when there were none).
    pub mean_stall_ms: f64,
}

/// Plays the VR trace against a delivery schedule (rate spans from the
/// link simulator) and reports stalls.
///
/// The model is a *live* interactive stream (the paper's VR game):
/// frame `f` is rendered at `f/fps` and **cannot start transmitting
/// before then** — there is no multi-second prebuffer to mask outages,
/// which is exactly why VR is the paper's stress test for link recovery
/// delay. Frame `f`'s scheduled display time is one frame interval after
/// the previous frame's display; when its bytes have not fully arrived
/// by then, playback freezes until they have — one stall event per
/// freeze.
pub fn play(trace: &VrTrace, spans: &[RateSpan]) -> StallReport {
    let frame_interval_ms = 1000.0 / trace.fps;
    let mut stalls = 0usize;
    let mut total_stall_ms = 0.0f64;
    let mut display_clock_ms = 0.0f64;
    let mut cursor = DeliveryCursor::new(spans);
    // Time at which the link finished sending the previous frame.
    let mut link_free_ms = 0.0f64;

    for (f, &bytes) in trace.frame_bytes.iter().enumerate() {
        let render_ms = f as f64 / trace.fps * 1000.0;
        let start_ms = link_free_ms.max(render_ms);
        let arrival_ms = cursor.finish_time(start_ms, bytes);
        link_free_ms = arrival_ms;
        let due_ms = display_clock_ms + frame_interval_ms;
        if arrival_ms > due_ms {
            stalls += 1;
            total_stall_ms += arrival_ms - due_ms;
            display_clock_ms = arrival_ms;
        } else {
            display_clock_ms = due_ms;
        }
        if arrival_ms.is_infinite() {
            break; // nothing more will ever arrive
        }
    }

    StallReport {
        n_stalls: stalls,
        total_stall_ms,
        mean_stall_ms: if stalls == 0 {
            0.0
        } else {
            total_stall_ms / stalls as f64
        },
    }
}

/// Walks a span list answering "starting at time `t`, when have `b`
/// bytes been pushed through the link?". Queries must be issued with
/// non-decreasing start times.
struct DeliveryCursor<'a> {
    spans: &'a [RateSpan],
    idx: usize,
}

impl<'a> DeliveryCursor<'a> {
    fn new(spans: &'a [RateSpan]) -> Self {
        Self { spans, idx: 0 }
    }

    fn finish_time(&mut self, start_ms: f64, bytes: f64) -> f64 {
        let mut remaining = bytes;
        let mut t = start_ms;
        let mut idx = self.idx;
        loop {
            let Some(span) = self.spans.get(idx) else {
                return f64::INFINITY; // link gone: never arrives
            };
            let span_end = span.start_ms + span.len_ms;
            if span_end <= t {
                idx += 1;
                self.idx = idx; // start times are monotone; safe to advance
                continue;
            }
            let from = t.max(span.start_ms);
            let window_ms = span_end - from;
            let bytes_per_ms = span.mbps * 1e6 / 1000.0 / 8.0;
            let deliverable = bytes_per_ms * window_ms;
            if deliverable >= remaining && bytes_per_ms > 0.0 {
                return from + remaining / bytes_per_ms;
            }
            remaining -= deliverable;
            t = span_end;
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_util::rng::rng_from_seed;

    fn trace() -> VrTrace {
        let mut rng = rng_from_seed(1);
        VrTrace::synthetic_8k(30.0, 1.2, &mut rng)
    }

    #[test]
    fn synthetic_trace_matches_demand() {
        let t = trace();
        assert_eq!(t.frame_bytes.len(), 1800);
        assert!((t.mean_gbps() - 1.2).abs() < 0.1, "mean {}", t.mean_gbps());
        assert!(t.frame_bytes.iter().all(|&b| b > 0.0));
    }

    #[test]
    fn fast_link_never_stalls() {
        let t = trace();
        // Constant 2.4 Gbps for the whole 30 s — double the demand.
        let spans = [RateSpan {
            start_ms: 0.0,
            len_ms: 31_000.0,
            mbps: 2400.0,
        }];
        let rep = play(&t, &spans);
        assert_eq!(rep.n_stalls, 0);
        assert_eq!(rep.total_stall_ms, 0.0);
    }

    #[test]
    fn outage_causes_a_stall() {
        let t = trace();
        // Fast, then a 500 ms outage, then fast again. Live streaming
        // cannot prebuffer unrendered frames, so the outage must stall
        // playback for roughly its own duration.
        let spans = [
            RateSpan {
                start_ms: 0.0,
                len_ms: 10_000.0,
                mbps: 2400.0,
            },
            RateSpan {
                start_ms: 10_000.0,
                len_ms: 500.0,
                mbps: 0.0,
            },
            RateSpan {
                start_ms: 10_500.0,
                len_ms: 25_000.0,
                mbps: 2400.0,
            },
        ];
        let rep = play(&t, &spans);
        assert!(rep.n_stalls >= 1, "outage should stall: {rep:?}");
        assert!(
            rep.total_stall_ms > 300.0 && rep.total_stall_ms < 700.0,
            "stall should be ≈ outage length: {rep:?}"
        );
    }

    #[test]
    fn starved_link_stalls_constantly() {
        let t = trace();
        let spans = [RateSpan {
            start_ms: 0.0,
            len_ms: 120_000.0,
            mbps: 600.0,
        }];
        let rep = play(&t, &spans);
        assert!(rep.n_stalls > 100, "stalls {}", rep.n_stalls);
    }

    #[test]
    fn undelivered_tail_is_infinite_stall() {
        let t = trace();
        let spans = [RateSpan {
            start_ms: 0.0,
            len_ms: 1000.0,
            mbps: 2400.0,
        }];
        let rep = play(&t, &spans);
        assert!(rep.total_stall_ms.is_infinite());
    }

    #[test]
    fn cursor_interpolates_within_span() {
        let spans = [RateSpan {
            start_ms: 0.0,
            len_ms: 1000.0,
            mbps: 8.0,
        }];
        // 8 Mbps = 1000 bytes/ms.
        let mut c = DeliveryCursor::new(&spans);
        assert!((c.finish_time(0.0, 500_000.0) - 500.0).abs() < 1e-6);
        assert!((c.finish_time(500.0, 500_000.0) - 1000.0).abs() < 1e-6);
        assert!(c.finish_time(900.0, 500_000.0).is_infinite());
    }

    #[test]
    fn cursor_waits_for_rate_to_resume() {
        let spans = [
            RateSpan {
                start_ms: 0.0,
                len_ms: 100.0,
                mbps: 8.0,
            },
            RateSpan {
                start_ms: 100.0,
                len_ms: 200.0,
                mbps: 0.0,
            },
            RateSpan {
                start_ms: 300.0,
                len_ms: 1000.0,
                mbps: 8.0,
            },
        ];
        let mut c = DeliveryCursor::new(&spans);
        // 150 000 bytes: 100 ms delivers 100 000, outage, then 50 ms.
        assert!((c.finish_time(0.0, 150_000.0) - 350.0).abs() < 1e-6);
    }
}
