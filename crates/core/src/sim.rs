//! The trace-based link simulator of §8.
//!
//! Time is discretized in frames of one FAT each. A *segment* is a span
//! of time with static channel conditions, described by two measured
//! configurations: `old` — the beam pair the device holds when the
//! segment starts — and `best` — the pair a sector sweep would find.
//! Policies act at the segment boundary (where the impairment hits) and
//! then run the shared frame-based RA machinery (Algorithm 1): downward
//! ladder to the first working MCS, BA fallback when the ladder runs
//! dry, and adaptive upward probing with the `T = T0·min(2^k, 25)`
//! backoff.
//!
//! All five algorithms of the evaluation run through this executor:
//! `RA First` and `BA First` (the COTS heuristics), `LiBRA`, and the two
//! oracles, which branch-simulate both actions with perfect knowledge
//! and keep the better outcome (`Oracle-Data` by bytes, `Oracle-Delay`
//! by recovery delay).

use crate::classifier::{DecidePolicy, LibraClassifier};
use libra_dataset::{Action3, DatasetEntry, Features};
use libra_mac::ProtocolParams;
use libra_obs as obs;
use libra_util::SharedSeries;
use serde::{Deserialize, Serialize};

/// Per-MCS measurements of one link configuration (beam pair).
///
/// The per-MCS tables are [`SharedSeries`] handles: building a
/// `ConfigData` from a measurement bumps a reference count instead of
/// cloning the vectors, so the thousands of segments of a §8 evaluation
/// grid all read the same backing tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigData {
    /// Mean MAC throughput per MCS, Mbps.
    pub tput_mbps: SharedSeries,
    /// Mean CDR per MCS.
    pub cdr: SharedSeries,
}

impl ConfigData {
    /// Builds from a pair measurement, sharing its tables (no copy).
    pub fn from_measurement(m: &libra_dataset::PairMeasurement) -> Self {
        Self {
            tput_mbps: m.tput_mbps.clone(),
            cdr: m.cdr.clone(),
        }
    }
}

/// Which configuration the device currently transmits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Config {
    /// The pair held at segment entry.
    Old,
    /// The segment-best pair (after BA).
    Best,
}

/// One simulation segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentData {
    /// Measurements on the held pair.
    pub old: ConfigData,
    /// Measurements on the segment-best pair.
    pub best: ConfigData,
    /// PHY-metric deltas observed at segment entry (classifier input).
    pub features: Features,
    /// Segment duration, ms.
    pub duration_ms: f64,
}

impl SegmentData {
    /// Builds a flow segment from a dataset entry (the single-impairment
    /// evaluation of §8.2: the flow starts at the moment the impairment
    /// hits).
    pub fn from_entry(entry: &DatasetEntry, duration_ms: f64) -> Self {
        Self {
            old: ConfigData::from_measurement(&entry.new_old_pair),
            best: ConfigData::from_measurement(&entry.new_best_pair),
            features: entry.features,
            duration_ms,
        }
    }

    pub(crate) fn data(&self, c: Config) -> &ConfigData {
        match c {
            Config::Old => &self.old,
            Config::Best => &self.best,
        }
    }
}

/// Simulator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Protocol parameters (BA overhead + FAT).
    pub params: ProtocolParams,
    /// Working-MCS CDR threshold (§5.2: 0.10).
    pub min_cdr: f64,
    /// Working-MCS throughput threshold, Mbps (§5.2: 150).
    pub min_tput_mbps: f64,
    /// Minimum upward-probe interval `T0`, frames (§7: 5 frames).
    pub t0_frames: u32,
    /// CDR threshold above which an upward probe is attempted
    /// (`CDR_ORI` of [63]).
    pub cdr_ori: f64,
    /// Global throughput scale (the VR study scales X60 rates down to
    /// COTS levels); 1.0 otherwise.
    pub tput_scale: f64,
    /// Confidence gate for LiBRA's classifier (extension): `Some(θ)`
    /// routes predictions with vote share < θ through the fallback rule
    /// instead. `None` (the paper's design) always trusts the model.
    pub libra_confidence_gate: Option<f64>,
}

impl SimConfig {
    /// Default simulator setup for the given protocol parameters.
    pub fn new(params: ProtocolParams) -> Self {
        Self {
            params,
            min_cdr: 0.10,
            min_tput_mbps: 150.0,
            t0_frames: 5,
            cdr_ori: 0.9,
            tput_scale: 1.0,
            libra_confidence_gate: None,
        }
    }

    pub(crate) fn working(&self, seg: &SegmentData, c: Config, m: usize) -> bool {
        let d = seg.data(c);
        d.cdr[m] > self.min_cdr && d.tput_mbps[m] * self.tput_scale > self.min_tput_mbps
    }

    pub(crate) fn tput(&self, seg: &SegmentData, c: Config, m: usize) -> f64 {
        seg.data(c).tput_mbps[m] * self.tput_scale
    }

    /// Bytes delivered by a span of `ms` milliseconds at `mbps`.
    pub(crate) fn bytes(mbps: f64, ms: f64) -> f64 {
        mbps * 1e6 * ms / 1000.0 / 8.0
    }
}

/// The five algorithms of §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Always RA first — what COTS devices do.
    RaFirst,
    /// Always BA first — the [14] proposal.
    BaFirst,
    /// LiBRA (classifier + fallback).
    Libra,
    /// Byte-maximizing oracle.
    OracleData,
    /// Delay-minimizing oracle.
    OracleDelay,
}

impl PolicyKind {
    /// The three non-oracle algorithms compared in Figs 10–13.
    pub const HEURISTICS: [PolicyKind; 3] =
        [PolicyKind::BaFirst, PolicyKind::RaFirst, PolicyKind::Libra];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::RaFirst => "RA First",
            PolicyKind::BaFirst => "BA First",
            PolicyKind::Libra => "LiBRA",
            PolicyKind::OracleData => "Oracle-Data",
            PolicyKind::OracleDelay => "Oracle-Delay",
        }
    }
}

/// Telemetry counter name for a (policy, segment-entry action) pair —
/// counter keys must be `&'static str`, so the 15 combinations are
/// enumerated here.
fn policy_action_counter(policy: PolicyKind, action: Action3) -> &'static str {
    match (policy, action) {
        (PolicyKind::RaFirst, Action3::Ba) => "sim.ra_first.action.ba",
        (PolicyKind::RaFirst, Action3::Ra) => "sim.ra_first.action.ra",
        (PolicyKind::RaFirst, Action3::Na) => "sim.ra_first.action.na",
        (PolicyKind::BaFirst, Action3::Ba) => "sim.ba_first.action.ba",
        (PolicyKind::BaFirst, Action3::Ra) => "sim.ba_first.action.ra",
        (PolicyKind::BaFirst, Action3::Na) => "sim.ba_first.action.na",
        (PolicyKind::Libra, Action3::Ba) => "sim.libra.action.ba",
        (PolicyKind::Libra, Action3::Ra) => "sim.libra.action.ra",
        (PolicyKind::Libra, Action3::Na) => "sim.libra.action.na",
        (PolicyKind::OracleData, Action3::Ba) => "sim.oracle_data.action.ba",
        (PolicyKind::OracleData, Action3::Ra) => "sim.oracle_data.action.ra",
        (PolicyKind::OracleData, Action3::Na) => "sim.oracle_data.action.na",
        (PolicyKind::OracleDelay, Action3::Ba) => "sim.oracle_delay.action.ba",
        (PolicyKind::OracleDelay, Action3::Ra) => "sim.oracle_delay.action.ra",
        (PolicyKind::OracleDelay, Action3::Na) => "sim.oracle_delay.action.na",
    }
}

/// Link state carried across segments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// MCS currently in use.
    pub mcs: usize,
    /// Upward-probe countdown, frames.
    pub probe_wait_frames: u32,
    /// Consecutive failed upward probes (`k`).
    pub failed_probes: u32,
    /// Whether the device switched to the segment-best pair during the
    /// last executed segment (the timeline runner uses this to track the
    /// held pair).
    pub did_ba: bool,
}

impl LinkState {
    /// Fresh state at the given MCS.
    pub fn at_mcs(mcs: usize) -> Self {
        Self {
            mcs,
            probe_wait_frames: 5,
            failed_probes: 0,
            did_ba: false,
        }
    }
}

/// A span of time delivering at a constant rate (the VR player consumes
/// these to reconstruct the cumulative-bytes timeline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSpan {
    /// Span start, ms from segment entry.
    pub start_ms: f64,
    /// Span length, ms.
    pub len_ms: f64,
    /// Delivery rate over the span, Mbps (0 during BA).
    pub mbps: f64,
}

/// What one segment run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentOutcome {
    /// Bytes delivered within the segment.
    pub bytes: f64,
    /// Link recovery delay, ms: time from segment entry until the first
    /// working (config, MCS) is in use. `None` when the link was never
    /// broken; capped at the segment duration when never recovered.
    pub recovery_delay_ms: Option<f64>,
    /// State at segment end.
    pub end_state: LinkState,
    /// Constant-rate delivery spans covering the segment (coalesced).
    pub spans: Vec<RateSpan>,
}

/// Decides the segment-entry action for a policy (without running the
/// segment) and bumps the per-(policy, action) telemetry counter.
///
/// The oracles branch-simulate candidate actions with perfect
/// single-link knowledge via [`execute`]; the multi-station engine
/// reuses this decision path unchanged, so a policy decides the same
/// way whether one link or a whole cell is being simulated.
pub fn decide_action(
    seg: &SegmentData,
    policy: PolicyKind,
    clf: Option<&LibraClassifier>,
    state: LinkState,
    cfg: &SimConfig,
) -> Action3 {
    let broken = !cfg.working(seg, Config::Old, state.mcs);
    let action = match policy {
        PolicyKind::RaFirst => {
            if broken {
                Action3::Ra
            } else {
                Action3::Na
            }
        }
        PolicyKind::BaFirst => {
            if broken {
                Action3::Ba
            } else {
                Action3::Na
            }
        }
        PolicyKind::Libra => {
            let clf = clf.expect("LiBRA needs a classifier");
            // One decision call carries the whole §7 policy: the
            // missing-ACK shortcut, the optional confidence gate, and
            // the fallback-rule inputs.
            clf.decide(
                &seg.features,
                &DecidePolicy {
                    current_mcs: state.mcs,
                    ba_overhead_ms: cfg.params.ba_ms(),
                    confidence_gate: cfg.libra_confidence_gate,
                    ack_missing: seg.old.cdr[state.mcs] < 0.005,
                },
            )
            .action
        }
        PolicyKind::OracleData => {
            // Branch-simulate all three actions with perfect knowledge —
            // including "no adaptation", so the oracle also captures
            // improvement opportunities (e.g. a blocker stepping away
            // while the device idles on a reflection pair).
            let na = execute(seg, Action3::Na, state, cfg);
            let ra = execute(seg, Action3::Ra, state, cfg);
            let ba = execute(seg, Action3::Ba, state, cfg);
            if na.bytes >= ra.bytes && na.bytes >= ba.bytes {
                Action3::Na
            } else if ra.bytes >= ba.bytes {
                Action3::Ra
            } else {
                Action3::Ba
            }
        }
        PolicyKind::OracleDelay => {
            if !broken {
                Action3::Na
            } else {
                let ra = execute(seg, Action3::Ra, state, cfg);
                let ba = execute(seg, Action3::Ba, state, cfg);
                let dra = ra.recovery_delay_ms.unwrap_or(f64::INFINITY);
                let dba = ba.recovery_delay_ms.unwrap_or(f64::INFINITY);
                if dra <= dba {
                    Action3::Ra
                } else {
                    Action3::Ba
                }
            }
        }
    };
    obs::counter(policy_action_counter(policy, action), 1);
    action
}

/// Decides the segment-entry action for a policy and runs the segment.
pub fn run_policy_segment(
    seg: &SegmentData,
    policy: PolicyKind,
    clf: Option<&LibraClassifier>,
    state: LinkState,
    cfg: &SimConfig,
) -> SegmentOutcome {
    let action = decide_action(seg, policy, clf, state, cfg);
    execute(seg, action, state, cfg)
}

/// Runs one segment with a fixed entry action.
///
/// Since the event-core refactor this is the 1-AP/1-station degenerate
/// case of the discrete-event engine: one [`crate::event::LinkMachine`]
/// driven by one [`crate::event::EventQueue`], each step scheduling the
/// next at the machine's local time. The per-step arithmetic is the
/// pre-refactor loop body verbatim, so outcomes are bitwise identical
/// to the old monolithic implementation (`tests/golden_engine.rs`).
pub fn execute(
    seg: &SegmentData,
    action: Action3,
    state: LinkState,
    cfg: &SimConfig,
) -> SegmentOutcome {
    let _span = obs::span("sim.execute");
    let mut machine = crate::event::LinkMachine::new(seg, action, state, cfg);
    let mut queue = crate::event::EventQueue::new();
    queue.push(0, 0, ());
    while !machine.is_done() {
        let (_key, ()) = queue.pop().expect("pending event for a live machine");
        machine.step(seg, cfg);
        if !machine.is_done() {
            queue.push(crate::event::ms_to_ns(machine.local_time_ms()), 0, ());
        }
    }
    machine.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_mac::BaOverheadPreset;

    fn cfgdata(tputs: [f64; 9], cdrs: [f64; 9]) -> ConfigData {
        ConfigData {
            tput_mbps: tputs.to_vec().into(),
            cdr: cdrs.to_vec().into(),
        }
    }

    fn feat_zero() -> Features {
        Features {
            snr_diff_db: 0.0,
            tof_diff_ns: 0.0,
            noise_diff_db: 0.0,
            pdp_similarity: 1.0,
            csi_similarity: 1.0,
            cdr: 1.0,
            initial_mcs: 6,
        }
    }

    /// Old pair dead, best pair working at MCS 3.
    fn seg_ba_needed(duration_ms: f64) -> SegmentData {
        SegmentData {
            old: cfgdata(
                [40.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                [0.13, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            ),
            best: cfgdata(
                [300.0, 850.0, 1400.0, 1900.0, 1100.0, 150.0, 0.0, 0.0, 0.0],
                [1.0, 1.0, 1.0, 0.97, 0.45, 0.05, 0.0, 0.0, 0.0],
            ),
            features: feat_zero(),
            duration_ms,
        }
    }

    /// Old pair still works at MCS 5; best pair barely better.
    fn seg_ra_enough(duration_ms: f64) -> SegmentData {
        SegmentData {
            old: cfgdata(
                [
                    300.0, 850.0, 1400.0, 1950.0, 2400.0, 2800.0, 900.0, 0.0, 0.0,
                ],
                [1.0, 1.0, 1.0, 1.0, 0.96, 0.92, 0.25, 0.0, 0.0],
            ),
            best: cfgdata(
                [
                    300.0, 850.0, 1400.0, 1950.0, 2450.0, 2850.0, 950.0, 0.0, 0.0,
                ],
                [1.0, 1.0, 1.0, 1.0, 0.97, 0.93, 0.26, 0.0, 0.0],
            ),
            features: feat_zero(),
            duration_ms,
        }
    }

    fn sim(ba: BaOverheadPreset, fat: f64) -> SimConfig {
        SimConfig::new(ProtocolParams::new(ba, fat))
    }

    #[test]
    fn ba_first_pays_overhead_then_recovers() {
        let seg = seg_ba_needed(1000.0);
        let cfg = sim(BaOverheadPreset::Directional7, 2.0);
        let out = run_policy_segment(&seg, PolicyKind::BaFirst, None, LinkState::at_mcs(6), &cfg);
        // 250 ms BA + descending probes 6,5,4 — MCS 4 is the first
        // *working* MCS (CDR 0.45, 1100 Mbps) → recovery at 256 ms; the
        // ladder keeps descending while throughput improves and settles
        // on MCS 3 (1900 Mbps).
        assert_eq!(out.recovery_delay_ms, Some(256.0));
        assert!(out.end_state.did_ba);
        assert_eq!(out.end_state.mcs, 3);
        assert!(out.bytes > 0.0);
    }

    #[test]
    fn ra_first_fails_ladder_then_does_ba() {
        let seg = seg_ba_needed(1000.0);
        let cfg = sim(BaOverheadPreset::QuasiOmni30, 2.0);
        let out = run_policy_segment(&seg, PolicyKind::RaFirst, None, LinkState::at_mcs(6), &cfg);
        // The old-pair ladder descends 6..0 (tput improves 0→40 Mbps all
        // the way down but MCS 0 is not working) = 7 probes (14 ms),
        // fails → BA 0.5 ms → new-pair probes 6,5,4 discover working
        // MCS 4 at 20.5 ms (and settle on MCS 3).
        assert_eq!(out.recovery_delay_ms, Some(20.5));
        assert!(out.end_state.did_ba);
        assert_eq!(out.end_state.mcs, 3);
    }

    #[test]
    fn ra_first_quick_when_ra_enough() {
        let seg = seg_ra_enough(1000.0);
        let cfg = sim(BaOverheadPreset::Directional7, 2.0);
        let out = run_policy_segment(&seg, PolicyKind::RaFirst, None, LinkState::at_mcs(6), &cfg);
        // 6 not working (cdr 0.25 > 0.1 but tput 900 > 150 → working!).
        // Actually MCS 6 IS working here → link not broken → Na.
        assert_eq!(out.recovery_delay_ms, None);
        assert!(!out.end_state.did_ba);
    }

    #[test]
    fn broken_link_ra_recovers_fast() {
        // Make MCS 6 non-working on old pair.
        let mut seg = seg_ra_enough(1000.0);
        seg.old.cdr[6] = 0.02;
        seg.old.tput_mbps[6] = 60.0;
        let cfg = sim(BaOverheadPreset::Directional7, 2.0);
        let out = run_policy_segment(&seg, PolicyKind::RaFirst, None, LinkState::at_mcs(6), &cfg);
        // Probes 6 (fail), 5 (working, 2800 Mbps and throughput peaks
        // there) → recovery after 2 probes = 4 ms, settle at MCS 5.
        assert_eq!(out.recovery_delay_ms, Some(4.0));
        assert!(!out.end_state.did_ba);
        assert_eq!(out.end_state.mcs, 5);
    }

    #[test]
    fn oracle_data_beats_or_matches_both() {
        for seg in [seg_ba_needed(1000.0), seg_ra_enough(400.0)] {
            let cfg = sim(BaOverheadPreset::QuasiOmni3, 10.0);
            let s = LinkState::at_mcs(6);
            let od = run_policy_segment(&seg, PolicyKind::OracleData, None, s, &cfg);
            let ra = run_policy_segment(&seg, PolicyKind::RaFirst, None, s, &cfg);
            let ba = run_policy_segment(&seg, PolicyKind::BaFirst, None, s, &cfg);
            assert!(od.bytes + 1.0 >= ra.bytes.max(ba.bytes));
        }
    }

    #[test]
    fn oracle_delay_minimizes_delay() {
        let seg = seg_ba_needed(1000.0);
        let cfg = sim(BaOverheadPreset::Directional7, 2.0);
        let s = LinkState::at_mcs(6);
        let od = run_policy_segment(&seg, PolicyKind::OracleDelay, None, s, &cfg);
        let ra = run_policy_segment(&seg, PolicyKind::RaFirst, None, s, &cfg);
        let ba = run_policy_segment(&seg, PolicyKind::BaFirst, None, s, &cfg);
        let d = |o: &SegmentOutcome| o.recovery_delay_ms.unwrap();
        assert!(d(&od) <= d(&ra).min(d(&ba)));
    }

    #[test]
    fn healthy_link_delivers_full_rate() {
        let seg = seg_ra_enough(1000.0);
        let cfg = sim(BaOverheadPreset::QuasiOmni30, 10.0);
        let out = run_policy_segment(&seg, PolicyKind::RaFirst, None, LinkState::at_mcs(5), &cfg);
        // ~2800 Mbps × 1 s = 350 MB; allow for the probe overhead.
        assert!(out.bytes > 0.9 * 350e6, "bytes {}", out.bytes);
    }

    #[test]
    fn up_probing_climbs_after_recovery() {
        // Old pair dead; best pair works up to MCS 3; start at MCS 1 —
        // probing should climb 1 → 3 and stop (4 not working: probes
        // fail and back off).
        let seg = SegmentData {
            old: cfgdata([0.0; 9], [0.0; 9]),
            best: cfgdata(
                [300.0, 850.0, 1400.0, 1900.0, 90.0, 0.0, 0.0, 0.0, 0.0],
                [1.0, 1.0, 0.99, 0.97, 0.03, 0.0, 0.0, 0.0, 0.0],
            ),
            features: feat_zero(),
            duration_ms: 2000.0,
        };
        let cfg = sim(BaOverheadPreset::QuasiOmni30, 2.0);
        let out = run_policy_segment(&seg, PolicyKind::BaFirst, None, LinkState::at_mcs(1), &cfg);
        assert_eq!(out.end_state.mcs, 3, "should climb to the best working MCS");
    }

    #[test]
    fn bytes_clamped_to_duration() {
        let seg = seg_ra_enough(5.0); // shorter than one 10 ms frame
        let cfg = sim(BaOverheadPreset::QuasiOmni30, 10.0);
        let out = run_policy_segment(&seg, PolicyKind::RaFirst, None, LinkState::at_mcs(5), &cfg);
        let max_bytes = 2800.0 * 1e6 * 0.005 / 8.0;
        assert!(out.bytes <= max_bytes * 1.001, "bytes {}", out.bytes);
    }

    #[test]
    fn never_recovering_link_caps_delay() {
        let seg = SegmentData {
            old: cfgdata([0.0; 9], [0.0; 9]),
            best: cfgdata([0.0; 9], [0.0; 9]),
            features: feat_zero(),
            duration_ms: 400.0,
        };
        let cfg = sim(BaOverheadPreset::QuasiOmni30, 2.0);
        let out = run_policy_segment(&seg, PolicyKind::RaFirst, None, LinkState::at_mcs(8), &cfg);
        assert_eq!(out.recovery_delay_ms, Some(400.0));
        assert_eq!(out.bytes, 0.0);
    }
}

#[cfg(test)]
mod gate_tests {
    use super::*;
    use crate::classifier::LibraClassifier;
    use libra_util::rng::rng_from_seed;

    /// A classifier whose training data makes a specific region
    /// uncertain, to exercise the confidence gate.
    fn ambiguous_clf() -> LibraClassifier {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            // Deliberately contradictory labels in the same region: the
            // forest's vote share stays near 0.5 there.
            let row = vec![8.0, 0.0, 0.2, 0.95, 0.8, 0.1, 6.0];
            features.push(row);
            labels.push(i % 2); // BA and RA alternating
        }
        // A clean NA cluster so three classes exist.
        for _ in 0..30 {
            features.push(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 6.0]);
            labels.push(2);
        }
        let data = libra_ml::Dataset::new(
            features,
            labels,
            3,
            libra_dataset::FEATURE_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        let mut rng = rng_from_seed(5);
        LibraClassifier::train(&data, &mut rng)
    }

    #[test]
    fn gate_routes_uncertain_calls_through_fallback() {
        let clf = ambiguous_clf();
        let ambiguous = Features {
            snr_diff_db: 8.0,
            tof_diff_ns: 0.0,
            noise_diff_db: 0.2,
            pdp_similarity: 0.95,
            csi_similarity: 0.8,
            cdr: 0.1,
            initial_mcs: 6,
        };
        let gate = |ba_overhead_ms: f64| DecidePolicy {
            current_mcs: 7,
            ba_overhead_ms,
            confidence_gate: Some(0.95),
            ack_missing: false,
        };
        let confidence = clf.decide(&ambiguous, &DecidePolicy::model_only()).proba;
        assert!(confidence < 0.9, "region should be uncertain: {confidence}");
        // Gated at 0.95 with expensive BA and MCS ≥ 6 → fallback → RA.
        let gated = clf.decide(&ambiguous, &gate(250.0));
        assert_eq!(gated.action, Action3::Ra);
        assert!(gated.gated);
        // Gated with cheap BA → fallback → BA.
        assert_eq!(clf.decide(&ambiguous, &gate(0.5)).action, Action3::Ba);
        // A confident NA region passes through regardless of the gate.
        let clear = Features::no_change(6);
        let d = clf.decide(&clear, &gate(250.0));
        assert_eq!(d.action, Action3::Na);
        assert!(!d.gated);
    }

    #[test]
    fn sim_config_gate_changes_libra_decisions() {
        let clf = ambiguous_clf();
        let seg = SegmentData {
            // Old pair degraded but ACKing (no missing-ACK shortcut).
            old: ConfigData {
                tput_mbps: vec![300.0, 700.0, 500.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0].into(),
                cdr: vec![1.0, 0.8, 0.4, 0.05, 0.0, 0.0, 0.0, 0.0, 0.0].into(),
            },
            best: ConfigData {
                tput_mbps: vec![300.0, 850.0, 1400.0, 1950.0, 2400.0, 0.0, 0.0, 0.0, 0.0].into(),
                cdr: vec![1.0, 1.0, 1.0, 1.0, 0.95, 0.0, 0.0, 0.0, 0.0].into(),
            },
            features: Features {
                snr_diff_db: 8.0,
                tof_diff_ns: 0.0,
                noise_diff_db: 0.2,
                pdp_similarity: 0.95,
                csi_similarity: 0.8,
                cdr: 0.1,
                initial_mcs: 6,
            },
            duration_ms: 1000.0,
        };
        let params = ProtocolParams::new(libra_mac::BaOverheadPreset::Directional7, 2.0);
        let mut gated = SimConfig::new(params);
        gated.libra_confidence_gate = Some(0.95);
        let state = LinkState::at_mcs(6);
        // Both runs complete; the gated run must be deterministic and
        // account bytes like any other.
        let a = run_policy_segment(&seg, PolicyKind::Libra, Some(&clf), state, &gated);
        let b = run_policy_segment(&seg, PolicyKind::Libra, Some(&clf), state, &gated);
        assert_eq!(a.bytes, b.bytes);
        assert!(a.bytes > 0.0);
    }
}
