//! The discrete-event core of the simulator.
//!
//! Two pieces live here:
//!
//! * [`EventQueue`] — a global time-ordered event queue. Events pop in
//!   `(time_ns, station, seq)` order: earliest first, ties broken by
//!   station id, then by insertion order. The triple makes pop order a
//!   pure function of the pushed events — never of heap internals or
//!   thread timing — which is what lets a multi-station cell claim
//!   bitwise determinism.
//! * [`LinkMachine`] — the per-station resumable state machine
//!   extracted from the old monolithic `execute` loop in `sim.rs`.
//!   Each [`LinkMachine::step`] consumes exactly one unit of airtime
//!   (one FAT-long frame, one BA sweep, or a zero-time phase
//!   transition) and performs *the same floating-point operations in
//!   the same order* as one iteration of the old loop, so driving a
//!   machine to completion reproduces the pre-refactor
//!   [`SegmentOutcome`] bit for bit (`tests/golden_engine.rs` pins
//!   this).
//!
//! The single-link [`crate::sim::execute`] is the 1-station degenerate
//! case: one machine, one queue, events chained back-to-back. The
//! multi-station engine ([`crate::multisim`]) interleaves thousands of
//! machines on one queue per AP cell and applies TDMA airtime shares to
//! the per-step byte deltas.

use crate::sim::{Config, LinkState, RateSpan, SegmentData, SegmentOutcome, SimConfig};
use libra_dataset::Action3;
use libra_obs as obs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Total order on simulator events: time, then station, then sequence
/// number. The sequence number is assigned by the queue at push time,
/// so two events at the same instant for the same station pop in the
/// order they were scheduled (FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Absolute event time, nanoseconds.
    pub time_ns: u64,
    /// Station the event belongs to (tie-break between stations).
    pub station: u32,
    /// Queue-assigned insertion counter (tie-break within a station).
    pub seq: u64,
}

/// Converts simulator milliseconds to the queue's nanosecond axis.
///
/// Half-microsecond rounding keeps distinct frame boundaries distinct:
/// the smallest airtime step is one 2 ms FAT, about six orders of
/// magnitude above the rounding quantum.
pub fn ms_to_ns(ms: f64) -> u64 {
    (ms * 1e6).round() as u64
}

struct Entry<E> {
    key: EventKey,
    payload: E,
}

// The heap is a max-heap; reverse the key order to pop earliest first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

/// A deterministic min-heap of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `(time_ns, station)`; returns the full
    /// key (with the assigned sequence number).
    pub fn push(&mut self, time_ns: u64, station: u32, payload: E) -> EventKey {
        let key = EventKey {
            time_ns,
            station,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Entry { key, payload });
        key
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.heap.pop().map(|e| (e.key, e.payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time_ns(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.key.time_ns)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// What kind of airtime one machine step consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// One FAT-long data (or probe) frame.
    Frame,
    /// A beam-adaptation sector sweep (delivers nothing).
    Sweep,
    /// A zero-time phase transition (ladder settled, segment finished).
    Transition,
}

/// The result of one [`LinkMachine::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEvent {
    /// Airtime this step consumed, ms (0 for transitions).
    pub airtime_ms: f64,
    /// Bytes delivered during the step, before any TDMA share scaling.
    pub bytes: f64,
    /// What the airtime was spent on.
    pub kind: StepKind,
}

/// The downward-RA-ladder phase of Algorithm 1, one rung per step.
#[derive(Debug, Clone, Copy)]
struct LadderPhase {
    /// Configuration the ladder probes on.
    config: Config,
    /// Next rung to probe (descending).
    m: usize,
    /// Best throughput seen so far.
    max_tput: f64,
    /// Rung where `max_tput` was seen.
    best_m: usize,
    /// Frames spent probing (telemetry).
    probed: u64,
    /// What to do when the ladder runs dry without settling.
    on_fail: LadderFail,
}

/// Continuation when a ladder fails to settle on a working MCS.
#[derive(Debug, Clone, Copy)]
enum LadderFail {
    /// Algorithm 1's RA path: sweep, then ladder again from the MCS in
    /// use before adaptation was triggered.
    SweepThenRetry { from: usize },
    /// Already on the swept pair: fall through to steady state.
    GiveUp,
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Multi-station only: the decision hasn't been applied yet — keep
    /// transmitting on the stale entry configuration for the compute
    /// delay, then dispatch the (already chosen) action.
    Stale { remaining_ms: f64, then: Action3 },
    /// Descending RA ladder.
    Ladder(LadderPhase),
    /// BA sector sweep in progress; ladder on the new pair afterwards.
    Sweep { then_from: usize },
    /// Steady state with adaptive upward probing (phase 2).
    Steady,
    /// Segment over; outcome ready.
    Done,
}

/// A resumable per-station segment simulation.
///
/// Construction chooses the phase plan from the entry action; each
/// [`step`](Self::step) then advances by exactly one frame, one sweep,
/// or one phase transition. The per-step arithmetic — byte accounting,
/// span coalescing, recovery stamping, probe backoff — is a verbatim
/// extraction of the pre-refactor `execute` loop body, which is what
/// makes the refactor safe: the golden test diffs outcomes bitwise.
pub struct LinkMachine {
    state: LinkState,
    phase: Phase,
    t: f64,
    bytes: f64,
    config: Config,
    recovery: Option<f64>,
    spans: Vec<RateSpan>,
    broken_at_entry: bool,
    recovery_delay_ms: Option<f64>,
}

impl LinkMachine {
    /// A machine for one segment entered with `action` in `state`.
    pub fn new(seg: &SegmentData, action: Action3, state: LinkState, cfg: &SimConfig) -> Self {
        Self::with_delay(seg, action, state, cfg, 0.0)
    }

    /// Like [`new`](Self::new), but the action only takes effect after
    /// `delay_ms` of transmission on the stale entry configuration —
    /// the cost of a slow decision path (ROADMAP item 4: feed the
    /// `obs`-measured decision p50 straight in).
    pub fn with_delay(
        seg: &SegmentData,
        action: Action3,
        mut state: LinkState,
        cfg: &SimConfig,
        delay_ms: f64,
    ) -> Self {
        let broken_at_entry = !cfg.working(seg, Config::Old, state.mcs);
        state.did_ba = false;
        let mut machine = Self {
            state,
            phase: Phase::Steady, // overwritten below
            t: 0.0,
            bytes: 0.0,
            config: Config::Old,
            recovery: None,
            spans: Vec::new(),
            broken_at_entry,
            recovery_delay_ms: None,
        };
        machine.phase = if delay_ms > 0.0 {
            Phase::Stale {
                remaining_ms: delay_ms,
                then: action,
            }
        } else {
            machine.phase_for(action)
        };
        machine
    }

    fn phase_for(&self, action: Action3) -> Phase {
        match action {
            // Nothing to do. A mispredicted NA on a broken link simply
            // keeps transmitting on the broken configuration; the
            // steady phase's per-frame step-down then acts as an
            // implicit slow ladder.
            Action3::Na => Phase::Steady,
            Action3::Ra => Phase::Ladder(LadderPhase {
                config: Config::Old,
                m: self.state.mcs,
                max_tput: 0.0,
                best_m: self.state.mcs,
                probed: 0,
                on_fail: LadderFail::SweepThenRetry {
                    from: self.state.mcs,
                },
            }),
            Action3::Ba => Phase::Sweep {
                then_from: self.state.mcs,
            },
        }
    }

    /// Whether the segment has been fully simulated.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Local time within the segment, ms (may overshoot the segment
    /// duration by up to one frame, exactly like the old loop).
    pub fn local_time_ms(&self) -> f64 {
        self.t
    }

    /// Link state as of the last completed step.
    pub fn state(&self) -> LinkState {
        self.state
    }

    // Coalescing span recorder (identical to the old one).
    fn push_span(&mut self, start_ms: f64, len_ms: f64, mbps: f64) {
        if len_ms <= 0.0 {
            return;
        }
        if let Some(last) = self.spans.last_mut() {
            if (last.mbps - mbps).abs() < 1e-9
                && (last.start_ms + last.len_ms - start_ms).abs() < 1e-6
            {
                last.len_ms += len_ms;
                return;
            }
        }
        self.spans.push(RateSpan {
            start_ms,
            len_ms,
            mbps,
        });
    }

    /// Advances the machine by one event. Panics if already done.
    pub fn step(&mut self, seg: &SegmentData, cfg: &SimConfig) -> StepEvent {
        let fat = cfg.params.fat_ms;
        let duration = seg.duration_ms;
        match self.phase {
            Phase::Stale { remaining_ms, then } => {
                // The stale span delivers whatever the held pair still
                // carries at the entry MCS — zero on a broken link,
                // which is exactly the staleness cost.
                let span = remaining_ms.min((duration - self.t).max(0.0));
                let tp = cfg.tput(seg, self.config, self.state.mcs);
                let delta = SimConfig::bytes(tp, span);
                self.bytes += delta;
                self.push_span(self.t, span, tp);
                self.t += remaining_ms;
                self.phase = self.phase_for(then);
                StepEvent {
                    airtime_ms: remaining_ms,
                    bytes: delta,
                    kind: StepKind::Frame,
                }
            }
            Phase::Ladder(mut l) => {
                if self.t >= duration {
                    // Segment over; nothing more to decide.
                    self.finish_ladder(l, true, duration);
                    return StepEvent {
                        airtime_ms: 0.0,
                        bytes: 0.0,
                        kind: StepKind::Transition,
                    };
                }
                let span = fat.min(duration - self.t);
                let tp = cfg.tput(seg, l.config, l.m);
                let delta = SimConfig::bytes(tp, span);
                self.bytes += delta;
                self.push_span(self.t, span, tp);
                self.t += fat;
                l.probed += 1;
                self.state.mcs = l.m;
                if self.recovery.is_none() && cfg.working(seg, l.config, l.m) {
                    self.recovery = Some(self.t);
                }
                if tp < l.max_tput {
                    // Throughput stopped improving: settle on the best
                    // so far (Algorithm 1: `curr_mcs ← MCS + 1` when
                    // working).
                    let settled = if cfg.working(seg, l.config, l.best_m) {
                        self.state.mcs = l.best_m;
                        true
                    } else {
                        false
                    };
                    self.finish_ladder(l, settled, duration);
                } else {
                    l.max_tput = tp;
                    l.best_m = l.m;
                    if l.m == 0 {
                        // Reached the lowest MCS (Algorithm 1's
                        // `isWorking(MCSmin)`).
                        let settled = if cfg.working(seg, l.config, l.best_m) {
                            self.state.mcs = l.best_m;
                            true
                        } else {
                            false
                        };
                        self.finish_ladder(l, settled, duration);
                    } else {
                        l.m -= 1;
                        self.phase = Phase::Ladder(l);
                    }
                }
                StepEvent {
                    airtime_ms: fat,
                    bytes: delta,
                    kind: StepKind::Frame,
                }
            }
            Phase::Sweep { then_from } => {
                let ba = cfg.params.ba_ms();
                self.push_span(self.t, ba.min(duration - self.t), 0.0);
                self.t += ba;
                self.config = Config::Best;
                self.state.did_ba = true;
                self.phase = Phase::Ladder(LadderPhase {
                    config: Config::Best,
                    m: then_from,
                    max_tput: 0.0,
                    best_m: then_from,
                    probed: 0,
                    on_fail: LadderFail::GiveUp,
                });
                StepEvent {
                    airtime_ms: ba,
                    bytes: 0.0,
                    kind: StepKind::Sweep,
                }
            }
            Phase::Steady => {
                if self.t >= duration {
                    self.finish(seg);
                    return StepEvent {
                        airtime_ms: 0.0,
                        bytes: 0.0,
                        kind: StepKind::Transition,
                    };
                }
                let max_mcs = seg.old.tput_mbps.len() - 1;
                let span = fat.min(duration - self.t);
                let d = seg.data(self.config);
                // Opportunistic recovery bookkeeping: a broken link
                // that becomes "working" only through the probe loop.
                if self.recovery.is_none() && cfg.working(seg, self.config, self.state.mcs) {
                    self.recovery = Some(self.t);
                }
                let delta;
                if self.state.probe_wait_frames == 0
                    && self.state.mcs < max_mcs
                    && d.cdr[self.state.mcs] > cfg.cdr_ori
                {
                    // Probe the next MCS up with one frame.
                    let up = self.state.mcs + 1;
                    delta = SimConfig::bytes(cfg.tput(seg, self.config, up), span);
                    self.bytes += delta;
                    self.push_span(self.t, span, cfg.tput(seg, self.config, up));
                    self.t += fat;
                    if cfg.tput(seg, self.config, up) > cfg.tput(seg, self.config, self.state.mcs) {
                        self.state.mcs = up;
                        self.state.failed_probes = 0;
                        self.state.probe_wait_frames = cfg.t0_frames;
                    } else {
                        self.state.failed_probes = (self.state.failed_probes + 1).min(16);
                        let mult = 2u32.saturating_pow(self.state.failed_probes).min(25);
                        self.state.probe_wait_frames = cfg.t0_frames * mult;
                    }
                } else {
                    delta = SimConfig::bytes(cfg.tput(seg, self.config, self.state.mcs), span);
                    self.bytes += delta;
                    self.push_span(self.t, span, cfg.tput(seg, self.config, self.state.mcs));
                    self.t += fat;
                    self.state.probe_wait_frames = self.state.probe_wait_frames.saturating_sub(1);
                    // Downward reaction: if the current MCS stops
                    // working (possible after a bad upward adoption),
                    // step down one level per frame — Algorithm 1's
                    // noACK/rollback path.
                    if !cfg.working(seg, self.config, self.state.mcs) && self.state.mcs > 0 {
                        self.state.mcs -= 1;
                    }
                }
                StepEvent {
                    airtime_ms: fat,
                    bytes: delta,
                    kind: StepKind::Frame,
                }
            }
            Phase::Done => panic!("LinkMachine::step called after completion"),
        }
    }

    fn finish_ladder(&mut self, l: LadderPhase, settled: bool, duration: f64) {
        obs::record_value("sim.ladder.depth", l.probed);
        self.phase = if settled {
            Phase::Steady
        } else {
            match l.on_fail {
                // Algorithm 1: failed ladder → BA, then RA again from
                // the MCS in use before adaptation was triggered — but
                // only if there is segment left to spend it on.
                LadderFail::SweepThenRetry { from } if self.t < duration => {
                    Phase::Sweep { then_from: from }
                }
                LadderFail::SweepThenRetry { .. } | LadderFail::GiveUp => Phase::Steady,
            }
        };
    }

    /// Computes the final outcome fields; transitions to `Done`.
    fn finish(&mut self, seg: &SegmentData) {
        let duration = seg.duration_ms;
        // Recovery delay is only defined when the link was actually
        // broken at segment entry; a break that never recovers is
        // capped at the segment duration so CDFs remain well-defined.
        self.recovery_delay_ms = if self.broken_at_entry {
            Some(self.recovery.unwrap_or(duration).min(duration))
        } else {
            None
        };
        if let Some(delay) = self.recovery_delay_ms {
            // Microsecond resolution keeps the log₂ buckets meaningful
            // for sub-millisecond recoveries; the value is a
            // deterministic function of the segment, so this histogram
            // digests.
            obs::record_value("sim.recovery_delay_us", (delay * 1000.0) as u64);
        }
        self.phase = Phase::Done;
    }

    /// Consumes the machine into its [`SegmentOutcome`]. Panics unless
    /// [`is_done`](Self::is_done).
    pub fn into_outcome(self) -> SegmentOutcome {
        assert!(
            matches!(self.phase, Phase::Done),
            "LinkMachine::into_outcome before completion"
        );
        SegmentOutcome {
            bytes: self.bytes,
            recovery_delay_ms: self.recovery_delay_ms,
            end_state: self.state,
            spans: self.spans,
        }
    }
}
