//! Multi-impairment timelines (paper §8.3).
//!
//! A timeline is a sequence of segments, each a static channel state of
//! random duration between 0.3 s and 3 s. The four scenario types:
//!
//! * **Mobility** — the Rx moves at the start of each segment,
//!   "introducing differing degrees of linear and/or angular
//!   displacement";
//! * **Blockage** — segments of human blockage at random positions
//!   alternate with clear-LOS segments;
//! * **Interference** — segments of varying interference level alternate
//!   with clear-channel segments;
//! * **Mixed** — a combination of all three.
//!
//! Unlike the single-impairment study (which replays dataset entries),
//! timelines are simulated *scene-based*: the runner tracks the actual
//! beam pair each policy holds and measures whatever configuration the
//! policy is on directly from the channel model — so a policy lagging
//! several segments behind is charged its true (stale) beam pair, with
//! no trace-replay approximation.

use crate::classifier::LibraClassifier;
use crate::sim::{
    run_policy_segment, ConfigData, LinkState, PolicyKind, RateSpan, SegmentData, SimConfig,
};
use libra_arrays::BeamId;
use libra_channel::{
    Blocker, BlockerPlacement, Environment, InterferenceLevel, Interferer, Point, Pose, Scene,
};
use libra_dataset::measure::{expected_best_pair, expected_pair_measurement};
use libra_dataset::{Features, Instruments};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four §8.3 scenario types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioType {
    /// Linear/angular displacement per segment.
    Mobility,
    /// Alternating blockage / clear LOS.
    Blockage,
    /// Alternating interference / clear channel.
    Interference,
    /// A mix of all three.
    Mixed,
}

impl ScenarioType {
    /// All four, in Figure 12 order.
    pub const ALL: [ScenarioType; 4] = [
        ScenarioType::Mobility,
        ScenarioType::Blockage,
        ScenarioType::Interference,
        ScenarioType::Mixed,
    ];

    /// Display label (the paper's Fig. 12 uses "Motion" for mobility).
    pub fn label(self) -> &'static str {
        match self {
            ScenarioType::Mobility => "Motion",
            ScenarioType::Blockage => "Blockage",
            ScenarioType::Interference => "Interference",
            ScenarioType::Mixed => "Mixed",
        }
    }
}

/// One channel state of a timeline.
#[derive(Debug, Clone)]
pub struct TimelineSegment {
    /// The physical state.
    pub scene: Scene,
    /// Dwell time in this state, ms.
    pub duration_ms: f64,
}

/// A full timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Scenario type it was generated from.
    pub scenario: ScenarioType,
    /// The segments, in order.
    pub segments: Vec<TimelineSegment>,
}

impl Timeline {
    /// Total duration, ms.
    pub fn duration_ms(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_ms).sum()
    }
}

/// Timeline generation parameters (§8.3: 10 segments of 300 ms – 3 s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// Number of segments.
    pub n_segments: usize,
    /// Minimum segment dwell, ms.
    pub min_segment_ms: f64,
    /// Maximum segment dwell, ms.
    pub max_segment_ms: f64,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Environment override; `None` picks the scenario default (medium
    /// corridor for mobility, lobby otherwise). Used by the online-
    /// adaptation study to deploy into an unseen building.
    pub environment: Option<Environment>,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self {
            n_segments: 10,
            min_segment_ms: 300.0,
            max_segment_ms: 3000.0,
            tx_power_dbm: libra_dataset::campaign::CAMPAIGN_TX_POWER_DBM,
            environment: None,
        }
    }
}

/// Generates one random timeline.
pub fn generate_timeline(
    scenario: ScenarioType,
    cfg: &TimelineConfig,
    rng: &mut impl Rng,
) -> Timeline {
    // Mobility lives in the medium corridor, the others in the lobby —
    // unless the config pins a specific environment.
    let env = cfg.environment.unwrap_or(match scenario {
        ScenarioType::Mobility => Environment::CorridorMedium,
        _ => Environment::Lobby,
    });
    let room = env.room();
    let y = room.depth_m / 2.0;
    let tx = Pose::new(Point::new(1.0, y), 0.0);

    let mut dist: f64 = rng.gen_range(4.0..10.0);
    let mut orient_offset = 0.0f64;
    let base_rx_dist = rng.gen_range(6.0..14.0);

    let mut segments = Vec::with_capacity(cfg.n_segments);
    for k in 0..cfg.n_segments {
        let duration_ms = rng.gen_range(cfg.min_segment_ms..=cfg.max_segment_ms);
        let mutate_kind = match scenario {
            ScenarioType::Mobility => 0,
            ScenarioType::Blockage => 1,
            ScenarioType::Interference => 2,
            ScenarioType::Mixed => rng.gen_range(0..3),
        };
        let mut rx = Pose::new(Point::new(1.0 + base_rx_dist, y), 180.0);
        let mut blockers: Vec<Blocker> = Vec::new();
        let mut interferers: Vec<Interferer> = Vec::new();
        match mutate_kind {
            0 => {
                // Displacement: random walk + occasional rotation.
                if k > 0 {
                    dist = (dist + rng.gen_range(-5.0..7.0))
                        .clamp(3.0, (room.width_m - 3.0).min(24.0));
                    orient_offset = if rng.gen::<f64>() < 0.4 {
                        [-45.0, -30.0, -15.0, 15.0, 30.0, 45.0][rng.gen_range(0..6)]
                    } else {
                        0.0
                    };
                }
                rx = Pose::new(Point::new(1.0 + dist, y), 180.0 + orient_offset);
            }
            1 => {
                // Blockage on odd segments.
                if k % 2 == 1 {
                    let placement = BlockerPlacement::ALL[rng.gen_range(0..3)];
                    let offset = rng.gen_range(0.0..0.2);
                    blockers.push(placement.blocker(tx.position, rx.position, offset));
                }
            }
            _ => {
                // Interference on odd segments.
                if k % 2 == 1 {
                    let level = InterferenceLevel::ALL[rng.gen_range(0..3)];
                    let bearing: f64 = rng.gen_range(-60.0f64..60.0);
                    let d = rng.gen_range(2.5..5.0);
                    let pos = Point::new(
                        rx.position.x + d * bearing.to_radians().cos(),
                        rx.position.y + d * bearing.to_radians().sin(),
                    );
                    interferers.push(Interferer::at_level(pos, level));
                }
            }
        }
        let mut scene = Scene::new(env.room(), tx, rx)
            .with_blockers(blockers)
            .with_interferers(interferers);
        scene.tx_power_dbm = cfg.tx_power_dbm;
        segments.push(TimelineSegment { scene, duration_ms });
    }
    Timeline { scenario, segments }
}

/// Outcome of one policy over one timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineResult {
    /// Total bytes delivered.
    pub bytes: f64,
    /// Recovery delays of every link break, ms.
    pub recovery_delays_ms: Vec<f64>,
    /// Delivery spans over the whole timeline (global time base).
    pub spans: Vec<RateSpan>,
}

impl TimelineResult {
    /// Average link recovery delay (sum of delays / number of breaks);
    /// zero when the timeline had no breaks.
    pub fn mean_recovery_delay_ms(&self) -> f64 {
        if self.recovery_delays_ms.is_empty() {
            0.0
        } else {
            self.recovery_delays_ms.iter().sum::<f64>() / self.recovery_delays_ms.len() as f64
        }
    }
}

/// Runs one policy over a timeline, tracking the actual beam pair held.
pub fn run_timeline(
    tl: &Timeline,
    policy: PolicyKind,
    clf: Option<&LibraClassifier>,
    sim: &SimConfig,
    instruments: &Instruments,
) -> TimelineResult {
    assert!(!tl.segments.is_empty());
    // Initial association in segment 0: the device starts on the best
    // pair and MCS of the first segment (all policies start equal).
    let first = &tl.segments[0].scene;
    let mut held_pair: (BeamId, BeamId) = expected_best_pair(first, instruments);
    let mut prev_meas = expected_pair_measurement(first, instruments, held_pair);
    let mut state = LinkState::at_mcs(prev_meas.best_mcs());

    let mut bytes = 0.0;
    let mut delays = Vec::new();
    let mut spans: Vec<RateSpan> = Vec::new();
    let mut t_base = 0.0f64;

    for (k, segment) in tl.segments.iter().enumerate() {
        let old_meas = expected_pair_measurement(&segment.scene, instruments, held_pair);
        let best_pair = expected_best_pair(&segment.scene, instruments);
        let best_meas = if best_pair == held_pair {
            old_meas.clone()
        } else {
            expected_pair_measurement(&segment.scene, instruments, best_pair)
        };
        let features = if k == 0 {
            // No delta at the very first segment.
            Features::extract(&old_meas, &old_meas)
        } else {
            Features::extract(&prev_meas, &old_meas)
        };
        let seg = SegmentData {
            old: ConfigData::from_measurement(&old_meas),
            best: ConfigData::from_measurement(&best_meas),
            features,
            duration_ms: segment.duration_ms,
        };
        let out = run_policy_segment(&seg, policy, clf, state, sim);
        bytes += out.bytes;
        if let Some(d) = out.recovery_delay_ms {
            delays.push(d);
        }
        for sp in &out.spans {
            spans.push(RateSpan {
                start_ms: t_base + sp.start_ms,
                ..*sp
            });
        }
        t_base += segment.duration_ms;
        state = out.end_state;
        if state.did_ba {
            held_pair = best_pair;
            prev_meas = best_meas;
        } else {
            prev_meas = old_meas;
        }
    }

    TimelineResult {
        bytes,
        recovery_delays_ms: delays,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_mac::{BaOverheadPreset, ProtocolParams};
    use libra_util::rng::rng_from_seed;

    fn instruments() -> Instruments {
        Instruments::default()
    }

    #[test]
    fn generated_timeline_has_right_shape() {
        let mut rng = rng_from_seed(1);
        let tl = generate_timeline(ScenarioType::Mixed, &TimelineConfig::default(), &mut rng);
        assert_eq!(tl.segments.len(), 10);
        for s in &tl.segments {
            assert!((300.0..=3000.0).contains(&s.duration_ms));
        }
        assert!(tl.duration_ms() >= 3000.0 && tl.duration_ms() <= 30000.0);
    }

    #[test]
    fn blockage_timeline_alternates() {
        let mut rng = rng_from_seed(2);
        let tl = generate_timeline(ScenarioType::Blockage, &TimelineConfig::default(), &mut rng);
        for (k, s) in tl.segments.iter().enumerate() {
            assert_eq!(s.scene.blockers.len(), k % 2, "segment {k}");
            assert!(s.scene.interferers.is_empty());
        }
    }

    #[test]
    fn interference_timeline_alternates() {
        let mut rng = rng_from_seed(3);
        let tl = generate_timeline(
            ScenarioType::Interference,
            &TimelineConfig::default(),
            &mut rng,
        );
        for (k, s) in tl.segments.iter().enumerate() {
            assert_eq!(s.scene.interferers.len(), k % 2, "segment {k}");
        }
    }

    #[test]
    fn mobility_timeline_moves_rx() {
        let mut rng = rng_from_seed(4);
        let tl = generate_timeline(ScenarioType::Mobility, &TimelineConfig::default(), &mut rng);
        let xs: Vec<f64> = tl.segments.iter().map(|s| s.scene.rx.position.x).collect();
        let distinct = xs.windows(2).filter(|w| (w[0] - w[1]).abs() > 0.1).count();
        assert!(distinct >= 3, "rx barely moves: {xs:?}");
    }

    #[test]
    fn oracle_data_dominates_heuristics_on_timelines() {
        let mut rng = rng_from_seed(5);
        let tl = generate_timeline(ScenarioType::Mixed, &TimelineConfig::default(), &mut rng);
        let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
        let inst = instruments();
        let od = run_timeline(&tl, PolicyKind::OracleData, None, &sim, &inst);
        for p in [PolicyKind::RaFirst, PolicyKind::BaFirst] {
            let r = run_timeline(&tl, p, None, &sim, &inst);
            // The oracle is greedy per link break ("the oracles make
            // optimal decisions only with respect to restoring a link",
            // §8.1), so a heuristic can edge it out slightly across
            // segments — but never by much.
            assert!(
                od.bytes >= r.bytes * 0.9,
                "{}: {} far above oracle {}",
                p.label(),
                r.bytes,
                od.bytes
            );
        }
    }

    #[test]
    fn timelines_deliver_data() {
        let mut rng = rng_from_seed(6);
        let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
        let inst = instruments();
        for scenario in ScenarioType::ALL {
            let tl = generate_timeline(scenario, &TimelineConfig::default(), &mut rng);
            let r = run_timeline(&tl, PolicyKind::BaFirst, None, &sim, &inst);
            assert!(r.bytes > 0.0, "{:?} delivered nothing", scenario);
        }
    }

    #[test]
    fn spans_cover_whole_timeline() {
        let mut rng = rng_from_seed(7);
        let tl = generate_timeline(ScenarioType::Mobility, &TimelineConfig::default(), &mut rng);
        let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni3, 10.0));
        let r = run_timeline(&tl, PolicyKind::RaFirst, None, &sim, &instruments());
        let span_total: f64 = r.spans.iter().map(|s| s.len_ms).sum();
        // Spans cover at least 90 % of the timeline (BA gaps counted as
        // zero-rate spans; small clamping slack at segment ends).
        assert!(
            span_total >= 0.9 * tl.duration_ms(),
            "{span_total} of {}",
            tl.duration_ms()
        );
        // Bytes from spans must equal reported bytes.
        let span_bytes: f64 = r
            .spans
            .iter()
            .map(|s| s.mbps * 1e6 * s.len_ms / 1000.0 / 8.0)
            .sum();
        assert!((span_bytes - r.bytes).abs() < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let mut rng = rng_from_seed(8);
            generate_timeline(ScenarioType::Mixed, &TimelineConfig::default(), &mut rng)
        };
        let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
        let a = run_timeline(&make(), PolicyKind::BaFirst, None, &sim, &instruments());
        let b = run_timeline(&make(), PolicyKind::BaFirst, None, &sim, &instruments());
        assert_eq!(a.bytes, b.bytes);
    }
}
