//! Integration coverage for the online learner's lifecycle-facing
//! behavior: the retrain trigger, the replay-buffer window, and the
//! candidate feed that stages retrained models into a registry.

use libra::online::OnlineLibra;
use libra::sim::{execute, ConfigData, LinkState, SegmentData, SimConfig};
use libra_dataset::{Action3, Features, FEATURE_NAMES};
use libra_infer::{ModelRegistry, ModelSpec};
use libra_mac::{BaOverheadPreset, ProtocolParams};
use libra_ml::Dataset;
use std::path::PathBuf;

fn offline_3class() -> Dataset {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..90 {
        let (row, label) = match i % 3 {
            0 => (
                vec![15.0 + (i % 4) as f64, 0.0, 0.5, 0.9, 0.5, 0.0, 3.0],
                0usize,
            ),
            1 => (vec![4.0, -15.0, 0.3, 0.97, 0.9, 0.3, 7.0], 1),
            _ => (vec![0.1, 0.0, 0.0, 1.0, 1.0, 0.99, 7.0], 2),
        };
        features.push(row);
        labels.push(label);
    }
    Dataset::new(
        features,
        labels,
        3,
        FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
    )
}

fn sim() -> SimConfig {
    SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0))
}

/// A segment whose old pair is dead: RA will run dry and fire BA, so
/// every observation derives a (BA) label.
fn dead_segment() -> SegmentData {
    let dead = ConfigData {
        tput_mbps: vec![0.0; 9].into(),
        cdr: vec![0.0; 9].into(),
    };
    let alive = ConfigData {
        tput_mbps: vec![
            300.0, 850.0, 1400.0, 1950.0, 2400.0, 2800.0, 1200.0, 0.0, 0.0,
        ]
        .into(),
        cdr: vec![1.0, 1.0, 1.0, 1.0, 0.97, 0.92, 0.35, 0.0, 0.0].into(),
    };
    SegmentData {
        old: dead,
        best: alive,
        features: Features::no_change(5),
        duration_ms: 800.0,
    }
}

/// A healthy segment where NA teaches NA — but a *broken* NA segment
/// teaches nothing, which is what the trigger test leans on.
fn observe_n(online: &mut OnlineLibra, n: usize, informative: bool) {
    let seg = dead_segment();
    let state = LinkState::at_mcs(5);
    let sim = sim();
    let action = if informative {
        Action3::Ra
    } else {
        Action3::Na
    };
    let out = execute(&seg, action, state, &sim);
    for _ in 0..n {
        online.observe(&seg.features, action, &out, &seg, &state, &sim);
    }
}

fn temp_registry(tag: &str) -> ModelRegistry {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("libra-online-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp registry");
    ModelRegistry::open(dir)
}

#[test]
fn retrain_fires_on_informative_observations_only() {
    let mut online = OnlineLibra::new(offline_3class(), 4, 11);
    // Uninformative outcomes (mispredicted NA on a dead link) derive no
    // label: the window must not advance.
    observe_n(&mut online, 10, false);
    assert_eq!(online.retrain_count, 0);
    assert_eq!(online.buffer_len(), 0);

    // Three informative observations: still below the window.
    observe_n(&mut online, 3, true);
    assert_eq!(online.retrain_count, 0);
    assert_eq!(online.buffer_len(), 3);

    // The fourth closes the window and triggers exactly one retrain.
    observe_n(&mut online, 1, true);
    assert_eq!(online.retrain_count, 1);

    // The replay buffer is a memory, not a queue: retraining keeps it.
    assert_eq!(online.buffer_len(), 4);

    // The next window needs `retrain_every` fresh observations again.
    observe_n(&mut online, 3, true);
    assert_eq!(online.retrain_count, 1);
    observe_n(&mut online, 1, true);
    assert_eq!(online.retrain_count, 2);
    assert_eq!(online.buffer_len(), 8);
}

#[test]
fn candidate_feed_stages_without_blessing() {
    let registry = temp_registry("feed");
    let mut online =
        OnlineLibra::new(offline_3class(), 2, 12).with_candidate_feed(registry.clone(), "online");

    // First retrain on an empty registry: the candidate becomes v1 and,
    // with no incumbent to protect, stays pointed-at.
    observe_n(&mut online, 2, true);
    assert_eq!(online.retrain_count, 1);
    assert_eq!(online.published_candidates(), &[1]);
    assert_eq!(registry.latest("online").expect("latest"), Some(1));

    // Second retrain: v2 is staged but v1 keeps the blessing — only the
    // lifecycle controller may move `LATEST` past an incumbent.
    observe_n(&mut online, 2, true);
    assert_eq!(online.published_candidates(), &[1, 2]);
    assert_eq!(registry.latest("online").expect("latest"), Some(1));
    assert_eq!(registry.versions("online").expect("versions"), vec![1, 2]);
    assert!(online.last_publish_error().is_none());

    // The staged artifact round-trips into a servable model.
    let (version, artifact) = registry
        .load(&ModelSpec {
            name: "online".into(),
            version: Some(2),
        })
        .expect("load staged candidate");
    assert_eq!(version, 2);
    libra::LibraClassifier::from_artifact(&artifact).expect("candidate must be servable");
}

#[test]
fn publish_failure_is_absorbed_not_fatal() {
    let registry = temp_registry("feedfail");
    // An invalid registry name makes every publication fail.
    let mut online =
        OnlineLibra::new(offline_3class(), 2, 13).with_candidate_feed(registry, "not a name");
    observe_n(&mut online, 2, true);
    // The retrain itself still happened; the failure is recorded.
    assert_eq!(online.retrain_count, 1);
    assert!(online.published_candidates().is_empty());
    assert!(online.last_publish_error().is_some());
}
