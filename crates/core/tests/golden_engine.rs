//! Golden test for the event-core refactor.
//!
//! `frozen_execute` below is a verbatim copy of the monolithic
//! pre-refactor `execute` loop (with the crate-private helpers
//! reimplemented locally from their public-field definitions). The
//! refactored engine — `LinkMachine` driven by an `EventQueue` — must
//! reproduce its `SegmentOutcome` **bit for bit** on handcrafted
//! segments and on a seeded grid of random tables × durations × FATs ×
//! BA presets × actions, or the refactor changed behavior.

use libra::sim::{
    execute, Config, ConfigData, LinkState, RateSpan, SegmentData, SegmentOutcome, SimConfig,
};
use libra_dataset::{Action3, Features};
use libra_mac::{BaOverheadPreset, ProtocolParams};
use libra_util::rng::{derive_seed_index, SplitMix64};

// ---- local re-implementations of the crate-private helpers ----------
// (`SimConfig::working` / `tput` / `bytes` and `SegmentData::data` are
// pub(crate); their bodies are single expressions over public fields,
// restated here verbatim.)

fn data(seg: &SegmentData, c: Config) -> &ConfigData {
    match c {
        Config::Old => &seg.old,
        Config::Best => &seg.best,
    }
}

fn working(cfg: &SimConfig, seg: &SegmentData, c: Config, m: usize) -> bool {
    let d = data(seg, c);
    d.cdr[m] > cfg.min_cdr && d.tput_mbps[m] * cfg.tput_scale > cfg.min_tput_mbps
}

fn tput(cfg: &SimConfig, seg: &SegmentData, c: Config, m: usize) -> f64 {
    data(seg, c).tput_mbps[m] * cfg.tput_scale
}

fn bytes_of(mbps: f64, ms: f64) -> f64 {
    mbps * 1e6 * ms / 1000.0 / 8.0
}

// ---- the frozen pre-refactor engine ---------------------------------

#[allow(clippy::too_many_arguments)]
fn frozen_execute(
    seg: &SegmentData,
    action: Action3,
    mut state: LinkState,
    cfg: &SimConfig,
) -> SegmentOutcome {
    let fat = cfg.params.fat_ms;
    let duration = seg.duration_ms;
    let max_mcs = seg.old.tput_mbps.len() - 1;
    let broken_at_entry = !working(cfg, seg, Config::Old, state.mcs);

    let mut t = 0.0f64;
    let mut bytes = 0.0f64;
    let mut config = Config::Old;
    let mut recovery: Option<f64> = None;
    let mut spans: Vec<RateSpan> = Vec::new();
    state.did_ba = false;

    fn push_span(spans: &mut Vec<RateSpan>, start_ms: f64, len_ms: f64, mbps: f64) {
        if len_ms <= 0.0 {
            return;
        }
        if let Some(last) = spans.last_mut() {
            if (last.mbps - mbps).abs() < 1e-9
                && (last.start_ms + last.len_ms - start_ms).abs() < 1e-6
            {
                last.len_ms += len_ms;
                return;
            }
        }
        spans.push(RateSpan {
            start_ms,
            len_ms,
            mbps,
        });
    }

    let ladder = |config: Config,
                  from_mcs: usize,
                  t: &mut f64,
                  bytes: &mut f64,
                  spans: &mut Vec<RateSpan>,
                  state: &mut LinkState,
                  recovery: &mut Option<f64>|
     -> bool {
        let mut max_tput = 0.0f64;
        let mut best_m = from_mcs;
        for m in (0..=from_mcs).rev() {
            if *t >= duration {
                return true; // segment over; nothing more to decide
            }
            let span = fat.min(duration - *t);
            let tp = tput(cfg, seg, config, m);
            *bytes += bytes_of(tp, span);
            push_span(spans, *t, span, tp);
            *t += fat;
            state.mcs = m;
            if recovery.is_none() && working(cfg, seg, config, m) {
                *recovery = Some(*t);
            }
            if tp < max_tput {
                if working(cfg, seg, config, best_m) {
                    state.mcs = best_m;
                    return true;
                }
                return false;
            }
            max_tput = tp;
            best_m = m;
        }
        if working(cfg, seg, config, best_m) {
            state.mcs = best_m;
            true
        } else {
            false
        }
    };

    match action {
        Action3::Na => {}
        Action3::Ra => {
            let from = state.mcs;
            let settled = ladder(
                Config::Old,
                from,
                &mut t,
                &mut bytes,
                &mut spans,
                &mut state,
                &mut recovery,
            );
            if !settled && t < duration {
                push_span(&mut spans, t, cfg.params.ba_ms().min(duration - t), 0.0);
                t += cfg.params.ba_ms();
                config = Config::Best;
                state.did_ba = true;
                ladder(
                    Config::Best,
                    from,
                    &mut t,
                    &mut bytes,
                    &mut spans,
                    &mut state,
                    &mut recovery,
                );
            }
        }
        Action3::Ba => {
            push_span(&mut spans, t, cfg.params.ba_ms().min(duration - t), 0.0);
            t += cfg.params.ba_ms();
            config = Config::Best;
            state.did_ba = true;
            ladder(
                Config::Best,
                state.mcs,
                &mut t,
                &mut bytes,
                &mut spans,
                &mut state,
                &mut recovery,
            );
        }
    }

    while t < duration {
        let span = fat.min(duration - t);
        let d = data(seg, config);
        if recovery.is_none() && working(cfg, seg, config, state.mcs) {
            recovery = Some(t);
        }
        if state.probe_wait_frames == 0 && state.mcs < max_mcs && d.cdr[state.mcs] > cfg.cdr_ori {
            let up = state.mcs + 1;
            bytes += bytes_of(tput(cfg, seg, config, up), span);
            push_span(&mut spans, t, span, tput(cfg, seg, config, up));
            t += fat;
            if tput(cfg, seg, config, up) > tput(cfg, seg, config, state.mcs) {
                state.mcs = up;
                state.failed_probes = 0;
                state.probe_wait_frames = cfg.t0_frames;
            } else {
                state.failed_probes = (state.failed_probes + 1).min(16);
                let mult = 2u32.saturating_pow(state.failed_probes).min(25);
                state.probe_wait_frames = cfg.t0_frames * mult;
            }
            continue;
        }
        bytes += bytes_of(tput(cfg, seg, config, state.mcs), span);
        push_span(&mut spans, t, span, tput(cfg, seg, config, state.mcs));
        t += fat;
        state.probe_wait_frames = state.probe_wait_frames.saturating_sub(1);
        if !working(cfg, seg, config, state.mcs) && state.mcs > 0 {
            state.mcs -= 1;
        }
    }

    let recovery_delay_ms = if broken_at_entry {
        Some(recovery.unwrap_or(duration).min(duration))
    } else {
        None
    };

    SegmentOutcome {
        bytes,
        recovery_delay_ms,
        end_state: state,
        spans,
    }
}

// ---- fixtures -------------------------------------------------------

fn cfgdata(tputs: [f64; 9], cdrs: [f64; 9]) -> ConfigData {
    ConfigData {
        tput_mbps: tputs.to_vec().into(),
        cdr: cdrs.to_vec().into(),
    }
}

fn feat_zero() -> Features {
    Features {
        snr_diff_db: 0.0,
        tof_diff_ns: 0.0,
        noise_diff_db: 0.0,
        pdp_similarity: 1.0,
        csi_similarity: 1.0,
        cdr: 1.0,
        initial_mcs: 6,
    }
}

/// Old pair dead, best pair working at mid MCS (the BA-needed shape).
fn seg_ba_needed(duration_ms: f64) -> SegmentData {
    SegmentData {
        old: cfgdata(
            [40.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.13, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ),
        best: cfgdata(
            [300.0, 850.0, 1400.0, 1900.0, 1100.0, 150.0, 0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0, 0.97, 0.45, 0.05, 0.0, 0.0, 0.0],
        ),
        features: feat_zero(),
        duration_ms,
    }
}

/// Old pair still works lower on the ladder (the RA-enough shape).
fn seg_ra_enough(duration_ms: f64) -> SegmentData {
    SegmentData {
        old: cfgdata(
            [290.0, 800.0, 1300.0, 1750.0, 900.0, 120.0, 0.0, 0.0, 0.0],
            [1.0, 1.0, 0.99, 0.95, 0.40, 0.04, 0.0, 0.0, 0.0],
        ),
        best: cfgdata(
            [
                300.0, 850.0, 1400.0, 1950.0, 2400.0, 1200.0, 200.0, 0.0, 0.0,
            ],
            [1.0, 1.0, 1.0, 0.98, 0.94, 0.42, 0.06, 0.0, 0.0],
        ),
        features: feat_zero(),
        duration_ms,
    }
}

fn seeded_segment(seed: u64, duration_ms: f64) -> SegmentData {
    let mut rng = SplitMix64::new(seed);
    let mut table = || {
        let mut tputs = [0.0f64; 9];
        let mut cdrs = [0.0f64; 9];
        for m in 0..9 {
            // Roughly rate × CDR with a falling CDR staircase, so every
            // ladder shape (monotone, peaked, dead) occurs in the grid.
            let cdr = (rng.uniform() * 1.4 - 0.2).clamp(0.0, 1.0);
            cdrs[m] = cdr;
            tputs[m] = 300.0 * (m + 1) as f64 * cdr * rng.range(0.5, 1.0);
        }
        (tputs, cdrs)
    };
    let (ot, oc) = table();
    let (bt, bc) = table();
    SegmentData {
        old: cfgdata(ot, oc),
        best: cfgdata(bt, bc),
        features: feat_zero(),
        duration_ms,
    }
}

fn assert_identical(seg: &SegmentData, action: Action3, state: LinkState, cfg: &SimConfig) {
    let new = execute(seg, action, state, cfg);
    let old = frozen_execute(seg, action, state, cfg);
    assert_eq!(
        new.bytes.to_bits(),
        old.bytes.to_bits(),
        "bytes diverged: new {} vs frozen {} ({action:?}, mcs {}, dur {})",
        new.bytes,
        old.bytes,
        state.mcs,
        seg.duration_ms,
    );
    assert_eq!(
        new.recovery_delay_ms.map(f64::to_bits),
        old.recovery_delay_ms.map(f64::to_bits),
        "recovery diverged ({action:?}, mcs {}, dur {})",
        state.mcs,
        seg.duration_ms,
    );
    assert_eq!(new.end_state, old.end_state);
    assert_eq!(new.spans, old.spans);
}

// ---- tests ----------------------------------------------------------

#[test]
fn handcrafted_segments_match_frozen_engine() {
    for make in [seg_ba_needed, seg_ra_enough] {
        for duration in [5.0, 20.5, 256.0, 1000.0] {
            for fat in [2.0, 10.0] {
                for ba in [
                    BaOverheadPreset::QuasiOmni30,
                    BaOverheadPreset::QuasiOmni3,
                    BaOverheadPreset::Directional9,
                    BaOverheadPreset::Directional7,
                ] {
                    let cfg = SimConfig::new(ProtocolParams::new(ba, fat));
                    for action in [Action3::Na, Action3::Ra, Action3::Ba] {
                        for mcs in [0, 3, 6, 8] {
                            assert_identical(&make(duration), action, LinkState::at_mcs(mcs), &cfg);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn seeded_grid_matches_frozen_engine() {
    let mut checked = 0u64;
    for case in 0..200u64 {
        let seed = derive_seed_index(0x601D, case);
        let mut rng = SplitMix64::new(seed);
        let duration = [5.0, 50.0, 256.0, 1000.0][(rng.next_u64() % 4) as usize];
        let fat = if rng.next_u64() & 1 == 0 { 2.0 } else { 10.0 };
        let ba = [
            BaOverheadPreset::QuasiOmni30,
            BaOverheadPreset::QuasiOmni3,
            BaOverheadPreset::Directional9,
            BaOverheadPreset::Directional7,
        ][(rng.next_u64() % 4) as usize];
        let mcs = (rng.next_u64() % 9) as usize;
        let seg = seeded_segment(derive_seed_index(seed, 1), duration);
        let cfg = SimConfig::new(ProtocolParams::new(ba, fat));
        let mut state = LinkState::at_mcs(mcs);
        // Exercise carried-over probe state too.
        state.probe_wait_frames = (rng.next_u64() % 8) as u32;
        state.failed_probes = (rng.next_u64() % 4) as u32;
        for action in [Action3::Na, Action3::Ra, Action3::Ba] {
            assert_identical(&seg, action, state, &cfg);
            checked += 1;
        }
    }
    assert_eq!(checked, 600);
}
