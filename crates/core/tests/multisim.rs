//! Integration contracts of the multi-station engine.
//!
//! 1. **Degenerate case**: 1 AP × 1 station with roaming and decision
//!    delay off must reproduce the single-link §8 executor bitwise —
//!    the TDMA share is 1.0 and the interference sum is empty, so each
//!    segment reduces to `run_policy_segment`.
//! 2. **Thread invariance**: the same config yields a bitwise-identical
//!    outcome (digest, per-station bytes) at 1, 4 and 8 worker
//!    threads. `set_threads` is process-global, so both comparisons
//!    live in one `#[test]` and restore the default on exit.

use libra::multisim::{run_multisim, DelayModel, MultiSimConfig, StationChannel};
use libra::sim::{run_policy_segment, LinkState, PolicyKind};
use libra_util::par::set_threads;

#[test]
fn degenerate_single_station_matches_single_link_executor() {
    let mut cfg = MultiSimConfig::new(1, 1);
    cfg.roam_interval_ms = 0.0;
    cfg.delay = DelayModel::Constant(0.0);
    cfg.duration_ms = 4_000.0;
    let out = run_multisim(&cfg, None);
    assert_eq!(out.stations.len(), 1);

    // Replay the same station outside the engine: same channel stream,
    // same policy, chained through the plain single-link executor.
    let mut chan = StationChannel::new(cfg.seed, 0, 0, cfg.ap_center(0));
    let mut link = LinkState::at_mcs(6);
    let mut now = 0.0f64;
    let mut total = 0.0f64;
    let mut segments = 0u64;
    while now < cfg.duration_ms {
        let seg = chan.next_segment(&cfg, link.mcs, 0.0, cfg.duration_ms - now);
        let o = run_policy_segment(&seg, cfg.policy, None, link, &cfg.sim);
        link = o.end_state;
        total += o.bytes;
        segments += 1;
        now += seg.duration_ms;
    }
    assert_eq!(out.stations[0].segments, segments);
    assert_eq!(
        out.stations[0].bytes.to_bits(),
        total.to_bits(),
        "engine {} vs replay {}",
        out.stations[0].bytes,
        total
    );
}

#[test]
fn outcome_is_bitwise_identical_across_thread_counts() {
    let mut cfg = MultiSimConfig::new(4, 16);
    cfg.duration_ms = 3_000.0;
    cfg.roam_interval_ms = 1_000.0;
    cfg.delay = DelayModel::Constant(4.0);
    cfg.policy = PolicyKind::RaFirst;

    set_threads(1);
    let one = run_multisim(&cfg, None);
    let mut rest = Vec::new();
    for n in [4usize, 8] {
        set_threads(n);
        rest.push((n, run_multisim(&cfg, None)));
    }
    set_threads(0);

    assert!(one.total_handoffs() > 0, "roaming run produced no handoffs");
    for (n, out) in &rest {
        assert_eq!(out.digest, one.digest, "digest diverged at {n} threads");
        assert_eq!(
            out.events, one.events,
            "event count diverged at {n} threads"
        );
        assert_eq!(out.stations.len(), one.stations.len());
        for (a, b) in out.stations.iter().zip(one.stations.iter()) {
            assert_eq!(
                a.bytes.to_bits(),
                b.bytes.to_bits(),
                "station {} bytes diverged at {n} threads",
                a.station
            );
        }
        assert_eq!(out.stations, one.stations);
    }
}
