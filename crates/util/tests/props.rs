//! Property-based tests for the math utilities.

use libra_util::csvio::{parse_csv, CsvWriter};
use libra_util::db::{db_to_linear, linear_to_db, sum_powers_dbm};
use libra_util::fft::{fft_in_place, ifft_in_place, Complex};
use libra_util::stats::{mean, pearson, percentile, BoxplotSummary, EmpiricalCdf};
use proptest::prelude::*;

proptest! {
    #[test]
    fn db_roundtrip(x in -100.0f64..100.0) {
        let back = linear_to_db(db_to_linear(x));
        prop_assert!((back - x).abs() < 1e-9);
    }

    #[test]
    fn power_sum_at_least_max(powers in prop::collection::vec(-120.0f64..10.0, 1..12)) {
        let total = sum_powers_dbm(&powers);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(total >= max - 1e-9);
        // And no more than max + 10·log10(n).
        prop_assert!(total <= max + 10.0 * (powers.len() as f64).log10() + 1e-9);
    }

    #[test]
    fn percentile_within_range(xs in prop::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let v = percentile(&xs, p);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn percentile_monotone(xs in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = percentile(&xs, p);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn pearson_bounded(
        xs in prop::collection::vec(-100.0f64..100.0, 3..50),
        ys in prop::collection::vec(-100.0f64..100.0, 3..50),
    ) {
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        if !r.is_nan() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn pearson_affine_invariant(
        xs in prop::collection::vec(-50.0f64..50.0, 5..40),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        let r = pearson(&xs, &ys);
        if !r.is_nan() {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_normalized(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let cdf = EmpiricalCdf::new(xs.iter().copied());
        let mut prev = 0.0;
        for (x, y) in cdf.steps() {
            prop_assert!(y >= prev);
            prop_assert!(cdf.eval(x) >= y - 1e-12);
            prev = y;
        }
        prop_assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_eval_bounds(xs in prop::collection::vec(-1e3f64..1e3, 1..100), q in -2e3f64..2e3) {
        let cdf = EmpiricalCdf::new(xs.iter().copied());
        let v = cdf.eval(q);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn boxplot_ordering(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let b = BoxplotSummary::new(&xs);
        // Quartiles are interpolated, so whiskers (actual data points)
        // need not bracket them — but quartiles order among themselves,
        // whiskers order among themselves and stay within the data
        // range, and every outlier lies strictly outside the whiskers.
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.whisker_lo <= b.whisker_hi + 1e-9);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.whisker_lo >= lo && b.whisker_hi <= hi);
        for o in &b.outliers {
            prop_assert!(*o < b.whisker_lo || *o > b.whisker_hi);
        }
        // Non-outlier count + outlier count = sample size.
        let inside = xs
            .iter()
            .filter(|&&x| (b.whisker_lo..=b.whisker_hi).contains(&x))
            .count();
        prop_assert_eq!(inside + b.outliers.len(), xs.len());
    }

    #[test]
    fn fft_roundtrip(xs in prop::collection::vec(-100.0f64..100.0, 1..5)) {
        // Zero-pad to 8.
        let mut data: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        data.resize(8, Complex::ZERO);
        let orig = data.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in orig.iter().zip(&data) {
            prop_assert!((a.re - b.re).abs() < 1e-9 && b.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_linearity(
        xs in prop::collection::vec(-10.0f64..10.0, 8..9),
        ys in prop::collection::vec(-10.0f64..10.0, 8..9),
        k in -5.0f64..5.0,
    ) {
        use libra_util::fft::fft_real;
        let combo: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a + k * b).collect();
        let fx = fft_real(&xs);
        let fy = fft_real(&ys);
        let fc = fft_real(&combo);
        for i in 0..8 {
            let expect = fx[i] + fy[i].scale(k);
            prop_assert!((fc[i].re - expect.re).abs() < 1e-8);
            prop_assert!((fc[i].im - expect.im).abs() < 1e-8);
        }
    }

    #[test]
    fn csv_roundtrip(rows in prop::collection::vec(
        prop::collection::vec("[ -~]{0,20}", 1..6), 1..10,
    )) {
        let mut w = CsvWriter::new();
        for row in &rows {
            w.row(row.iter().map(String::as_str));
        }
        let parsed = parse_csv(w.as_str());
        prop_assert_eq!(parsed.len(), rows.len());
        for (a, b) in rows.iter().zip(&parsed) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn mean_between_extremes(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }
}
