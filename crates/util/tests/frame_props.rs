//! Property-based tests for the columnar `FeatureFrame`: row/column
//! accessor consistency and round-trips from row-oriented input.

use libra_util::frame::FeatureFrame;
use libra_util::rng::rng_from_seed;
use proptest::prelude::*;

/// Strategy: a non-ragged row-oriented matrix plus matching labels.
fn table(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>, usize)> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(n_rows, n_cols)| {
        let rows = prop::collection::vec(
            prop::collection::vec(-1e6f64..1e6, n_cols..=n_cols),
            n_rows..=n_rows,
        );
        let labels = prop::collection::vec(0usize..3, n_rows..=n_rows);
        (rows, labels, Just(3usize))
    })
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("f{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Building a frame from rows and reading it back is the identity.
    #[test]
    fn round_trip_from_rows((rows, labels, n_classes) in table(20, 6)) {
        let frame = FeatureFrame::new(rows.clone(), labels.clone(), n_classes, names(rows[0].len()));
        prop_assert_eq!(frame.to_rows(), rows);
        prop_assert_eq!(&frame.labels, &labels);
    }

    /// Row accessors, column iterators, and flat values all agree.
    #[test]
    fn row_and_column_views_agree((rows, labels, n_classes) in table(16, 5)) {
        let frame = FeatureFrame::new(rows.clone(), labels, n_classes, names(rows[0].len()));
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(frame.row(i), row.as_slice());
            for (f, &v) in row.iter().enumerate() {
                prop_assert_eq!(frame.value(i, f).to_bits(), v.to_bits());
            }
        }
        for f in 0..frame.n_features() {
            let col: Vec<f64> = frame.column(f).collect();
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(col[i].to_bits(), row[f].to_bits());
            }
        }
    }

    /// A view over explicit indices reads exactly the selected rows, and
    /// materializing it via `subset` yields the same data.
    #[test]
    fn selected_views_match_source(
        (rows, labels, n_classes) in table(16, 4),
        pick in prop::collection::vec(0usize..16, 1..24),
    ) {
        let frame = FeatureFrame::new(rows.clone(), labels, n_classes, names(rows[0].len()));
        let idx: Vec<usize> = pick.into_iter().map(|i| i % rows.len()).collect();
        let view = frame.select(&idx);
        prop_assert_eq!(view.len(), idx.len());
        for (local, &global) in idx.iter().enumerate() {
            prop_assert_eq!(view.row(local), frame.row(global));
            prop_assert_eq!(view.label(local), frame.labels[global]);
            prop_assert_eq!(view.global(local), global);
        }
        let owned = frame.subset(&idx);
        prop_assert_eq!(owned.to_rows(), view.rows().map(<[f64]>::to_vec).collect::<Vec<_>>());
        prop_assert_eq!(owned.labels, view.labels_vec());
    }

    /// Growing a frame row by row matches bulk construction bitwise.
    #[test]
    fn push_row_equals_bulk((rows, labels, n_classes) in table(12, 4)) {
        let bulk = FeatureFrame::new(rows.clone(), labels.clone(), n_classes, names(rows[0].len()));
        let mut grown = FeatureFrame::with_schema(n_classes, names(rows[0].len()));
        for (row, &label) in rows.iter().zip(&labels) {
            grown.push_row(row, label);
        }
        prop_assert_eq!(grown, bulk);
    }

    /// Stratified folds partition the row indices exactly.
    #[test]
    fn folds_partition_rows((rows, labels, n_classes) in table(24, 3), seed in 0u64..100) {
        let frame = FeatureFrame::new(rows.clone(), labels, n_classes, names(rows[0].len()));
        let mut rng = rng_from_seed(seed);
        let folds = frame.stratified_folds(3, &mut rng);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..frame.len()).collect::<Vec<_>>());
    }
}
