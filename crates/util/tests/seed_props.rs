//! Property tests for the seed-derivation helpers the deterministic
//! parallel layer builds on: [`libra_util::rng::derive_seed`] and
//! [`libra_util::rng::derive_seed_index`] must be pure functions of their
//! arguments (so parallel workers can derive them in any order), and
//! distinct labels/indices must get distinct streams.
//!
//! Distinctness is exact, not merely probable: both helpers finish with a
//! SplitMix64 round (a bijection on `u64`), and the index variant mixes
//! with an odd multiplier (also a bijection), so unequal inputs cannot
//! collide after the parent is fixed.

use libra_util::rng::{derive_seed, derive_seed_index};
use proptest::prelude::*;

proptest! {
    #[test]
    fn derive_seed_stable_across_calls(parent in any::<u64>(), name in "[a-z0-9_]{1,16}") {
        prop_assert_eq!(derive_seed(parent, &name), derive_seed(parent, &name));
    }

    #[test]
    fn derive_seed_index_stable_across_calls(parent in any::<u64>(), i in any::<u64>()) {
        prop_assert_eq!(derive_seed_index(parent, i), derive_seed_index(parent, i));
    }

    #[test]
    fn distinct_names_get_distinct_seeds(
        parent in any::<u64>(),
        a in "[a-z0-9_]{1,12}",
        b in "[a-z0-9_]{1,12}",
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(parent, &a), derive_seed(parent, &b));
    }

    #[test]
    fn distinct_indices_get_distinct_seeds(
        parent in any::<u64>(),
        i in any::<u64>(),
        j in any::<u64>(),
    ) {
        prop_assume!(i != j);
        prop_assert_ne!(derive_seed_index(parent, i), derive_seed_index(parent, j));
    }

    #[test]
    fn distinct_parents_get_distinct_children(
        a in any::<u64>(),
        b in any::<u64>(),
        i in 0u64..1024,
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed_index(a, i), derive_seed_index(b, i));
    }

    #[test]
    fn label_derivation_is_order_independent(
        parent in any::<u64>(),
        names in prop::collection::vec("[a-z0-9_]{1,8}", 2..8),
    ) {
        // Parallel workers pull labels in whatever order the scheduler
        // hands them out; each label's seed must not depend on that order.
        let forward: Vec<u64> = names.iter().map(|n| derive_seed(parent, n)).collect();
        let mut reversed: Vec<u64> =
            names.iter().rev().map(|n| derive_seed(parent, n)).collect();
        reversed.reverse();
        prop_assert_eq!(forward, reversed);
    }

    #[test]
    fn index_derivation_is_order_independent(parent in any::<u64>(), n in 2u64..64) {
        let forward: Vec<u64> = (0..n).map(|i| derive_seed_index(parent, i)).collect();
        let mut reversed: Vec<u64> =
            (0..n).rev().map(|i| derive_seed_index(parent, i)).collect();
        reversed.reverse();
        prop_assert_eq!(forward, reversed);
    }
}
