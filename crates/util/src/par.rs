//! Deterministic parallel execution.
//!
//! Every hot loop in the suite (campaign generation, forest training,
//! cross-validation folds, the §8 evaluation grid) is *embarrassingly
//! parallel once each work item owns an independently derived RNG*
//! (see [`crate::rng::derive_seed`] / [`crate::rng::derive_seed_index`]).
//! This module supplies the execution side of that bargain: a work-stealing
//! fan-out over scoped OS threads whose results are collected into
//! **index-addressed** buffers, so the output of [`par_map_index`] is
//! bitwise identical to a sequential `(0..n).map(f).collect()` at *any*
//! thread count. No completion-order reduction ever reaches the caller.
//!
//! The thread count resolves, in priority order:
//!
//! 1. an explicit [`set_threads`] call (the `--threads N` CLI flag),
//! 2. the `LIBRA_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested calls (e.g. forest training inside a parallel CV fold) run
//! sequentially on the calling worker instead of spawning a second
//! generation of threads, so the total worker count stays bounded by the
//! configured parallelism.
//!
//! The workspace bans external dependencies beyond the allowed set, so
//! this is plain `std::thread::scope` + atomics rather than `rayon`; for
//! the coarse work items of this suite (a scenario, a tree, a fold, a
//! timeline) the per-item `fetch_add` cost is negligible.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Explicit thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Observer hooks around each parallel work item, so a telemetry layer
/// (e.g. `libra-obs`) can capture per-item data on worker threads and
/// fold it back into the *calling* thread **in index order** — keeping
/// observed counters bitwise identical at any thread count.
///
/// Plain `fn` pointers keep this crate dependency-free: the observer
/// installs itself once via [`install_task_hooks`], and the sequential
/// fast path (1 thread, or nested regions) never consults the hooks —
/// items already run on the calling thread in index order there.
pub struct TaskHooks {
    /// Called on the worker thread immediately before a work item runs.
    /// Typically opens a fresh observation scope.
    pub enter: fn(),
    /// Called on the worker thread immediately after a work item runs.
    /// Returns the item's captured observation data (an opaque box that
    /// is a ZST when observation is disabled, so no allocation occurs).
    pub exit: fn() -> Box<dyn Any + Send>,
    /// Called on the calling thread, once per item **in index order**,
    /// with the box produced by `exit`.
    pub merge: fn(Box<dyn Any + Send>),
}

static TASK_HOOKS: OnceLock<TaskHooks> = OnceLock::new();

/// Installs the global [`TaskHooks`]. The first call wins; later calls
/// are ignored. Intended to be called once by the telemetry layer.
pub fn install_task_hooks(hooks: TaskHooks) {
    let _ = TASK_HOOKS.set(hooks);
}

thread_local! {
    /// True on worker threads spawned by [`par_map_index`], so nested
    /// parallel calls degrade to sequential execution.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Sets the global worker-thread count. `0` clears the override, falling
/// back to `LIBRA_THREADS` and then to the machine's parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The effective worker-thread count for parallel sections.
pub fn threads() -> usize {
    let n = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if n > 0 {
        return n;
    }
    if let Ok(v) = std::env::var("LIBRA_THREADS") {
        if let Ok(k) = v.trim().parse::<usize>() {
            if k > 0 {
                return k;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Maps `f` over `0..n` on the configured number of threads, returning
/// results in index order. Deterministic: for a pure-per-index `f` the
/// output is identical to `(0..n).map(f).collect()` at any thread count.
pub fn par_map_index<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 || IN_PARALLEL_REGION.with(|c| c.get()) {
        return (0..n).map(f).collect();
    }
    let hooks = TASK_HOOKS.get();
    let next = AtomicUsize::new(0);
    type Item<R> = (usize, R, Option<Box<dyn Any + Send>>);
    let collected: Mutex<Vec<Item<R>>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_PARALLEL_REGION.with(|c| c.set(true));
                let mut local: Vec<Item<R>> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match hooks {
                        Some(h) => {
                            (h.enter)();
                            let r = f(i);
                            local.push((i, r, Some((h.exit)())));
                        }
                        None => local.push((i, f(i), None)),
                    }
                }
                collected
                    .lock()
                    .expect("result collector poisoned")
                    .extend(local);
            });
        }
    });
    let mut slots: Vec<Option<(R, Option<Box<dyn Any + Send>>)>> =
        std::iter::repeat_with(|| None).take(n).collect();
    for (i, r, obs) in collected.into_inner().expect("result collector poisoned") {
        slots[i] = Some((r, obs));
    }
    slots
        .into_iter()
        .map(|slot| {
            let (r, obs) = slot.expect("every index computed exactly once");
            if let (Some(h), Some(data)) = (hooks, obs) {
                (h.merge)(data);
            }
            r
        })
        .collect()
}

/// Maps `f` over a slice in parallel, preserving item order in the
/// returned vector (see [`par_map_index`] for the determinism contract).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_index(items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that touch the global thread override must not interleave.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn lock_override() -> std::sync::MutexGuard<'static, ()> {
        OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn maps_in_index_order() {
        let out = par_map_index(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn slice_map_preserves_order() {
        let items: Vec<String> = (0..64).map(|i| format!("item{i}")).collect();
        let out = par_map(&items, |i, s| format!("{i}:{s}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("{i}:item{i}"));
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = par_map_index(0, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(par_map_index(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        // The determinism contract itself: a pure-per-index computation
        // yields the same vector at 1, 2, and 8 threads.
        let work = |i: usize| {
            let mut h = i as u64;
            for _ in 0..100 {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            h
        };
        let reference: Vec<u64> = (0..257).map(work).collect();
        let _g = lock_override();
        for n in [1usize, 2, 8] {
            set_threads(n);
            assert_eq!(par_map_index(257, work), reference, "threads = {n}");
        }
        set_threads(0);
    }

    #[test]
    fn nested_calls_do_not_explode() {
        let _g = lock_override();
        set_threads(4);
        let out = par_map_index(8, |i| par_map_index(8, move |j| i * 8 + j));
        set_threads(0);
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..8).map(|j| i * 8 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn task_hooks_merge_in_index_order() {
        use std::cell::RefCell;
        thread_local! {
            static ITEM: Cell<usize> = const { Cell::new(usize::MAX) };
            static CAPTURE: Cell<bool> = const { Cell::new(false) };
            static MERGED: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
        }
        fn enter() {
            ITEM.with(|c| c.set(usize::MAX));
        }
        fn exit() -> Box<dyn Any + Send> {
            Box::new(ITEM.with(|c| c.get()))
        }
        fn merge(data: Box<dyn Any + Send>) {
            // Hooks are process-global; only record while this test's
            // calling thread has opted in, so concurrent tests in the
            // same binary cannot pollute the capture buffer.
            if !CAPTURE.with(|c| c.get()) {
                return;
            }
            if let Ok(v) = data.downcast::<usize>() {
                MERGED.with(|m| m.borrow_mut().push(*v));
            }
        }
        install_task_hooks(TaskHooks { enter, exit, merge });
        let _g = lock_override();
        set_threads(4);
        CAPTURE.with(|c| c.set(true));
        let out = par_map_index(97, |i| {
            ITEM.with(|c| c.set(i));
            i * 2
        });
        CAPTURE.with(|c| c.set(false));
        set_threads(0);
        assert_eq!(out, (0..97).map(|i| i * 2).collect::<Vec<_>>());
        // Merge must observe items in index order regardless of which
        // worker computed them.
        MERGED.with(|m| {
            assert_eq!(*m.borrow(), (0..97).collect::<Vec<_>>());
        });
    }

    #[test]
    fn override_beats_default() {
        let _g = lock_override();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
