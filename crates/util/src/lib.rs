//! # libra-util
//!
//! Shared math and statistics utilities for the LiBRA 60 GHz link
//! adaptation reproduction.
//!
//! The crate is deliberately dependency-light: everything here is a pure
//! function or a small value type so that the simulation crates built on
//! top stay deterministic and easy to test.
//!
//! Modules:
//!
//! - [`db`] — decibel/linear conversions and physical constants used by the
//!   60 GHz propagation model (speed of light, wavelength, thermal noise).
//! - [`stats`] — descriptive statistics, empirical CDFs, Pearson
//!   correlation, and boxplot summaries used throughout the evaluation.
//! - [`fft`] — a small radix-2 FFT used to convert power delay profiles to
//!   frequency-domain CSI estimates (paper §6.1, "FFT PDP similarity").
//! - [`rng`] — deterministic RNG construction helpers so every experiment
//!   is reproducible from a single `u64` seed.
//! - [`par`] — deterministic parallel map over scoped threads: per-item
//!   work is fanned out, results are collected in index order, so output
//!   is identical at any thread count.
//! - [`table`] — plain-text table rendering for the experiment harness.
//! - [`csvio`] — minimal CSV writing for exporting datasets and figure
//!   series without an external CSV dependency.
//! - [`binser`] — a compact binary serde format (bincode-like) for
//!   persisting datasets and trained models to disk.
//! - [`checksum`] — CRC-32 and FNV-1a digests for artifact integrity
//!   checks and content-equality comparisons.
//! - [`paths`] — canonical on-disk locations (results root, model
//!   registry root) with environment-variable overrides.
//! - [`frame`] — the columnar data plane: [`frame::FeatureFrame`] stores a
//!   labelled feature matrix in one flat row-major allocation, and
//!   [`frame::FrameView`] lends zero-copy row subsets to folds, bootstrap
//!   samples, and serving batches.
//! - [`series`] — [`series::SharedSeries`], a copy-on-write `Vec<f64>`
//!   handle so per-MCS measurement tables are shared across the evaluation
//!   grid instead of deep-cloned per segment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binser;
pub mod checksum;
pub mod csvio;
pub mod db;
pub mod fft;
pub mod frame;
pub mod par;
pub mod paths;
pub mod rng;
pub mod series;
pub mod stats;
pub mod table;

pub use db::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm};
pub use fft::Complex;
pub use frame::{FeatureFrame, FrameView};
pub use series::SharedSeries;
pub use stats::{mean, pearson, percentile, stddev, BoxplotSummary, EmpiricalCdf};
