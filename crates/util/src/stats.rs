//! Descriptive statistics used throughout the evaluation harness.
//!
//! The paper reports its results as empirical CDFs (Figs 4–11), boxplots
//! (Figs 12–13) and scalar summaries (Tables 1–4). This module provides the
//! corresponding estimators: [`EmpiricalCdf`], [`BoxplotSummary`],
//! [`pearson`] correlation (used for PDP/CSI similarity, §6.1) and the
//! usual mean/stddev/percentile helpers.

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice. Returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median of a slice (50th percentile). Returns `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// Uses the same convention as NumPy's default (`linear` interpolation
/// between closest ranks), so figures regenerated here match what the
/// paper's matplotlib pipeline would produce. Returns `NaN` for an empty
/// slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// This is the similarity measure the paper borrows from prior CSI work
/// (§6.1: "we calculate the similarity between the two instances of the
/// metric ... in the form of the Pearson correlation coefficient").
///
/// Returns `NaN` when either input has zero variance or the slices are
/// empty / of different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.is_empty() {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// An empirical cumulative distribution function over a sample.
///
/// Construction sorts the sample once; evaluation is `O(log n)`. The CDF is
/// right-continuous: `F(x) = P[X <= x]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample. NaN values are dropped.
    pub fn new(sample: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = sample.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Self { sorted }
    }

    /// Number of (non-NaN) points backing the CDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no points.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P[X <= x]`. Returns `NaN` on an empty CDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile). `q` in `[0, 1]`. Returns `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q * 100.0)
    }

    /// The underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Emits `(x, F(x))` pairs for plotting — one step per sample point,
    /// like matplotlib's `plot(sorted, arange(1, n+1)/n)` idiom used for
    /// every CDF figure in the paper.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Samples the CDF on a fixed grid of `points` x-values spanning
    /// `[lo, hi]` — handy for compact textual figure output.
    pub fn sampled(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two grid points");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Five-number boxplot summary matching matplotlib's default convention
/// (whiskers at 1.5·IQR, fliers beyond), used for Figs 12–13.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lowest datum within `q1 - 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest datum within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Points outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxplotSummary {
    /// Computes the summary from a sample. Panics on an empty sample.
    pub fn new(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "boxplot of empty sample");
        let q1 = percentile(sample, 25.0);
        let med = percentile(sample, 50.0);
        let q3 = percentile(sample, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let mut whisker_lo = f64::INFINITY;
        let mut whisker_hi = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &x in sample {
            if x < lo_fence || x > hi_fence {
                outliers.push(x);
            } else {
                whisker_lo = whisker_lo.min(x);
                whisker_hi = whisker_hi.max(x);
            }
        }
        Self {
            q1,
            median: med,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_empty_is_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // NumPy: np.percentile([1,2,3,4], 25) == 1.75
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_length() {
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_anticorrelation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn pearson_mismatched_lengths_is_nan() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_nan());
    }

    #[test]
    fn cdf_eval_matches_definition() {
        let cdf = EmpiricalCdf::new([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn cdf_drops_nan() {
        let cdf = EmpiricalCdf::new([1.0, f64::NAN, 3.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_quantile_inverts() {
        let cdf = EmpiricalCdf::new((1..=100).map(|i| i as f64));
        assert!((cdf.quantile(0.5) - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_steps_monotone() {
        let cdf = EmpiricalCdf::new([5.0, 1.0, 3.0]);
        let steps = cdf.steps();
        assert_eq!(steps.len(), 3);
        assert!(steps
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(steps.last().unwrap().1, 1.0);
    }

    #[test]
    fn boxplot_no_outliers() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxplotSummary::new(&xs);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn boxplot_flags_outlier() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let b = BoxplotSummary::new(&xs);
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi <= 4.0);
    }
}
