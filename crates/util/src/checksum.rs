//! Checksums for on-disk artifacts.
//!
//! Two classic hashes, both dependency-free:
//!
//! - [`crc32`] — the reflected CRC-32 of IEEE 802.3 (polynomial
//!   `0xEDB88320`), used to detect corruption in model artifact files.
//! - [`fnv1a64`] — FNV-1a, used as a cheap content digest when two
//!   serialized artifacts must be compared for bitwise equality (e.g.
//!   the 1-vs-N-thread determinism harness).

/// Reflected CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) of `bytes`.
///
/// Matches zlib's `crc32()` and POSIX `cksum -o 3`; the check value for
/// `b"123456789"` is `0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit digest of `bytes`.
///
/// Not cryptographic — collisions would need adversarial inputs, far
/// beyond what a content-equality digest has to resist.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty_and_known_strings() {
        assert_eq!(crc32(b""), 0);
        // zlib: crc32("The quick brown fox jumps over the lazy dog")
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"libra model artifact payload".to_vec();
        let before = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(before, crc32(&data));
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digests_differ_for_different_inputs() {
        assert_ne!(fnv1a64(b"model-a"), fnv1a64(b"model-b"));
        assert_ne!(crc32(b"model-a"), crc32(b"model-b"));
    }
}
