//! Checksums for on-disk artifacts.
//!
//! Two classic hashes, both dependency-free:
//!
//! - [`crc32`] — the reflected CRC-32 of IEEE 802.3 (polynomial
//!   `0xEDB88320`), used to detect corruption in model artifact files.
//! - [`fnv1a64`] — FNV-1a, used as a cheap content digest when two
//!   serialized artifacts must be compared for bitwise equality (e.g.
//!   the 1-vs-N-thread determinism harness).
//!
//! Plus one integer mixer:
//!
//! - [`mix64`] / [`shard_of`] — the SplitMix64 finalizer, used to map
//!   station ids onto serving shards. The values are pinned by test so
//!   shard assignment — and therefore every recorded request stream —
//!   stays stable across releases.

/// Reflected CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) of `bytes`.
///
/// Matches zlib's `crc32()` and POSIX `cksum -o 3`; the check value for
/// `b"123456789"` is `0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit digest of `bytes`.
///
/// Not cryptographic — collisions would need adversarial inputs, far
/// beyond what a content-equality digest has to resist.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher.
///
/// Streaming form of [`fnv1a64`] for digests folded over long event
/// streams (the multi-station simulator hashes millions of events
/// without materializing them): `Fnv64::new().update(a).update(b)`
/// equals `fnv1a64(a ++ b)` byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds one little-endian `u64` into the digest.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Folds an `f64` bit pattern into the digest.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mix of `x`.
///
/// Every output bit depends on every input bit, so consecutive station
/// ids scatter uniformly. Bijectivity means distinct ids can never
/// collide before the modulo in [`shard_of`]. `mix64(0)` is pinned to
/// `0xE220_A839_7B1D_CDAF` (the first SplitMix64 output for seed 0).
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The serving shard a station id belongs to, in `0..n_shards`.
///
/// Stable by construction (pure [`mix64`] plus modulo): the same
/// station always lands on the same shard for a given shard count, on
/// every platform and in every release. Panics if `n_shards` is zero.
pub fn shard_of(station_id: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_of requires at least one shard");
    (mix64(station_id) % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty_and_known_strings() {
        assert_eq!(crc32(b""), 0);
        // zlib: crc32("The quick brown fox jumps over the lazy dog")
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"libra model artifact payload".to_vec();
        let before = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(before, crc32(&data));
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digests_differ_for_different_inputs() {
        assert_ne!(fnv1a64(b"model-a"), fnv1a64(b"model-b"));
        assert_ne!(crc32(b"model-a"), crc32(b"model-b"));
    }

    #[test]
    fn mix64_pinned_vectors() {
        // Recorded request streams bake shard routing in; these values
        // must never change.
        assert_eq!(mix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(mix64(1), 0x910a_2dec_8902_5cc1);
        assert_eq!(mix64(2), 0x9758_35de_1c97_56ce);
        assert_eq!(mix64(42), 0xbdd7_3226_2feb_6e95);
        assert_eq!(mix64(0xdead_beef), 0x4adf_b90f_68c9_eb9b);
    }

    #[test]
    fn shard_of_pinned_and_in_range() {
        let shards: Vec<usize> = (0..16).map(|s| shard_of(s, 8)).collect();
        assert_eq!(shards, [7, 1, 6, 5, 2, 2, 0, 7, 6, 4, 2, 5, 3, 7, 6, 5]);
        for id in 0..1000u64 {
            assert!(shard_of(id, 7) < 7);
            assert_eq!(shard_of(id, 1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_zero_shards_panics() {
        let _ = shard_of(1, 0);
    }
}
