//! A minimal self-describing binary serialization format over serde.
//!
//! The allowed dependency set has `serde` but no format crate, so this
//! module provides one: a compact little-endian binary encoding
//! (bincode-like) sufficient for every type in this workspace — datasets,
//! trained models, experiment results. It supports the full serde data
//! model except `deserialize_any` (the format is not self-describing by
//! type, like bincode).
//!
//! ```
//! use serde::{Deserialize, Serialize};
//! use libra_util::binser;
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Model { weights: Vec<f64>, name: String }
//!
//! let m = Model { weights: vec![1.0, 2.5], name: "rf".into() };
//! let bytes = binser::to_bytes(&m).unwrap();
//! let back: Model = binser::from_bytes(&bytes).unwrap();
//! assert_eq!(m, back);
//! ```

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binser: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value to bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    let mut ser = BinSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserializes a value from bytes produced by [`to_bytes`].
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let mut de = BinDeserializer {
        input: bytes,
        pos: 0,
    };
    let value = T::deserialize(&mut de)?;
    if de.pos != bytes.len() {
        return Err(Error(format!("{} trailing bytes", bytes.len() - de.pos)));
    }
    Ok(value)
}

/// Writes a value to a file, creating parent directories.
pub fn write_file<T: Serialize>(path: impl AsRef<std::path::Path>, value: &T) -> Result<(), Error> {
    let bytes = to_bytes(value)?;
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent).map_err(|e| Error(e.to_string()))?;
    }
    std::fs::write(path, bytes).map_err(|e| Error(e.to_string()))
}

/// Reads a value from a file written by [`write_file`].
pub fn read_file<T: DeserializeOwned>(path: impl AsRef<std::path::Path>) -> Result<T, Error> {
    let bytes = std::fs::read(path).map_err(|e| Error(e.to_string()))?;
    from_bytes(&bytes)
}

// ---------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------

struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    fn put_u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }
}

impl<'a> ser::Serializer for &'a mut BinSerializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), Error> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), Error> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), Error> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), Error> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), Error> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), Error> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.put_u64(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), Error> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), Error> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), Error> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), Error> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, Error> {
        let len = len.ok_or_else(|| Error("sequences need a known length".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, Error> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, Error> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, Error> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, Error> {
        let len = len.ok_or_else(|| Error("maps need a known length".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, Error> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, Error> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! impl_compound_ser {
    ($trait:path, $method:ident $(, $key_method:ident)?) => {
        impl<'a> $trait for &'a mut BinSerializer {
            type Ok = ();
            type Error = Error;
            $(fn $key_method<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
                key.serialize(&mut **self)
            })?
            fn $method<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), Error> {
                Ok(())
            }
        }
    };
}

impl_compound_ser!(ser::SerializeSeq, serialize_element);
impl_compound_ser!(ser::SerializeTuple, serialize_element);
impl_compound_ser!(ser::SerializeTupleStruct, serialize_field);
impl_compound_ser!(ser::SerializeTupleVariant, serialize_field);
impl_compound_ser!(ser::SerializeMap, serialize_value, serialize_key);

impl<'a> ser::SerializeStruct for &'a mut BinSerializer {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), Error> {
        Ok(())
    }
}

impl<'a> ser::SerializeStructVariant for &'a mut BinSerializer {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------

struct BinDeserializer<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], Error> {
        if self.pos + n > self.input.len() {
            return Err(Error(format!(
                "unexpected end of input (need {n} at {}/{})",
                self.pos,
                self.input.len()
            )));
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn get_u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn get_len(&mut self) -> Result<usize, Error> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| Error("length overflow".into()))
    }
}

macro_rules! de_num {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().expect("sized")))
        }
    };
}

impl<'de, 'a> de::Deserializer<'de> for &'a mut BinDeserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
        Err(Error(
            "binser is not self-describing (deserialize_any unsupported)".into(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        let b = self.take(1)?[0];
        visitor.visit_bool(b != 0)
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_i8(self.take(1)?[0] as i8)
    }
    de_num!(deserialize_i16, visit_i16, i16, 2);
    de_num!(deserialize_i32, visit_i32, i32, 4);
    de_num!(deserialize_i64, visit_i64, i64, 8);
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_u8(self.take(1)?[0])
    }
    de_num!(deserialize_u16, visit_u16, u16, 2);
    de_num!(deserialize_u32, visit_u32, u32, 4);
    de_num!(deserialize_u64, visit_u64, u64, 8);
    de_num!(deserialize_f32, visit_f32, f32, 4);
    de_num!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        let v = u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes"));
        visitor.visit_char(char::from_u32(v).ok_or_else(|| Error("invalid char".into()))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(Error(format!("invalid option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        let len = self.get_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
        Err(Error("identifiers are positional in binser".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
        Err(Error(
            "cannot skip unknown fields in a positional format".into(),
        ))
    }
}

struct Counted<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = Error;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Error> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = Error;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Error> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, Error> {
        seed.deserialize(&mut *self.de)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    type Variant = Self;
    fn variant_seed<V: de::DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self), Error> {
        let idx = u32::from_le_bytes(self.de.take(4)?.try_into().expect("4 bytes"));
        let value = seed.deserialize(IntoDeserializer::<Error>::into_deserializer(idx))?;
        Ok((value, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    fn unit_variant(self) -> Result<(), Error> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, Error> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, Error> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives() {
        roundtrip(&true);
        roundtrip(&42u8);
        roundtrip(&-7i32);
        roundtrip(&u64::MAX);
        roundtrip(&3.25f64);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&'λ');
        roundtrip(&"hello world".to_string());
    }

    #[test]
    fn collections() {
        roundtrip(&vec![1.5f64, -2.0, 0.0]);
        roundtrip(&vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip(&Some(9i64));
        roundtrip(&Option::<String>::None);
        roundtrip(&(1u8, "two".to_string(), 3.0f32));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        roundtrip(&m);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Kind {
        Unit,
        Newtype(f64),
        Tuple(u8, u8),
        Struct { x: i32, label: String },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        kinds: Vec<Kind>,
        grid: Vec<Vec<f64>>,
        maybe: Option<Box<Nested>>,
    }

    #[test]
    fn enums_and_nesting() {
        roundtrip(&Kind::Unit);
        roundtrip(&Kind::Newtype(2.5));
        roundtrip(&Kind::Tuple(1, 2));
        roundtrip(&Kind::Struct {
            x: -3,
            label: "hi".into(),
        });
        let inner = Nested {
            kinds: vec![Kind::Unit],
            grid: vec![vec![1.0]],
            maybe: None,
        };
        roundtrip(&Nested {
            kinds: vec![Kind::Newtype(0.5), Kind::Tuple(9, 8)],
            grid: vec![vec![], vec![1.0, 2.0]],
            maybe: Some(Box::new(inner)),
        });
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0xFF);
        let r: Result<u8, _> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&12345u64).unwrap();
        let r: Result<u64, _> = from_bytes(&bytes[..4]);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let r: Result<Option<u8>, _> = from_bytes(&[7]);
        assert!(r.is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("libra-binser-test");
        let path = dir.join("value.bin");
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        write_file(&path, &v).unwrap();
        let back: Vec<(u32, String)> = read_file(&path).unwrap();
        assert_eq!(back, v);
        let _ = std::fs::remove_dir_all(dir);
    }
}
