//! Decibel/linear conversions and 60 GHz physical constants.
//!
//! The propagation and PHY models work in dB / dBm almost everywhere (the
//! paper reports SNR and noise levels in dB). These helpers keep the
//! conversions in one place and give the constants descriptive names with
//! explicit units.

/// Speed of light in metres per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Carrier frequency used by 802.11ad / the X60 testbed, in hertz.
pub const CARRIER_FREQ_HZ: f64 = 60.48e9;

/// Carrier wavelength at 60.48 GHz, in metres (≈ 4.96 mm).
pub const WAVELENGTH_M: f64 = SPEED_OF_LIGHT_M_PER_S / CARRIER_FREQ_HZ;

/// Channel bandwidth of an 802.11ad / X60 channel, in hertz (2 GHz wide,
/// of which ~1.76 GHz is occupied; we use the nominal 1.76 GHz for noise).
pub const CHANNEL_BANDWIDTH_HZ: f64 = 1.76e9;

/// Thermal noise power spectral density at 290 K, in dBm per hertz.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -173.93;

/// Typical receiver noise figure for a 60 GHz front end, in dB.
pub const NOISE_FIGURE_DB: f64 = 7.0;

/// Thermal noise floor over the full 802.11ad channel including the noise
/// figure, in dBm: `-173.93 + 10·log10(1.76e9) + 7 ≈ -74.5 dBm`.
pub fn noise_floor_dbm() -> f64 {
    THERMAL_NOISE_DBM_PER_HZ + 10.0 * CHANNEL_BANDWIDTH_HZ.log10() + NOISE_FIGURE_DB
}

/// Converts a power ratio from decibels to linear scale.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
///
/// Returns `f64::NEG_INFINITY` for non-positive inputs, which models a
/// signal below any measurable level (the X60 logs report such values as
/// "infinite" ToF / unmeasurable SNR; see paper §6.1.1).
#[inline]
pub fn linear_to_db(linear: f64) -> f64 {
    if linear <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * linear.log10()
    }
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_linear(dbm)
}

/// Converts milliwatts to dBm (`NEG_INFINITY` for non-positive input).
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    linear_to_db(mw)
}

/// Free-space (Friis) path loss at 60 GHz over `distance_m` metres, in dB.
///
/// `PL(d) = 20·log10(4πd/λ)`. At 1 m this is ≈ 68 dB, which is the usual
/// headline number for the 60 GHz band and the reason mmWave links need
/// directional antenna gain to close the budget.
pub fn friis_path_loss_db(distance_m: f64) -> f64 {
    debug_assert!(distance_m > 0.0, "distance must be positive");
    20.0 * (4.0 * std::f64::consts::PI * distance_m / WAVELENGTH_M).log10()
}

/// Sums a slice of powers expressed in dBm, returning the total in dBm.
///
/// Powers are summed in the linear domain; an empty slice yields
/// `NEG_INFINITY` (no power).
pub fn sum_powers_dbm(powers_dbm: &[f64]) -> f64 {
    let total_mw: f64 = powers_dbm
        .iter()
        .copied()
        .filter(|p| p.is_finite())
        .map(dbm_to_mw)
        .sum();
    mw_to_dbm(total_mw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn db_roundtrip() {
        for &x in &[-40.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            assert!(close(linear_to_db(db_to_linear(x)), x, 1e-9));
        }
    }

    #[test]
    fn zero_linear_is_neg_infinity() {
        assert_eq!(linear_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(mw_to_dbm(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn three_db_doubles_power() {
        assert!(close(db_to_linear(3.0103), 2.0, 1e-3));
    }

    #[test]
    fn friis_at_one_metre_is_about_68_db() {
        let pl = friis_path_loss_db(1.0);
        assert!(close(pl, 68.0, 0.5), "got {pl}");
    }

    #[test]
    fn friis_doubles_distance_adds_6_db() {
        let d1 = friis_path_loss_db(5.0);
        let d2 = friis_path_loss_db(10.0);
        assert!(close(d2 - d1, 6.0206, 1e-3));
    }

    #[test]
    fn noise_floor_matches_expectation() {
        // -173.93 + 92.46 + 7 = -74.47 dBm
        assert!(
            close(noise_floor_dbm(), -74.47, 0.1),
            "got {}",
            noise_floor_dbm()
        );
    }

    #[test]
    fn sum_powers_two_equal_adds_3db() {
        let total = sum_powers_dbm(&[-60.0, -60.0]);
        assert!(close(total, -56.9897, 1e-3));
    }

    #[test]
    fn sum_powers_ignores_neg_infinity() {
        let total = sum_powers_dbm(&[-60.0, f64::NEG_INFINITY]);
        assert!(close(total, -60.0, 1e-9));
    }

    #[test]
    fn sum_powers_empty_is_neg_infinity() {
        assert_eq!(sum_powers_dbm(&[]), f64::NEG_INFINITY);
    }
}
