//! Deterministic RNG construction.
//!
//! Every stochastic component in the reproduction (measurement jitter,
//! timeline generation, model initialisation, bagging) draws from an RNG
//! seeded through this module, so a single `u64` reproduces any experiment
//! bit-for-bit.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Constructs a fast, deterministic RNG from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to hand independent deterministic streams to sub-components (e.g.
/// one stream per dataset scenario, one per forest tree) without the
/// streams being trivially correlated. This is a fixed 64-bit mix (a
/// SplitMix64 round over `parent ^ label-hash`), not a cryptographic
/// construction.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
    }
    splitmix64(parent ^ h)
}

/// Derives a child seed from a parent seed and an index.
pub fn derive_seed_index(parent: u64, index: u64) -> u64 {
    splitmix64(parent ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One standard-normal draw via Box–Muller (the allowed `rand` crate
/// ships no distributions; this is the single normal sampler the whole
/// workspace shares).
pub fn standard_normal(rng: &mut impl rand::Rng) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(7, "channel"), derive_seed(7, "channel"));
    }

    #[test]
    fn derive_seed_separates_labels() {
        assert_ne!(derive_seed(7, "channel"), derive_seed(7, "phy"));
        assert_ne!(derive_seed(7, "a"), derive_seed(8, "a"));
    }

    #[test]
    fn derive_seed_index_separates_indices() {
        let s: Vec<u64> = (0..16).map(|i| derive_seed_index(99, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
