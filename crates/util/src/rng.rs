//! Deterministic RNG construction.
//!
//! Every stochastic component in the reproduction (measurement jitter,
//! timeline generation, model initialisation, bagging) draws from an RNG
//! seeded through this module, so a single `u64` reproduces any experiment
//! bit-for-bit.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Constructs a fast, deterministic RNG from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to hand independent deterministic streams to sub-components (e.g.
/// one stream per dataset scenario, one per forest tree) without the
/// streams being trivially correlated. This is a fixed 64-bit mix (a
/// SplitMix64 round over `parent ^ label-hash`), not a cryptographic
/// construction.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
    }
    splitmix64(parent ^ h)
}

/// Derives a child seed from a parent seed and an index.
pub fn derive_seed_index(parent: u64, index: u64) -> u64 {
    splitmix64(parent ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One standard-normal draw via Box–Muller (the allowed `rand` crate
/// ships no distributions; this is the single normal sampler the whole
/// workspace shares).
pub fn standard_normal(rng: &mut impl rand::Rng) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A dependency-free deterministic stream generator (SplitMix64).
///
/// The multi-station simulator draws every stochastic quantity —
/// segment durations, mobility steps, SNR shadowing — from streams of
/// this type, derived per station and per segment via [`derive_seed`] /
/// [`derive_seed_index`]. Being plain integer arithmetic (no `rand`
/// dependency), the streams are trivially platform-stable, which is
/// part of the engine's bitwise determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        out
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// One standard-normal draw via Box–Muller (mirrors
    /// [`standard_normal`], which needs a `rand::Rng`).
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(7, "channel"), derive_seed(7, "channel"));
    }

    #[test]
    fn derive_seed_separates_labels() {
        assert_ne!(derive_seed(7, "channel"), derive_seed(7, "phy"));
        assert_ne!(derive_seed(7, "a"), derive_seed(8, "a"));
    }

    #[test]
    fn derive_seed_index_separates_indices() {
        let s: Vec<u64> = (0..16).map(|i| derive_seed_index(99, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn splitmix_stream_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut dedup = va.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), va.len());
        // First output matches a single splitmix round of the seed.
        assert_eq!(SplitMix64::new(0).next_u64(), mix64_pin());
    }

    fn mix64_pin() -> u64 {
        // The first SplitMix64 output for seed 0 — the same constant
        // `checksum::mix64(0)` is pinned to.
        0xE220_A839_7B1D_CDAF
    }

    #[test]
    fn splitmix_uniform_in_range() {
        let mut s = SplitMix64::new(11);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let u = s.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 2000.0;
        assert!((mean - 0.5).abs() < 0.05, "uniform mean {mean}");
        let r = s.range(-3.0, 5.0);
        assert!((-3.0..5.0).contains(&r));
    }

    #[test]
    fn splitmix_normal_moments() {
        let mut s = SplitMix64::new(13);
        let n = 4000;
        let draws: Vec<f64> = (0..n).map(|_| s.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "normal var {var}");
    }
}
