//! Minimal CSV reading/writing.
//!
//! Dataset exports and figure series are written as CSV so they can be fed
//! to external plotting tools. The format here is deliberately simple:
//! comma-separated, quotes around fields containing commas/quotes/newlines,
//! `"` escaped by doubling — the common subset every CSV consumer accepts.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Serialises rows of string-able cells into CSV text.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    buf: String,
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row.
    pub fn row<S: AsRef<str>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut first = true;
        for cell in cells {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(&escape(cell.as_ref()));
        }
        self.buf.push('\n');
        self
    }

    /// Appends a row of floats formatted with `digits` decimals.
    pub fn row_f(&mut self, cells: &[f64], digits: usize) -> &mut Self {
        let mut first = true;
        for &c in cells {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let _ = write!(self.buf, "{c:.digits$}");
        }
        self.buf.push('\n');
        self
    }

    /// The CSV text accumulated so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Writes the accumulated CSV to a file, creating parent directories.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        File::create(path)?.write_all(self.buf.as_bytes())
    }
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Parses CSV text into rows of fields (supporting the quoting rules
/// produced by [`CsvWriter`]). Used by tests and by dataset re-loading.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                other => field.push(other),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = CsvWriter::new();
        w.row(["a", "b", "c"]).row(["1", "2", "3"]);
        let rows = parse_csv(w.as_str());
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn roundtrip_quoted() {
        let mut w = CsvWriter::new();
        w.row(["plain", "with,comma", "with\"quote", "multi\nline"]);
        let rows = parse_csv(w.as_str());
        assert_eq!(
            rows[0],
            vec!["plain", "with,comma", "with\"quote", "multi\nline"]
        );
    }

    #[test]
    fn row_f_formats_digits() {
        let mut w = CsvWriter::new();
        w.row_f(&[1.23456, 2.0], 3);
        assert_eq!(w.as_str(), "1.235,2.000\n");
    }

    #[test]
    fn parse_handles_crlf() {
        let rows = parse_csv("a,b\r\nc,d\r\n");
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_empty_is_empty() {
        assert!(parse_csv("").is_empty());
    }
}
