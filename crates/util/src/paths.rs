//! Canonical on-disk locations for generated artifacts.
//!
//! Everything the toolchain writes lives under a single results root so
//! that experiment outputs, recorded baselines, and the model registry
//! stay discoverable and easy to clean. The defaults are relative to the
//! current working directory (the repository root in normal use) and can
//! be redirected through environment variables — tests point them at
//! temporary directories.

use std::path::PathBuf;

/// Environment variable overriding the results root (`results/`).
pub const RESULTS_DIR_ENV: &str = "LIBRA_RESULTS_DIR";

/// Environment variable overriding the model registry root
/// (`<results>/models/`).
pub const MODELS_DIR_ENV: &str = "LIBRA_MODELS_DIR";

/// Root directory for generated artifacts (`results/` unless
/// `LIBRA_RESULTS_DIR` is set).
pub fn results_root() -> PathBuf {
    match std::env::var(RESULTS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("results"),
    }
}

/// Environment variable overriding the fuzz corpus root
/// (`<results>/corpus/`).
pub const CORPUS_DIR_ENV: &str = "LIBRA_CORPUS_DIR";

/// Root directory of the model registry (`<results>/models/` unless
/// `LIBRA_MODELS_DIR` is set).
pub fn models_root() -> PathBuf {
    match std::env::var(MODELS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => results_root().join("models"),
    }
}

/// Root directory of the fuzz scenario corpus (`<results>/corpus/`
/// unless `LIBRA_CORPUS_DIR` is set).
pub fn corpus_root() -> PathBuf {
    match std::env::var(CORPUS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => results_root().join("corpus"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_nests_models_under_results() {
        // Guard against env leakage from the outer test process.
        if std::env::var(RESULTS_DIR_ENV).is_err()
            && std::env::var(MODELS_DIR_ENV).is_err()
            && std::env::var(CORPUS_DIR_ENV).is_err()
        {
            assert_eq!(results_root(), PathBuf::from("results"));
            assert_eq!(models_root(), PathBuf::from("results").join("models"));
            assert_eq!(corpus_root(), PathBuf::from("results").join("corpus"));
        }
    }
}
