//! Copy-on-write shared `f64` series.
//!
//! Per-MCS measurement tables (throughput and codeword-delivery-ratio
//! curves) are produced once per campaign entry but consumed by every
//! simulated segment of the §8 evaluation grid: each flow duration ×
//! overhead-preset cell used to deep-clone both vectors per segment.
//! [`SharedSeries`] keeps one allocation behind an [`Arc`], so handing a
//! table to another owner is a reference-count bump, while `DerefMut`
//! falls back to clone-on-write ([`Arc::make_mut`]) so the few mutation
//! sites (tests perturbing a curve) keep value semantics.
//!
//! The serde representation delegates to the inner `Vec<f64>`, so
//! on-disk campaign files are byte-identical to the plain-vector era.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A shared, copy-on-write vector of `f64` samples.
///
/// Dereferences to `Vec<f64>`, so indexing, slicing, iteration, and
/// length checks read straight through; cloning shares the allocation;
/// mutation clones lazily (value semantics, shared storage).
#[derive(Debug, Clone, PartialEq)]
pub struct SharedSeries(Arc<Vec<f64>>);

impl SharedSeries {
    /// Wraps a vector into a shared handle (no copy).
    pub fn new(values: Vec<f64>) -> Self {
        Self(Arc::new(values))
    }

    /// Number of handles currently sharing this allocation
    /// (associated function, `Arc`-style, for tests and diagnostics).
    pub fn ref_count(this: &Self) -> usize {
        Arc::strong_count(&this.0)
    }
}

impl From<Vec<f64>> for SharedSeries {
    fn from(values: Vec<f64>) -> Self {
        Self::new(values)
    }
}

impl Deref for SharedSeries {
    type Target = Vec<f64>;

    fn deref(&self) -> &Vec<f64> {
        &self.0
    }
}

impl DerefMut for SharedSeries {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        Arc::make_mut(&mut self.0)
    }
}

impl Serialize for SharedSeries {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SharedSeries {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<f64>::deserialize(deserializer).map(Self::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = SharedSeries::new(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        assert_eq!(SharedSeries::ref_count(&a), 2);
        assert_eq!(a, b);
        assert_eq!(b[1], 2.0);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn mutation_copies_instead_of_aliasing() {
        let a = SharedSeries::new(vec![1.0, 2.0]);
        let mut b = a.clone();
        b[0] = 9.0;
        assert_eq!(a[0], 1.0, "mutating one handle must not alias the other");
        assert_eq!(b[0], 9.0);
        assert_eq!(SharedSeries::ref_count(&a), 1);
    }

    #[test]
    fn serde_matches_plain_vector() {
        let s = SharedSeries::new(vec![0.5, -1.5, 2.25]);
        let as_series = crate::binser::to_bytes(&s).expect("serialize series");
        let as_vec = crate::binser::to_bytes(&vec![0.5f64, -1.5, 2.25]).expect("serialize vec");
        assert_eq!(as_series, as_vec, "wire format must match Vec<f64>");
        let back: SharedSeries = crate::binser::from_bytes(&as_series).expect("deserialize");
        assert_eq!(back, s);
    }

    #[test]
    fn slicing_and_iteration_read_through() {
        let s = SharedSeries::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s[..=1].iter().sum::<f64>(), 3.0);
        assert_eq!(s.iter().copied().fold(0.0, f64::max), 4.0);
    }
}
