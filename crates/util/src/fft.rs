//! A small iterative radix-2 FFT.
//!
//! The paper estimates CSI on a single-carrier PHY by taking the FFT of the
//! measured power delay profile (§6.1, "we also perform an FFT of the PDP
//! to convert it from the time domain to the frequency domain and use it as
//! an estimate of CSI"). PDPs in this reproduction are 64-tap vectors, so a
//! textbook radix-2 Cooley–Tukey implementation is all that is needed.

use std::ops::{Add, Mul, Sub};

/// A complex number over `f64`. Minimal on purpose — only what the FFT and
/// channel model need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// `e^{iθ}` — a unit phasor at angle `theta` radians.
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (power).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (zero-pad first; PDPs in
/// this codebase are always 64 taps).
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real-valued signal, returning complex spectrum bins.
///
/// The input length must be a power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_in_place(&mut buf);
    buf
}

/// Magnitude spectrum of a real signal: `|FFT(x)|` per bin.
///
/// This is what the reproduction uses as the "CSI estimate" of a power
/// delay profile (frequency-domain channel response magnitude).
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    fft_real(signal).into_iter().map(Complex::abs).collect()
}

/// Inverse in-place FFT (for testing round-trips).
pub fn ifft_in_place(data: &mut [Complex]) {
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft_in_place(data);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.conj().scale(1.0 / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut sig = vec![0.0; 8];
        sig[0] = 1.0;
        let spec = magnitude_spectrum(&sig);
        assert!(spec.iter().all(|&m| close(m, 1.0)));
    }

    #[test]
    fn fft_of_constant_is_dc_only() {
        let spec = fft_real(&[1.0; 8]);
        assert!(close(spec[0].re, 8.0));
        assert!(spec[1..].iter().all(|z| z.abs() < 1e-9));
    }

    #[test]
    fn fft_of_single_tone_peaks_at_bin() {
        let n = 64;
        let k = 5;
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = magnitude_spectrum(&sig);
        // Energy splits between bins k and n-k.
        assert!(close(spec[k], n as f64 / 2.0));
        assert!(close(spec[n - k], n as f64 / 2.0));
        assert!(spec[k + 1] < 1e-9);
    }

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let sig = [3.0, -1.0, 2.5, 0.0, 7.0, 7.0, -2.0, 1.0];
        let mut buf: Vec<Complex> = sig.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (orig, rec) in sig.iter().zip(&buf) {
            assert!(close(*orig, rec.re));
            assert!(rec.im.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 6];
        fft_in_place(&mut data);
    }

    #[test]
    fn parseval_energy_conserved() {
        let sig = [1.0, 2.0, 3.0, 4.0, 0.5, -0.5, 0.0, 2.0];
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            fft_real(&sig).iter().map(|z| z.norm_sqr()).sum::<f64>() / sig.len() as f64;
        assert!(close(time_energy, freq_energy));
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert!(close(p.re, 5.0) && close(p.im, 5.0));
        assert!(close((a + b).re, 4.0) && close((a - b).im, 3.0));
        assert!(close(a.abs(), 5f64.sqrt()));
    }
}
