//! Columnar tabular core: one contiguous feature matrix shared by the
//! whole data plane.
//!
//! Every layer of the reproduction is tabular — campaign export,
//! stratified cross-validation, model fitting, and batched serving —
//! and all of them used to shuttle rows around as `Vec<Vec<f64>>`,
//! cloning per-row allocations at every hand-off. [`FeatureFrame`]
//! stores the feature matrix as a single flat row-major `Vec<f64>`
//! (`data[row * n_cols + col]`) next to its label vector, class count,
//! and feature names. [`FrameView`] is a cheap `Copy` borrow of a frame
//! restricted to an optional row subset, so k-fold splits, bootstrap
//! samples, and train/test partitions are index lists over one shared
//! allocation instead of materialized sub-datasets.
//!
//! Invariants (enforced by the constructors and `push_row`):
//!
//! - `data.len() == n_rows * n_cols` and `labels.len() == n_rows`;
//! - every label is `< n_classes`, and `n_classes >= 2`;
//! - no feature value is NaN (infinities are legal sentinels);
//! - `feature_names.len() == n_cols` whenever the frame has rows.
//!
//! A view never copies feature data: `row()` returns a slice into the
//! backing frame and `value()` indexes the flat buffer directly, so the
//! layout is friendly both to row-major consumers (serving) and to
//! column scans (split finding gathers a column once and sorts it in
//! contiguous memory).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled feature matrix in one contiguous allocation.
///
/// The feature storage is row-major: row `i` occupies
/// `data[i * n_cols .. (i + 1) * n_cols]`. Labels, the class count, and
/// feature names ride along so a frame is a self-describing dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureFrame {
    /// Flat row-major feature storage (`n_rows * n_cols` values).
    data: Vec<f64>,
    /// Number of rows currently stored.
    n_rows: usize,
    /// Number of feature columns (0 until the first row is pushed into
    /// an empty frame built with [`FeatureFrame::with_schema`]).
    n_cols: usize,
    /// Class label per row, each in `0..n_classes`.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub n_classes: usize,
    /// Human-readable name per feature column.
    pub feature_names: Vec<String>,
}

impl FeatureFrame {
    /// Builds a frame from row-oriented features, validating shape and
    /// values. Panics on ragged rows, label/row count mismatch, labels
    /// out of range, or NaN features — same contract the row-oriented
    /// `Dataset` constructor enforced.
    pub fn new(
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
        feature_names: Vec<String>,
    ) -> Self {
        assert_eq!(features.len(), labels.len(), "row/label count mismatch");
        assert!(n_classes >= 2, "need at least two classes");
        if let Some(first) = features.first() {
            assert!(
                features.iter().all(|r| r.len() == first.len()),
                "ragged feature rows"
            );
            assert_eq!(feature_names.len(), first.len(), "name/column mismatch");
        }
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        assert!(
            features.iter().flatten().all(|v| !v.is_nan()),
            "NaN features must be sanitized before model fitting"
        );
        let n_rows = features.len();
        let n_cols = features.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &features {
            data.extend_from_slice(row);
        }
        Self {
            data,
            n_rows,
            n_cols,
            labels,
            n_classes,
            feature_names,
        }
    }

    /// An empty frame carrying only the schema; rows are appended with
    /// [`FeatureFrame::push_row`]. The column count is adopted from the
    /// first pushed row (and checked against `feature_names`).
    pub fn with_schema(n_classes: usize, feature_names: Vec<String>) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        Self {
            data: Vec::new(),
            n_rows: 0,
            n_cols: 0,
            labels: Vec::new(),
            n_classes,
            feature_names,
        }
    }

    /// Appends one labelled row. The first row pushed into an empty
    /// frame fixes the column count; later rows must match it.
    pub fn push_row(&mut self, row: &[f64], label: usize) {
        if self.n_rows == 0 {
            if !self.feature_names.is_empty() {
                assert_eq!(self.feature_names.len(), row.len(), "name/column mismatch");
            }
            self.n_cols = row.len();
        } else {
            assert_eq!(row.len(), self.n_cols, "ragged feature rows");
        }
        assert!(label < self.n_classes, "label out of range");
        assert!(
            row.iter().all(|v| !v.is_nan()),
            "NaN features must be sanitized before model fitting"
        );
        self.data.extend_from_slice(row);
        self.labels.push(label);
        self.n_rows += 1;
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the frame holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of feature columns (0 for an empty frame).
    pub fn n_features(&self) -> usize {
        self.n_cols
    }

    /// Borrow of row `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Feature value at (`row`, `col`) straight from the flat buffer.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n_cols + col]
    }

    /// Iterator over all rows as borrowed slices (no copies).
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols.max(1)).take(self.n_rows)
    }

    /// Iterator over column `col`, top to bottom (strided scan of the
    /// flat buffer).
    pub fn column(&self, col: usize) -> impl Iterator<Item = f64> + '_ {
        (0..self.n_rows).map(move |i| self.value(i, col))
    }

    /// Zero-copy view spanning every row.
    pub fn view(&self) -> FrameView<'_> {
        FrameView {
            frame: self,
            rows: None,
        }
    }

    /// Zero-copy view restricted to the given row indices (in order,
    /// duplicates allowed — bootstrap samples are index lists too).
    pub fn select<'a>(&'a self, rows: &'a [usize]) -> FrameView<'a> {
        debug_assert!(rows.iter().all(|&i| i < self.n_rows), "row index range");
        FrameView {
            frame: self,
            rows: Some(rows),
        }
    }

    /// Materializes the selected rows into a new owned frame. Views are
    /// preferred for training; this exists for owners that outlive the
    /// source (e.g. online buffers).
    pub fn subset(&self, idx: &[usize]) -> Self {
        let mut data = Vec::with_capacity(idx.len() * self.n_cols);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            data.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        Self {
            data,
            n_rows: idx.len(),
            n_cols: self.n_cols,
            labels,
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Copies the frame back out as row-oriented `Vec<Vec<f64>>` (for
    /// row-based APIs and tests; the training path never calls this).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }

    /// Number of rows per class label.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Splits row indices into `k` folds preserving per-class ratios.
    /// Rows of each class are shuffled, then dealt round-robin across
    /// folds, so every fold sees roughly the overall class balance.
    pub fn stratified_folds(&self, k: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least 2 folds");
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class_idx in &mut by_class {
            class_idx.shuffle(rng);
            for (j, &row) in class_idx.iter().enumerate() {
                folds[j % k].push(row);
            }
        }
        folds
    }

    /// Per-column mean and standard deviation (degenerate columns get
    /// sd forced to 1 so standardization stays finite).
    pub fn column_stats(&self) -> (Vec<f64>, Vec<f64>) {
        self.view().column_stats()
    }
}

impl<'a> From<&'a FeatureFrame> for FrameView<'a> {
    fn from(frame: &'a FeatureFrame) -> Self {
        frame.view()
    }
}

/// A borrowed window onto a [`FeatureFrame`]: the whole frame, or an
/// ordered subset of its rows. Copying a view copies two pointers — no
/// feature data moves. Local row indices (`0..len()`) address positions
/// within the view; [`FrameView::global`] maps them back to rows of the
/// backing frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    frame: &'a FeatureFrame,
    rows: Option<&'a [usize]>,
}

impl<'a> FrameView<'a> {
    /// Number of rows visible through the view.
    pub fn len(&self) -> usize {
        self.rows.map_or(self.frame.n_rows, <[usize]>::len)
    }

    /// True when the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of feature columns of the backing frame.
    pub fn n_features(&self) -> usize {
        self.frame.n_cols
    }

    /// Number of classes of the backing frame.
    pub fn n_classes(&self) -> usize {
        self.frame.n_classes
    }

    /// Feature names of the backing frame.
    pub fn feature_names(&self) -> &'a [String] {
        &self.frame.feature_names
    }

    /// The backing frame itself.
    pub fn frame(&self) -> &'a FeatureFrame {
        self.frame
    }

    /// Maps a local row index to the row index in the backing frame.
    pub fn global(&self, local: usize) -> usize {
        self.rows.map_or(local, |r| r[local])
    }

    /// Maps a batch of local indices to backing-frame indices.
    pub fn resolve(&self, local: &[usize]) -> Vec<usize> {
        local.iter().map(|&i| self.global(i)).collect()
    }

    /// Borrow of local row `i` as a contiguous slice of the backing
    /// frame (zero copies).
    pub fn row(&self, i: usize) -> &'a [f64] {
        self.frame.row(self.global(i))
    }

    /// Feature value at local (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.frame.value(self.global(row), col)
    }

    /// Label of local row `i`.
    pub fn label(&self, i: usize) -> usize {
        self.frame.labels[self.global(i)]
    }

    /// Iterator over the view's rows as borrowed slices.
    pub fn rows(self) -> impl Iterator<Item = &'a [f64]> {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Labels of the view's rows, materialized in view order.
    pub fn labels_vec(&self) -> Vec<usize> {
        (0..self.len()).map(|i| self.label(i)).collect()
    }

    /// Number of rows per class label within the view.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for i in 0..self.len() {
            counts[self.label(i)] += 1;
        }
        counts
    }

    /// Per-column mean and standard deviation over the view's rows
    /// (row-major accumulation; degenerate columns get sd forced to 1).
    pub fn column_stats(&self) -> (Vec<f64>, Vec<f64>) {
        let cols = self.n_features();
        let n = self.len().max(1) as f64;
        let mut mean = vec![0.0; cols];
        for i in 0..self.len() {
            for (m, &v) in mean.iter_mut().zip(self.row(i)) {
                *m += v / n;
            }
        }
        let mut sd = vec![0.0; cols];
        for i in 0..self.len() {
            for ((s, m), &v) in sd.iter_mut().zip(&mean).zip(self.row(i)) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut sd {
            *s = s.sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        (mean, sd)
    }
}

impl<'a, 'b> From<&'b FrameView<'a>> for FrameView<'a> {
    fn from(view: &'b FrameView<'a>) -> Self {
        *view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn toy(n: usize) -> FeatureFrame {
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (2 * i) as f64]).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        FeatureFrame::new(features, labels, 2, vec!["a".into(), "b".into()])
    }

    #[test]
    fn round_trips_row_oriented_input() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let frame = FeatureFrame::new(rows.clone(), vec![0, 1, 0], 2, vec!["a".into(), "b".into()]);
        assert_eq!(frame.to_rows(), rows);
        assert_eq!(frame.len(), 3);
        assert_eq!(frame.n_features(), 2);
        assert_eq!(frame.row(1), &[3.0, 4.0]);
        assert_eq!(frame.value(2, 1), 6.0);
        assert_eq!(frame.column(0).collect::<Vec<_>>(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn push_row_matches_bulk_construction() {
        let bulk = toy(5);
        let mut grown = FeatureFrame::with_schema(2, vec!["a".into(), "b".into()]);
        for i in 0..5 {
            grown.push_row(bulk.row(i), bulk.labels[i]);
        }
        assert_eq!(grown, bulk);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn push_row_rejects_ragged_rows() {
        let mut f = toy(2);
        f.push_row(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn push_row_rejects_nan() {
        let mut f = toy(2);
        f.push_row(&[f64::NAN, 0.0], 0);
    }

    #[test]
    fn views_are_zero_copy_windows() {
        let frame = toy(6);
        let full = frame.view();
        assert_eq!(full.len(), 6);
        assert_eq!(full.row(3), frame.row(3));
        let idx = [5usize, 1, 1];
        let sub = frame.select(&idx);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.row(0), frame.row(5));
        assert_eq!(sub.row(2), frame.row(1));
        assert_eq!(sub.label(0), frame.labels[5]);
        assert_eq!(sub.labels_vec(), vec![1, 1, 1]);
        assert_eq!(sub.global(0), 5);
        assert_eq!(sub.resolve(&[0, 2]), vec![5, 1]);
    }

    #[test]
    fn subset_materializes_view_rows() {
        let frame = toy(6);
        let idx = [0usize, 4, 2];
        let owned = frame.subset(&idx);
        assert_eq!(owned.len(), 3);
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(owned.row(k), frame.row(i));
            assert_eq!(owned.labels[k], frame.labels[i]);
        }
    }

    #[test]
    fn stratified_folds_cover_and_balance() {
        let frame = toy(20);
        let mut rng = rng_from_seed(7);
        let folds = frame.stratified_folds(4, &mut rng);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        for fold in &folds {
            let ones = fold.iter().filter(|&&i| frame.labels[i] == 1).count();
            assert_eq!(ones * 2, fold.len(), "fold must keep the class ratio");
        }
    }

    #[test]
    fn view_column_stats_match_frame() {
        let frame = toy(9);
        let (m1, s1) = frame.column_stats();
        let (m2, s2) = frame.view().column_stats();
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }
}
