//! Branchless blocked inference kernels and their runtime dispatch.
//!
//! The blocked engines evaluate a tree arena level-by-level over blocks
//! of [`BLOCK`] rows. Each level step is pure arithmetic — gather the
//! split feature, compare against the threshold, index into the
//! interleaved child table — with no data-dependent branches, so the
//! compiler can vectorize the per-row loop and the CPU never pays a
//! branch-miss per node. Leaves self-loop (`kids[2i] == kids[2i+1] == i`),
//! which makes level-synchronous iteration safe for trees of uneven
//! depth; a cheap per-level "did anyone move" check exits early once a
//! whole block has settled on its leaves.
//!
//! ## Dispatch
//!
//! The same kernel source is compiled twice on x86-64: once portable and
//! once under `#[target_feature(enable = "avx2")]`. One runtime
//! `is_x86_feature_detected!("avx2")` probe (or a compile-time
//! `cfg!(target_feature = "avx2")` when built with `-C target-cpu`)
//! picks the widest path per batch. Both versions execute the identical
//! sequence of IEEE-754 `f64` operations — Rust never auto-contracts
//! `a * b + c` into an FMA — so the exact path is bitwise identical to
//! the recursive models on every lane of every ISA.

use crate::blocked::{BlockedForest, BlockedGbdt};
use crate::engine::Exactness;
use libra_ml::FrameView;

/// Rows evaluated per block by the blocked kernels.
///
/// 16 rows × 7 features of `f64` keeps a whole block's gathered feature
/// matrix inside two cache lines per feature column while giving the
/// out-of-order core 16 independent traversal chains per level.
pub const BLOCK: usize = 16;

/// The widest SIMD path the runtime dispatch will select on this
/// machine: `"avx2"` or `"scalar"` (the portable fallback).
pub fn simd_level() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if use_avx2() {
            return "avx2";
        }
    }
    "scalar"
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn use_avx2() -> bool {
    cfg!(target_feature = "avx2") || std::arch::is_x86_feature_detected!("avx2")
}

/// Argmax with the recursive models' tie-breaking: `Iterator::max_by`
/// keeps the *last* maximal element.
#[inline]
pub(crate) fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// One branchless level step for every row of a block: each row's
/// cursor either advances to a child or (at a leaf) self-loops in
/// place. Returns false once no cursor moved, letting the caller stop
/// before the tree's worst-case depth.
// The negated comparison is the contract, not a style slip: NaN must
// fail `v <= thr` and go right, as in the recursive engine.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
fn step_level<const QUANT: bool>(
    feature: &[u32],
    thr: &[f64],
    thr_q: &[f32],
    kids: &[u32],
    rowbuf: &[f64],
    stride: usize,
    idx: &mut [u32],
) -> bool {
    let mut moved = false;
    for (r, slot) in idx.iter_mut().enumerate() {
        let i = *slot as usize;
        let v = rowbuf[r * stride + feature[i] as usize];
        // `!(v <= thr)`, not `v > thr`: a NaN feature must descend
        // right, exactly like the recursive `if v <= thr {left} else
        // {right}`.
        let go_right = if QUANT {
            !((v as f32) <= thr_q[i])
        } else {
            !(v <= thr[i])
        };
        let next = kids[2 * i + go_right as usize];
        moved |= next != *slot;
        *slot = next;
    }
    moved
}

/// Copies block rows out of the (possibly row-selected) view into a
/// contiguous row-major scratch so the level steps index arithmetically.
#[inline(always)]
fn gather_rows(data: &FrameView<'_>, start: usize, len: usize, stride: usize, rowbuf: &mut [f64]) {
    for r in 0..len {
        let row = data.row(start + r);
        rowbuf[r * stride..r * stride + row.len()].copy_from_slice(row);
    }
}

#[inline(always)]
fn forest_batch_core<const QUANT: bool>(
    fo: &BlockedForest,
    data: &FrameView<'_>,
    out: &mut Vec<usize>,
) {
    let c = fo.n_classes;
    let stride = fo.n_features.max(1);
    let n = data.len();
    let n_trees = fo.roots.len();
    let mut rowbuf = vec![0.0f64; BLOCK * stride];
    let mut acc = vec![0.0f64; BLOCK * c];
    let mut idx = [0u32; BLOCK];
    let mut start = 0usize;
    while start < n {
        let len = BLOCK.min(n - start);
        gather_rows(data, start, len, stride, &mut rowbuf);
        let acc = &mut acc[..len * c];
        acc.fill(0.0);
        for t in 0..n_trees {
            idx[..len].fill(fo.roots[t]);
            for _ in 0..fo.steps[t] {
                if !step_level::<QUANT>(
                    &fo.feature,
                    &fo.thr,
                    &fo.thr_q,
                    &fo.kids,
                    &rowbuf,
                    stride,
                    &mut idx[..len],
                ) {
                    break;
                }
            }
            for (r, &at) in idx[..len].iter().enumerate() {
                let block = fo.payload[at as usize] as usize * c;
                let lane = &mut acc[r * c..(r + 1) * c];
                for (p, q) in lane.iter_mut().zip(&fo.leaf_probs[block..block + c]) {
                    *p += q;
                }
            }
        }
        // Same normalization as the recursive forest (a per-element f64
        // division); skipped for single-tree forests where `x / 1.0` is
        // the identity.
        if n_trees > 1 {
            let nt = n_trees as f64;
            for v in acc.iter_mut() {
                *v /= nt;
            }
        }
        for r in 0..len {
            out.push(argmax(&acc[r * c..(r + 1) * c]));
        }
        start += len;
    }
}

#[inline(always)]
fn gbdt_batch_core<const QUANT: bool>(
    fo: &BlockedGbdt,
    data: &FrameView<'_>,
    out: &mut Vec<usize>,
) {
    let k = fo.bases.len();
    let stride = fo.n_features.max(1);
    let n = data.len();
    let mut rowbuf = vec![0.0f64; BLOCK * stride];
    let mut scores = vec![0.0f64; BLOCK * k];
    let mut sums = [0.0f64; BLOCK];
    let mut idx = [0u32; BLOCK];
    let mut start = 0usize;
    while start < n {
        let len = BLOCK.min(n - start);
        gather_rows(data, start, len, stride, &mut rowbuf);
        for (b, &(t0, t1)) in fo.booster_trees.iter().enumerate() {
            sums[..len].fill(0.0);
            for t in t0 as usize..t1 as usize {
                idx[..len].fill(fo.roots[t]);
                for _ in 0..fo.steps[t] {
                    if !step_level::<QUANT>(
                        &fo.feature,
                        &fo.thr,
                        &fo.thr_q,
                        &fo.kids,
                        &rowbuf,
                        stride,
                        &mut idx[..len],
                    ) {
                        break;
                    }
                }
                for (r, &at) in idx[..len].iter().enumerate() {
                    sums[r] += fo.value[at as usize];
                }
            }
            // Identical `base + lr * Σ` expression as the flat engine:
            // the sum accumulates in tree order, then one mul + add.
            for r in 0..len {
                scores[r * k + b] = fo.bases[b] + fo.learning_rate * sums[r];
            }
        }
        for r in 0..len {
            out.push(argmax(&scores[r * k..(r + 1) * k]));
        }
        start += len;
    }
}

// --- runtime dispatch ---------------------------------------------------
//
// The `_avx2` wrappers re-compile the identical kernel body with AVX2
// (and everything it implies) enabled, so LLVM vectorizes the per-row
// loops with 256-bit lanes. They are semantically identical to the
// portable versions — dispatch can never change a prediction.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn forest_batch_avx2<const QUANT: bool>(
    fo: &BlockedForest,
    data: &FrameView<'_>,
    out: &mut Vec<usize>,
) {
    forest_batch_core::<QUANT>(fo, data, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn gbdt_batch_avx2<const QUANT: bool>(
    fo: &BlockedGbdt,
    data: &FrameView<'_>,
    out: &mut Vec<usize>,
) {
    gbdt_batch_core::<QUANT>(fo, data, out)
}

#[allow(unsafe_code)]
fn forest_dispatch<const QUANT: bool>(
    fo: &BlockedForest,
    data: &FrameView<'_>,
    out: &mut Vec<usize>,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 support was verified (at compile time or by the
        // runtime probe) immediately above.
        unsafe { forest_batch_avx2::<QUANT>(fo, data, out) };
        return;
    }
    forest_batch_core::<QUANT>(fo, data, out)
}

#[allow(unsafe_code)]
fn gbdt_dispatch<const QUANT: bool>(fo: &BlockedGbdt, data: &FrameView<'_>, out: &mut Vec<usize>) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 support was verified (at compile time or by the
        // runtime probe) immediately above.
        unsafe { gbdt_batch_avx2::<QUANT>(fo, data, out) };
        return;
    }
    gbdt_batch_core::<QUANT>(fo, data, out)
}

/// Blocked batch prediction for a forest, appending one class per row.
pub(crate) fn forest_batch(fo: &BlockedForest, data: &FrameView<'_>, out: &mut Vec<usize>) {
    match fo.exactness {
        Exactness::Exact => forest_dispatch::<false>(fo, data, out),
        Exactness::Quantized => forest_dispatch::<true>(fo, data, out),
    }
}

/// Blocked batch prediction for a GBDT, appending one class per row.
pub(crate) fn gbdt_batch(fo: &BlockedGbdt, data: &FrameView<'_>, out: &mut Vec<usize>) {
    match fo.exactness {
        Exactness::Exact => gbdt_dispatch::<false>(fo, data, out),
        Exactness::Quantized => gbdt_dispatch::<true>(fo, data, out),
    }
}
