//! On-disk model registry with `name@version` resolution.
//!
//! Layout under the registry root (default `results/models/`, overridable
//! via the `LIBRA_MODELS_DIR` environment variable):
//!
//! ```text
//! results/models/
//!   ba-forest/
//!     v1.libra
//!     v2.libra
//!     LATEST        # text file holding "2"
//! ```
//!
//! Saving a model allocates the next version number and repoints
//! `LATEST`. A [`ModelSpec`] reference like `ba-forest@1` pins a version;
//! bare `ba-forest` follows the latest-pointer. Every load re-verifies
//! the artifact checksum, so a corrupted file in the store is reported,
//! never served.

use crate::artifact::{Error, ModelArtifact};
use std::path::{Path, PathBuf};

/// Extension used for artifact files in the registry.
pub const ARTIFACT_EXT: &str = "libra";

/// Name of the latest-pointer file inside each model directory.
/// Latest-pointer file name inside a model directory. Public because
/// rollback tooling (and the watcher edge-case tests) repoint it
/// directly — the registry treats any well-formed pointer as truth.
pub const LATEST_FILE: &str = "LATEST";

/// A parsed model reference: `name` or `name@version`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Registry name of the model.
    pub name: String,
    /// Pinned version, or `None` to follow the latest-pointer.
    pub version: Option<u32>,
}

impl ModelSpec {
    /// Parses `"name"` or `"name@3"`.
    pub fn parse(spec: &str) -> Result<Self, Error> {
        let (name, version) = match spec.split_once('@') {
            Some((n, v)) => {
                let ver: u32 = v.parse().map_err(|_| {
                    Error::Registry(format!("bad version {v:?} in model spec {spec:?}"))
                })?;
                (n, Some(ver))
            }
            None => (spec, None),
        };
        check_name(name)?;
        Ok(Self {
            name: name.to_string(),
            version,
        })
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.version {
            Some(v) => write!(f, "{}@{v}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Registry names must stay safe as directory names.
fn check_name(name: &str) -> Result<(), Error> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        && !name.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(Error::Registry(format!(
            "invalid model name {name:?} (use ASCII letters, digits, '-', '_', '.')"
        )))
    }
}

/// Listing entry for one registered model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRecord {
    /// Registry name.
    pub name: String,
    /// Versions present on disk, ascending.
    pub versions: Vec<u32>,
    /// Version the latest-pointer designates.
    pub latest: Option<u32>,
}

/// A directory of versioned model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Opens (without creating) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// Opens the default registry (`results/models/`, or the
    /// `LIBRA_MODELS_DIR` / `LIBRA_RESULTS_DIR` overrides).
    pub fn open_default() -> Self {
        Self::open(libra_util::paths::models_root())
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn version_path(&self, name: &str, version: u32) -> PathBuf {
        self.model_dir(name)
            .join(format!("v{version}.{ARTIFACT_EXT}"))
    }

    /// Versions of `name` present on disk, ascending. Empty if the model
    /// directory does not exist.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, Error> {
        check_name(name)?;
        let dir = self.model_dir(name);
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Error::Io(format!("{}: {e}", dir.display()))),
        };
        let mut versions = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(e.to_string()))?;
            let file = entry.file_name();
            let file = file.to_string_lossy();
            if let Some(ver) = file
                .strip_prefix('v')
                .and_then(|rest| rest.strip_suffix(&format!(".{ARTIFACT_EXT}")))
                .and_then(|v| v.parse::<u32>().ok())
            {
                versions.push(ver);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Version the latest-pointer of `name` designates, if any.
    pub fn latest(&self, name: &str) -> Result<Option<u32>, Error> {
        check_name(name)?;
        let path = self.model_dir(name).join(LATEST_FILE);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let ver: u32 = text.trim().parse().map_err(|_| {
                    Error::Registry(format!("corrupt latest-pointer {}", path.display()))
                })?;
                Ok(Some(ver))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Error::Io(format!("{}: {e}", path.display()))),
        }
    }

    /// Resolves a spec to the artifact path it denotes (the file is
    /// guaranteed to exist on success).
    pub fn resolve(&self, spec: &ModelSpec) -> Result<(u32, PathBuf), Error> {
        let version = match spec.version {
            Some(v) => v,
            None => match self.latest(&spec.name)? {
                Some(v) => v,
                // Tolerate a missing pointer file: fall back to the
                // highest version on disk.
                None => self.versions(&spec.name)?.last().copied().ok_or_else(|| {
                    Error::Registry(format!(
                        "no model named {:?} in {}",
                        spec.name,
                        self.root.display()
                    ))
                })?,
            },
        };
        let path = self.version_path(&spec.name, version);
        if !path.is_file() {
            return Err(Error::Registry(format!(
                "{spec} not found ({})",
                path.display()
            )));
        }
        Ok((version, path))
    }

    /// Loads and checksum-verifies the artifact a spec denotes.
    pub fn load(&self, spec: &ModelSpec) -> Result<(u32, ModelArtifact), Error> {
        let (version, path) = self.resolve(spec)?;
        Ok((version, ModelArtifact::read(path)?))
    }

    /// Saves an artifact under `name` at the next free version and
    /// repoints `LATEST`. Returns the allocated version number.
    pub fn save(&self, name: &str, artifact: &ModelArtifact) -> Result<u32, Error> {
        check_name(name)?;
        let version = self.versions(name)?.last().copied().unwrap_or(0) + 1;
        let path = self.version_path(name, version);
        artifact.write(&path)?;
        let latest = self.model_dir(name).join(LATEST_FILE);
        std::fs::write(&latest, format!("{version}\n"))
            .map_err(|e| Error::Io(format!("{}: {e}", latest.display())))?;
        Ok(version)
    }

    /// Lists every registered model, sorted by name.
    pub fn list(&self) -> Result<Vec<ModelRecord>, Error> {
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Error::Io(format!("{}: {e}", self.root.display()))),
        };
        let mut records = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(e.to_string()))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if check_name(&name).is_err() {
                continue;
            }
            let versions = self.versions(&name)?;
            if versions.is_empty() {
                continue;
            }
            let latest = self.latest(&name)?;
            records.push(ModelRecord {
                name,
                versions,
                latest,
            });
        }
        records.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(records)
    }
}

/// Polls a registry name for new versions — the publish hook a serving
/// process uses to pick up models saved mid-traffic.
///
/// The watcher remembers the last version it reported and returns a
/// loaded artifact only when the resolved version *changes*, so callers
/// can poll cheaply on every batch boundary: steady state is one
/// latest-pointer read, no artifact I/O.
#[derive(Debug)]
pub struct RegistryWatcher {
    registry: ModelRegistry,
    spec: ModelSpec,
    seen: Option<u32>,
}

impl RegistryWatcher {
    /// Watches `name` (always following the latest-pointer) in `registry`.
    pub fn new(registry: ModelRegistry, name: &str) -> Result<Self, Error> {
        check_name(name)?;
        Ok(Self {
            registry,
            spec: ModelSpec {
                name: name.to_string(),
                version: None,
            },
            seen: None,
        })
    }

    /// Watches `name` with `version` already marked seen — the
    /// constructor for a service that loaded `version` itself and only
    /// wants to hear about *newer* publications.
    pub fn starting_at(registry: ModelRegistry, name: &str, version: u32) -> Result<Self, Error> {
        let mut watcher = Self::new(registry, name)?;
        watcher.seen = Some(version);
        Ok(watcher)
    }

    /// Name being watched.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Version last reported by [`poll`](Self::poll), if any.
    pub fn seen(&self) -> Option<u32> {
        self.seen
    }

    /// Returns the newly published `(version, artifact)` when the
    /// latest version differs from the last one reported; `Ok(None)`
    /// while nothing changed (including while the model does not exist
    /// yet — a watcher may start before the first save).
    pub fn poll(&mut self) -> Result<Option<(u32, ModelArtifact)>, Error> {
        let version = match self.registry.latest(&self.spec.name)? {
            Some(v) => v,
            None => match self.registry.versions(&self.spec.name)?.last().copied() {
                Some(v) => v,
                None => return Ok(None),
            },
        };
        if self.seen == Some(version) {
            return Ok(None);
        }
        let (loaded_version, artifact) = self.registry.load(&ModelSpec {
            name: self.spec.name.clone(),
            version: Some(version),
        })?;
        self.seen = Some(loaded_version);
        Ok(Some((loaded_version, artifact)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactMeta, ModelPayload};
    use crate::flat::FlatForest;
    use libra_ml::{Dataset, ForestConfig, RandomForest};
    use libra_util::rng::rng_from_seed;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("libra-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn artifact(seed: u64) -> ModelArtifact {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..45 {
            let c = i % 3;
            features.push(vec![c as f64 + (i % 4) as f64 * 0.05, (i % 6) as f64]);
            labels.push(c);
        }
        let data = Dataset::new(features, labels, 3, vec!["x".into(), "y".into()]);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 4,
            ..Default::default()
        });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        ModelArtifact {
            meta: ArtifactMeta {
                name: "reg-test".into(),
                feature_names: vec!["x".into(), "y".into()],
                class_labels: vec!["BA".into(), "RA".into(), "NA".into()],
                train_seed: seed,
                train_rows: 45,
                notes: String::new(),
            },
            payload: ModelPayload::Forest(FlatForest::compile(&rf)),
        }
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            ModelSpec::parse("ba-forest").unwrap(),
            ModelSpec {
                name: "ba-forest".into(),
                version: None
            }
        );
        assert_eq!(
            ModelSpec::parse("ba-forest@7").unwrap(),
            ModelSpec {
                name: "ba-forest".into(),
                version: Some(7)
            }
        );
        assert!(ModelSpec::parse("bad@x").is_err());
        assert!(ModelSpec::parse("").is_err());
        assert!(ModelSpec::parse("../escape").is_err());
        assert!(ModelSpec::parse(".hidden").is_err());
    }

    #[test]
    fn save_load_and_versioning() {
        let dir = tmpdir("slv");
        let reg = ModelRegistry::open(&dir);
        let a1 = artifact(1);
        let a2 = artifact(2);
        assert_eq!(reg.save("m", &a1).unwrap(), 1);
        assert_eq!(reg.save("m", &a2).unwrap(), 2);
        assert_eq!(reg.latest("m").unwrap(), Some(2));

        // Bare name follows the latest-pointer; @1 pins the old version.
        let (v, loaded) = reg.load(&ModelSpec::parse("m").unwrap()).unwrap();
        assert_eq!((v, &loaded), (2, &a2));
        let (v, loaded) = reg.load(&ModelSpec::parse("m@1").unwrap()).unwrap();
        assert_eq!((v, &loaded), (1, &a1));

        let records = reg.list().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0],
            ModelRecord {
                name: "m".into(),
                versions: vec![1, 2],
                latest: Some(2)
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_pointer_falls_back_to_highest_version() {
        let dir = tmpdir("fallback");
        let reg = ModelRegistry::open(&dir);
        reg.save("m", &artifact(3)).unwrap();
        std::fs::remove_file(dir.join("m").join(LATEST_FILE)).unwrap();
        let (v, _) = reg.load(&ModelSpec::parse("m").unwrap()).unwrap();
        assert_eq!(v, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_model_is_a_registry_error() {
        let dir = tmpdir("unknown");
        let reg = ModelRegistry::open(&dir);
        assert!(matches!(
            reg.load(&ModelSpec::parse("nope").unwrap()),
            Err(Error::Registry(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watcher_reports_only_version_changes() {
        let dir = tmpdir("watch");
        let reg = ModelRegistry::open(&dir);
        let mut watcher = RegistryWatcher::new(reg.clone(), "m").unwrap();

        // Nothing saved yet: quiet, not an error.
        assert!(watcher.poll().unwrap().is_none());
        assert_eq!(watcher.seen(), None);

        reg.save("m", &artifact(1)).unwrap();
        let (v, _) = watcher.poll().unwrap().expect("first version visible");
        assert_eq!(v, 1);
        // Unchanged registry: steady-state polls stay quiet.
        assert!(watcher.poll().unwrap().is_none());
        assert!(watcher.poll().unwrap().is_none());

        reg.save("m", &artifact(2)).unwrap();
        let (v, a) = watcher.poll().unwrap().expect("new version visible");
        assert_eq!(v, 2);
        assert_eq!(a, artifact(2));
        assert_eq!(watcher.seen(), Some(2));
        assert!(watcher.poll().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_store_file_is_reported_on_load() {
        let dir = tmpdir("corrupt");
        let reg = ModelRegistry::open(&dir);
        reg.save("m", &artifact(4)).unwrap();
        let path = dir.join("m").join(format!("v1.{ARTIFACT_EXT}"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            reg.load(&ModelSpec::parse("m").unwrap()),
            Err(Error::ChecksumMismatch { .. }) | Err(Error::Payload(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
