//! On-disk model registry with `name@version` resolution.
//!
//! Layout under the registry root (default `results/models/`, overridable
//! via the `LIBRA_MODELS_DIR` environment variable):
//!
//! ```text
//! results/models/
//!   ba-forest/
//!     v1.libra
//!     v2.libra
//!     LATEST        # text file holding "2"
//! ```
//!
//! Saving a model allocates the next version number and repoints
//! `LATEST`. A [`ModelSpec`] reference like `ba-forest@1` pins a version;
//! bare `ba-forest` follows the latest-pointer. Every load re-verifies
//! the artifact checksum, so a corrupted file in the store is reported,
//! never served.
//!
//! Publication is crash-safe: both the artifact bytes and the `LATEST`
//! pointer are written to a `.tmp` sibling and renamed into place, so a
//! publisher crash (or a concurrent reader) can only observe the store
//! before or after a publication, never a torn file. For chaos testing,
//! a registry can be armed with an [`ArtifactFault`] that deterministically
//! damages artifact bytes *at load* — exercising exactly the read-side
//! validation a real half-dead disk would hit.

use crate::artifact::{atomic_write, Error, ModelArtifact};
use libra_obs as obs;
use libra_util::rng::{derive_seed, derive_seed_index, SplitMix64};
use std::path::{Path, PathBuf};

/// Extension used for artifact files in the registry.
pub const ARTIFACT_EXT: &str = "libra";

/// Name of the latest-pointer file inside each model directory.
/// Latest-pointer file name inside a model directory. Public because
/// rollback tooling (and the watcher edge-case tests) repoint it
/// directly — the registry treats any well-formed pointer as truth.
pub const LATEST_FILE: &str = "LATEST";

/// A parsed model reference: `name` or `name@version`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Registry name of the model.
    pub name: String,
    /// Pinned version, or `None` to follow the latest-pointer.
    pub version: Option<u32>,
}

impl ModelSpec {
    /// Parses `"name"` or `"name@3"`.
    pub fn parse(spec: &str) -> Result<Self, Error> {
        let (name, version) = match spec.split_once('@') {
            Some((n, v)) => {
                let ver: u32 = v.parse().map_err(|_| {
                    Error::Registry(format!("bad version {v:?} in model spec {spec:?}"))
                })?;
                (n, Some(ver))
            }
            None => (spec, None),
        };
        check_name(name)?;
        Ok(Self {
            name: name.to_string(),
            version,
        })
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.version {
            Some(v) => write!(f, "{}@{v}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Registry names must stay safe as directory names.
fn check_name(name: &str) -> Result<(), Error> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        && !name.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(Error::Registry(format!(
            "invalid model name {name:?} (use ASCII letters, digits, '-', '_', '.')"
        )))
    }
}

/// Listing entry for one registered model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRecord {
    /// Registry name.
    pub name: String,
    /// Versions present on disk, ascending.
    pub versions: Vec<u32>,
    /// Version the latest-pointer designates.
    pub latest: Option<u32>,
}

/// Deterministic artifact read-fault injection — the chaos hook.
///
/// When armed on a [`ModelRegistry`], every artifact load first rolls a
/// fault lottery whose RNG stream is derived from
/// `(seed, model name, version)` — a pure function of the load's
/// identity, so a chaos run damages the *same* loads at any thread or
/// shard count. A fault either flips one payload byte (surfacing as
/// [`Error::ChecksumMismatch`]) or truncates the tail (surfacing as
/// [`Error::Truncated`]); the on-disk file is never touched, only the
/// in-memory bytes, so the next retry of the same load fails the same
/// way until the plan is disarmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactFault {
    /// Stream seed for the fault lottery.
    pub seed: u64,
    /// Per-mille probability a load sees a flipped payload byte.
    pub corrupt_per_mille: u16,
    /// Per-mille probability a load sees a truncated file.
    pub truncate_per_mille: u16,
}

impl ArtifactFault {
    /// Applies the lottery for one `(name, version)` load to `bytes`.
    /// Returns the fault kind applied, if any.
    pub fn mangle(&self, name: &str, version: u32, bytes: &mut Vec<u8>) -> Option<&'static str> {
        let stream = derive_seed_index(derive_seed(self.seed, name), u64::from(version));
        let mut rng = SplitMix64::new(derive_seed(stream, "registry.fault"));
        let roll = rng.next_u64() % 1000;
        let corrupt = u64::from(self.corrupt_per_mille);
        let truncate = u64::from(self.truncate_per_mille);
        if roll < corrupt {
            if !bytes.is_empty() {
                let at = (rng.next_u64() as usize) % bytes.len();
                bytes[at] ^= 0x5A;
            }
            Some("corrupt")
        } else if roll < corrupt + truncate {
            bytes.truncate(bytes.len() / 2);
            Some("truncate")
        } else {
            None
        }
    }
}

/// A directory of versioned model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
    read_fault: Option<ArtifactFault>,
}

impl ModelRegistry {
    /// Opens (without creating) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            read_fault: None,
        }
    }

    /// Arms deterministic read-fault injection on every subsequent
    /// [`load`](Self::load) through this handle (clones inherit it).
    pub fn with_read_fault(mut self, fault: ArtifactFault) -> Self {
        self.read_fault = Some(fault);
        self
    }

    /// Opens the default registry (`results/models/`, or the
    /// `LIBRA_MODELS_DIR` / `LIBRA_RESULTS_DIR` overrides).
    pub fn open_default() -> Self {
        Self::open(libra_util::paths::models_root())
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn version_path(&self, name: &str, version: u32) -> PathBuf {
        self.model_dir(name)
            .join(format!("v{version}.{ARTIFACT_EXT}"))
    }

    /// Versions of `name` present on disk, ascending. Empty if the model
    /// directory does not exist.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, Error> {
        check_name(name)?;
        let dir = self.model_dir(name);
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Error::Io(format!("{}: {e}", dir.display()))),
        };
        let mut versions = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(e.to_string()))?;
            let file = entry.file_name();
            let file = file.to_string_lossy();
            if let Some(ver) = file
                .strip_prefix('v')
                .and_then(|rest| rest.strip_suffix(&format!(".{ARTIFACT_EXT}")))
                .and_then(|v| v.parse::<u32>().ok())
            {
                versions.push(ver);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Version the latest-pointer of `name` designates, if any.
    pub fn latest(&self, name: &str) -> Result<Option<u32>, Error> {
        check_name(name)?;
        let path = self.model_dir(name).join(LATEST_FILE);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let ver: u32 = text.trim().parse().map_err(|_| {
                    Error::Registry(format!("corrupt latest-pointer {}", path.display()))
                })?;
                Ok(Some(ver))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Error::Io(format!("{}: {e}", path.display()))),
        }
    }

    /// Resolves a spec to the artifact path it denotes (the file is
    /// guaranteed to exist on success).
    pub fn resolve(&self, spec: &ModelSpec) -> Result<(u32, PathBuf), Error> {
        let version = match spec.version {
            Some(v) => v,
            None => match self.latest(&spec.name)? {
                Some(v) => v,
                // Tolerate a missing pointer file: fall back to the
                // highest version on disk.
                None => self.versions(&spec.name)?.last().copied().ok_or_else(|| {
                    Error::Registry(format!(
                        "no model named {:?} in {}",
                        spec.name,
                        self.root.display()
                    ))
                })?,
            },
        };
        let path = self.version_path(&spec.name, version);
        if !path.is_file() {
            return Err(Error::Registry(format!(
                "{spec} not found ({})",
                path.display()
            )));
        }
        Ok((version, path))
    }

    /// Loads and checksum-verifies the artifact a spec denotes. An
    /// armed [`ArtifactFault`] damages the bytes between disk and
    /// validation; the `registry.fault.injected` counter records hits.
    pub fn load(&self, spec: &ModelSpec) -> Result<(u32, ModelArtifact), Error> {
        let (version, path) = self.resolve(spec)?;
        let mut bytes =
            std::fs::read(&path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
        if let Some(fault) = &self.read_fault {
            if fault.mangle(&spec.name, version, &mut bytes).is_some() {
                obs::counter("registry.fault.injected", 1);
            }
        }
        Ok((version, ModelArtifact::from_bytes(&bytes)?))
    }

    /// Saves an artifact under `name` at the next free version and
    /// repoints `LATEST`. Returns the allocated version number.
    ///
    /// Both writes are temp-file + rename, and the pointer moves only
    /// after the artifact is fully durable — a crash between the two
    /// leaves an unpublished (invisible) version file, never a pointer
    /// at a torn artifact.
    pub fn save(&self, name: &str, artifact: &ModelArtifact) -> Result<u32, Error> {
        check_name(name)?;
        let version = self.versions(name)?.last().copied().unwrap_or(0) + 1;
        let path = self.version_path(name, version);
        artifact.write(&path)?;
        self.write_pointer(name, version)?;
        Ok(version)
    }

    /// Atomically repoints `LATEST` at an existing version — the
    /// rollback/promotion primitive. Fails if the target version has no
    /// artifact on disk, so the pointer can never dangle by this path.
    pub fn repoint_latest(&self, name: &str, version: u32) -> Result<(), Error> {
        check_name(name)?;
        let path = self.version_path(name, version);
        if !path.is_file() {
            return Err(Error::Registry(format!(
                "cannot repoint {name} to v{version}: {} missing",
                path.display()
            )));
        }
        self.write_pointer(name, version)
    }

    fn write_pointer(&self, name: &str, version: u32) -> Result<(), Error> {
        let latest = self.model_dir(name).join(LATEST_FILE);
        atomic_write(&latest, format!("{version}\n").as_bytes())
    }

    /// Lists every registered model, sorted by name.
    pub fn list(&self) -> Result<Vec<ModelRecord>, Error> {
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Error::Io(format!("{}: {e}", self.root.display()))),
        };
        let mut records = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(e.to_string()))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if check_name(&name).is_err() {
                continue;
            }
            let versions = self.versions(&name)?;
            if versions.is_empty() {
                continue;
            }
            let latest = self.latest(&name)?;
            records.push(ModelRecord {
                name,
                versions,
                latest,
            });
        }
        records.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(records)
    }
}

/// Polls a registry name for new versions — the publish hook a serving
/// process uses to pick up models saved mid-traffic.
///
/// The watcher remembers the last version it reported and returns a
/// loaded artifact only when the resolved version *changes*, so callers
/// can poll cheaply on every batch boundary: steady state is one
/// latest-pointer read, no artifact I/O.
#[derive(Debug)]
pub struct RegistryWatcher {
    registry: ModelRegistry,
    spec: ModelSpec,
    seen: Option<u32>,
    last_error: Option<String>,
    deferred: u64,
}

impl RegistryWatcher {
    /// Watches `name` (always following the latest-pointer) in `registry`.
    pub fn new(registry: ModelRegistry, name: &str) -> Result<Self, Error> {
        check_name(name)?;
        Ok(Self {
            registry,
            spec: ModelSpec {
                name: name.to_string(),
                version: None,
            },
            seen: None,
            last_error: None,
            deferred: 0,
        })
    }

    /// Watches `name` with `version` already marked seen — the
    /// constructor for a service that loaded `version` itself and only
    /// wants to hear about *newer* publications.
    pub fn starting_at(registry: ModelRegistry, name: &str, version: u32) -> Result<Self, Error> {
        let mut watcher = Self::new(registry, name)?;
        watcher.seen = Some(version);
        Ok(watcher)
    }

    /// Name being watched.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Version last reported by [`poll`](Self::poll), if any.
    pub fn seen(&self) -> Option<u32> {
        self.seen
    }

    /// Last error a poll absorbed (cleared by the next clean poll).
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// Polls deferred so far because of absorbed registry damage.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Returns the newly published `(version, artifact)` when the
    /// latest version differs from the last one reported; `None` while
    /// nothing changed (including while the model does not exist yet —
    /// a watcher may start before the first save).
    ///
    /// Transient registry damage — an unreadable or half-written
    /// pointer, a missing/truncated/corrupt artifact behind the pointer
    /// — never surfaces to the serving loop: the poll reports nothing,
    /// leaves [`seen`](Self::seen) unchanged, records the error for
    /// [`last_error`](Self::last_error), bumps the
    /// `registry.poll.deferred` counter, and the *next* poll retries.
    /// The service simply keeps serving the model it already holds.
    pub fn poll(&mut self) -> Option<(u32, ModelArtifact)> {
        match self.try_poll() {
            Ok(update) => {
                self.last_error = None;
                update
            }
            Err(e) => {
                self.deferred += 1;
                self.last_error = Some(e.to_string());
                obs::counter("registry.poll.deferred", 1);
                None
            }
        }
    }

    fn try_poll(&mut self) -> Result<Option<(u32, ModelArtifact)>, Error> {
        let version = match self.registry.latest(&self.spec.name)? {
            Some(v) => v,
            None => match self.registry.versions(&self.spec.name)?.last().copied() {
                Some(v) => v,
                None => return Ok(None),
            },
        };
        if self.seen == Some(version) {
            return Ok(None);
        }
        let (loaded_version, artifact) = self.registry.load(&ModelSpec {
            name: self.spec.name.clone(),
            version: Some(version),
        })?;
        self.seen = Some(loaded_version);
        Ok(Some((loaded_version, artifact)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactMeta, ModelPayload};
    use crate::flat::FlatForest;
    use libra_ml::{Dataset, ForestConfig, RandomForest};
    use libra_util::rng::rng_from_seed;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("libra-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn artifact(seed: u64) -> ModelArtifact {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..45 {
            let c = i % 3;
            features.push(vec![c as f64 + (i % 4) as f64 * 0.05, (i % 6) as f64]);
            labels.push(c);
        }
        let data = Dataset::new(features, labels, 3, vec!["x".into(), "y".into()]);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 4,
            ..Default::default()
        });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        ModelArtifact {
            meta: ArtifactMeta {
                name: "reg-test".into(),
                feature_names: vec!["x".into(), "y".into()],
                class_labels: vec!["BA".into(), "RA".into(), "NA".into()],
                train_seed: seed,
                train_rows: 45,
                notes: String::new(),
            },
            payload: ModelPayload::Forest(FlatForest::compile(&rf)),
        }
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            ModelSpec::parse("ba-forest").unwrap(),
            ModelSpec {
                name: "ba-forest".into(),
                version: None
            }
        );
        assert_eq!(
            ModelSpec::parse("ba-forest@7").unwrap(),
            ModelSpec {
                name: "ba-forest".into(),
                version: Some(7)
            }
        );
        assert!(ModelSpec::parse("bad@x").is_err());
        assert!(ModelSpec::parse("").is_err());
        assert!(ModelSpec::parse("../escape").is_err());
        assert!(ModelSpec::parse(".hidden").is_err());
    }

    #[test]
    fn save_load_and_versioning() {
        let dir = tmpdir("slv");
        let reg = ModelRegistry::open(&dir);
        let a1 = artifact(1);
        let a2 = artifact(2);
        assert_eq!(reg.save("m", &a1).unwrap(), 1);
        assert_eq!(reg.save("m", &a2).unwrap(), 2);
        assert_eq!(reg.latest("m").unwrap(), Some(2));

        // Bare name follows the latest-pointer; @1 pins the old version.
        let (v, loaded) = reg.load(&ModelSpec::parse("m").unwrap()).unwrap();
        assert_eq!((v, &loaded), (2, &a2));
        let (v, loaded) = reg.load(&ModelSpec::parse("m@1").unwrap()).unwrap();
        assert_eq!((v, &loaded), (1, &a1));

        let records = reg.list().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0],
            ModelRecord {
                name: "m".into(),
                versions: vec![1, 2],
                latest: Some(2)
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_pointer_falls_back_to_highest_version() {
        let dir = tmpdir("fallback");
        let reg = ModelRegistry::open(&dir);
        reg.save("m", &artifact(3)).unwrap();
        std::fs::remove_file(dir.join("m").join(LATEST_FILE)).unwrap();
        let (v, _) = reg.load(&ModelSpec::parse("m").unwrap()).unwrap();
        assert_eq!(v, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_model_is_a_registry_error() {
        let dir = tmpdir("unknown");
        let reg = ModelRegistry::open(&dir);
        assert!(matches!(
            reg.load(&ModelSpec::parse("nope").unwrap()),
            Err(Error::Registry(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watcher_reports_only_version_changes() {
        let dir = tmpdir("watch");
        let reg = ModelRegistry::open(&dir);
        let mut watcher = RegistryWatcher::new(reg.clone(), "m").unwrap();

        // Nothing saved yet: quiet, not an error.
        assert!(watcher.poll().is_none());
        assert_eq!(watcher.seen(), None);

        reg.save("m", &artifact(1)).unwrap();
        let (v, _) = watcher.poll().expect("first version visible");
        assert_eq!(v, 1);
        // Unchanged registry: steady-state polls stay quiet.
        assert!(watcher.poll().is_none());
        assert!(watcher.poll().is_none());

        reg.save("m", &artifact(2)).unwrap();
        let (v, a) = watcher.poll().expect("new version visible");
        assert_eq!(v, 2);
        assert_eq!(a, artifact(2));
        assert_eq!(watcher.seen(), Some(2));
        assert!(watcher.poll().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn publication_leaves_no_temp_files_and_pointer_is_complete() {
        let dir = tmpdir("atomic");
        let reg = ModelRegistry::open(&dir);
        reg.save("m", &artifact(5)).unwrap();
        reg.save("m", &artifact(6)).unwrap();
        let names: Vec<String> = std::fs::read_dir(dir.join("m"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "temp files left behind: {names:?}"
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("m").join(LATEST_FILE)).unwrap(),
            "2\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repoint_latest_moves_the_pointer_but_refuses_to_dangle() {
        let dir = tmpdir("repoint");
        let reg = ModelRegistry::open(&dir);
        reg.save("m", &artifact(1)).unwrap();
        reg.save("m", &artifact(2)).unwrap();

        reg.repoint_latest("m", 1).unwrap();
        assert_eq!(reg.latest("m").unwrap(), Some(1));
        let (v, _) = reg.load(&ModelSpec::parse("m").unwrap()).unwrap();
        assert_eq!(v, 1);

        // No v9 artifact on disk: the pointer must not move.
        assert!(matches!(
            reg.repoint_latest("m", 9),
            Err(Error::Registry(_))
        ));
        assert_eq!(reg.latest("m").unwrap(), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_read_fault_damages_loads_deterministically() {
        let dir = tmpdir("readfault");
        let clean = ModelRegistry::open(&dir);
        clean.save("m", &artifact(7)).unwrap();

        // Certain corruption: every load of the same (name, version)
        // fails identically, while the on-disk file stays intact.
        let faulty = clean.clone().with_read_fault(ArtifactFault {
            seed: 0xFA_17,
            corrupt_per_mille: 1000,
            truncate_per_mille: 0,
        });
        let spec = ModelSpec::parse("m").unwrap();
        let first = faulty.load(&spec);
        let second = faulty.load(&spec);
        assert!(first.is_err(), "flipped byte must fail validation");
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        assert!(clean.load(&spec).is_ok(), "disk bytes were never touched");

        // Certain truncation surfaces through the length validation.
        let truncating = clean.clone().with_read_fault(ArtifactFault {
            seed: 0xFA_17,
            corrupt_per_mille: 0,
            truncate_per_mille: 1000,
        });
        assert!(matches!(
            truncating.load(&spec),
            Err(Error::Truncated { .. })
        ));

        // Zero rates: the armed registry behaves like a clean one.
        let quiet = clean.clone().with_read_fault(ArtifactFault {
            seed: 0xFA_17,
            corrupt_per_mille: 0,
            truncate_per_mille: 0,
        });
        assert!(quiet.load(&spec).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_store_file_is_reported_on_load() {
        let dir = tmpdir("corrupt");
        let reg = ModelRegistry::open(&dir);
        reg.save("m", &artifact(4)).unwrap();
        let path = dir.join("m").join(format!("v1.{ARTIFACT_EXT}"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            reg.load(&ModelSpec::parse("m").unwrap()),
            Err(Error::ChecksumMismatch { .. }) | Err(Error::Payload(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
