//! Flattened tree ensembles: struct-of-arrays node tables.
//!
//! `libra-ml` trees are recursive `Box<Node>` structures — ideal for
//! fitting, terrible for serving: every split is a pointer chase to a
//! fresh heap allocation, and every prediction allocates a probability
//! vector per tree. The flattened engines here compile an ensemble once
//! into contiguous struct-of-arrays node tables (feature index,
//! threshold, left/right, leaf blocks), then serve batches with zero
//! allocations per row. The [`crate::blocked`] engines recompile these
//! tables further into breadth-first arenas for branchless blocked
//! evaluation.
//!
//! **One predict surface.** Since the engine-API redesign the only
//! prediction entry points are the [`Classifier`] trait methods
//! (`predict_one` / `predict_view` / `predict_batch_into` over
//! [`FrameView`]); the former inherent `predict_batch`-style duplicates
//! over `&[Vec<f64>]` are gone. Probability/score inspection keeps the
//! inherent `predict_proba_*` / `decision_scores_*` methods.
//!
//! **Bitwise identity.** The engines reproduce the recursive
//! implementations exactly, not approximately: leaf probabilities are
//! copied verbatim, per-tree contributions accumulate in the same order
//! with the same `f64` operations, and argmax tie-breaking matches
//! (`Iterator::max_by` keeps the *last* maximal element). Property tests
//! in `tests/props.rs` enforce this for randomly generated forests.

use crate::kernel::argmax;
use libra_ml::tree::DumpNode;
use libra_ml::{Classifier, DumpRegNode, FrameView, GbdtClassifier, RandomForest};
use libra_obs as obs;
use serde::{Deserialize, Serialize};

/// Sentinel feature index marking a leaf node.
pub(crate) const LEAF: u32 = u32::MAX;

/// One classification tree in struct-of-arrays form.
///
/// Node `i` is a leaf when `feature[i] == LEAF`; its class distribution
/// is the `left[i]`-th block of `leaf_probs`. Otherwise
/// `row[feature[i]] <= threshold[i]` descends to `left[i]`, else
/// `right[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct FlatTree {
    pub(crate) feature: Vec<u32>,
    pub(crate) threshold: Vec<f64>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    /// Leaf class distributions, `n_leaves × n_classes`, contiguous.
    pub(crate) leaf_probs: Vec<f64>,
}

impl FlatTree {
    pub(crate) fn from_dump(dump: &[DumpNode], n_classes: usize) -> Self {
        assert!(!dump.is_empty(), "empty tree dump");
        assert!(n_classes >= 1, "tree must have at least one class");
        let mut t = Self {
            feature: Vec::with_capacity(dump.len()),
            threshold: Vec::with_capacity(dump.len()),
            left: Vec::with_capacity(dump.len()),
            right: Vec::with_capacity(dump.len()),
            leaf_probs: Vec::new(),
        };
        for node in dump {
            match node {
                DumpNode::Leaf { probs } => {
                    assert_eq!(probs.len(), n_classes, "leaf arity mismatch");
                    let leaf_id = (t.leaf_probs.len() / n_classes) as u32;
                    t.feature.push(LEAF);
                    t.threshold.push(0.0);
                    t.left.push(leaf_id);
                    t.right.push(0);
                    t.leaf_probs.extend_from_slice(probs);
                }
                DumpNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let f = u32::try_from(*feature).expect("feature index fits u32");
                    assert!(f != LEAF, "feature index collides with leaf sentinel");
                    t.feature.push(f);
                    t.threshold.push(*threshold);
                    t.left
                        .push(u32::try_from(*left).expect("node index fits u32"));
                    t.right
                        .push(u32::try_from(*right).expect("node index fits u32"));
                }
            }
        }
        t
    }

    /// Walks the node table to the leaf block for `row`.
    #[inline]
    fn leaf_probs(&self, row: &[f64], n_classes: usize) -> &[f64] {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                let at = self.left[i] as usize * n_classes;
                return &self.leaf_probs[at..at + n_classes];
            }
            i = if row[f as usize] <= self.threshold[i] {
                self.left[i]
            } else {
                self.right[i]
            } as usize;
        }
    }

    fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Structural sanity check for artifacts loaded from disk: child and
    /// leaf indices in bounds, features within the declared schema.
    fn validate(&self, n_classes: usize, n_features: usize) -> Result<(), String> {
        let n = self.feature.len();
        if n == 0 || self.threshold.len() != n || self.left.len() != n || self.right.len() != n {
            return Err("inconsistent node table lengths".into());
        }
        if n_classes == 0 || !self.leaf_probs.len().is_multiple_of(n_classes) {
            return Err("leaf block not a multiple of n_classes".into());
        }
        let n_leaves = (self.leaf_probs.len() / n_classes) as u32;
        for i in 0..n {
            if self.feature[i] == LEAF {
                if self.left[i] >= n_leaves {
                    return Err(format!("leaf index {} out of bounds", self.left[i]));
                }
            } else {
                if self.feature[i] as usize >= n_features {
                    return Err(format!("feature {} outside schema", self.feature[i]));
                }
                // Children must point forward (the dump is pre-order), which
                // also rules out walk cycles.
                if self.left[i] as usize <= i
                    || self.right[i] as usize <= i
                    || self.left[i] as usize >= n
                    || self.right[i] as usize >= n
                {
                    return Err(format!("bad child links at node {i}"));
                }
            }
        }
        Ok(())
    }
}

/// A random forest compiled for serving.
///
/// Compiled once from a fitted [`RandomForest`] via [`FlatForest::compile`];
/// prediction is bitwise identical to the recursive forest, and the
/// [`Classifier::predict_batch_into`] batch path serves whole frame
/// views without allocating per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatForest {
    pub(crate) n_classes: usize,
    pub(crate) n_features: usize,
    pub(crate) trees: Vec<FlatTree>,
    /// Gini importances carried over from the fitted forest (Table 3).
    pub(crate) importances: Vec<f64>,
}

impl FlatForest {
    /// Compiles a fitted forest into node tables. Panics on an unfitted
    /// forest.
    pub fn compile(rf: &RandomForest) -> Self {
        assert!(rf.n_trees() > 0, "forest not fitted");
        let n_classes = rf.n_classes();
        let trees = rf
            .trees()
            .iter()
            .map(|t| FlatTree::from_dump(&t.dump_nodes(), n_classes))
            .collect();
        Self {
            n_classes,
            n_features: rf.n_features(),
            trees,
            importances: rf.feature_importances(),
        }
    }

    /// The compiled per-tree tables (blocked-engine recompilation).
    pub(crate) fn flat_trees(&self) -> &[FlatTree] {
        &self.trees
    }

    /// Mean class-probability vote over all trees, written into `out`
    /// (length `n_classes`) — the allocation-free core.
    ///
    /// The trailing normalization is the recursive forest's per-element
    /// `f64` division (a reciprocal multiply is *not* bitwise identical
    /// for tree counts that are not powers of two); single-tree forests
    /// skip it entirely, since `x / 1.0` is the identity.
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.n_classes, "output buffer arity");
        out.fill(0.0);
        for tree in &self.trees {
            let leaf = tree.leaf_probs(row, self.n_classes);
            for (p, q) in out.iter_mut().zip(leaf) {
                *p += q;
            }
        }
        if self.trees.len() > 1 {
            let n = self.trees.len() as f64;
            for p in out.iter_mut() {
                *p /= n;
            }
        }
    }

    /// Mean class-probability vote over all trees (allocating wrapper).
    pub fn predict_proba_one(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        self.predict_proba_into(row, &mut out);
        out
    }

    /// Iterates `(feature, threshold)` over every split node — model
    /// inspection for diagnostics and for bounding where the quantized
    /// blocked tables may diverge from the exact path.
    pub fn split_nodes(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.trees.iter().flat_map(|t| {
            t.feature
                .iter()
                .zip(&t.threshold)
                .filter(|(&f, _)| f != LEAF)
                .map(|(&f, &thr)| (f as usize, thr))
        })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features in the schema.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across all trees.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(FlatTree::n_nodes).sum()
    }

    /// Gini importances carried over from the fitted forest.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Structural sanity check for engines loaded from disk.
    pub fn validate(&self) -> Result<(), String> {
        if self.trees.is_empty() {
            return Err("forest has no trees".into());
        }
        if self.importances.len() != self.n_features {
            return Err("importances length mismatch".into());
        }
        for (i, tree) in self.trees.iter().enumerate() {
            tree.validate(self.n_classes, self.n_features)
                .map_err(|e| format!("tree {i}: {e}"))?;
        }
        Ok(())
    }
}

impl Classifier for FlatForest {
    fn predict_one(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba_one(row))
    }

    /// Batch prediction over a frame view: one scratch probability
    /// buffer (and the hoisted normalization decision) is reused across
    /// the whole batch, so serving allocates nothing per row.
    fn predict_batch_into(&self, data: &FrameView<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(data.len());
        let mut probs = vec![0.0; self.n_classes];
        // The traced loop is split out so the untraced serving path never
        // reads a clock or touches the collector.
        if obs::enabled() {
            obs::counter("infer.serve.batches", 1);
            obs::record_value("infer.serve.batch_rows", data.len() as u64);
            for row in data.rows() {
                let t0 = std::time::Instant::now();
                self.predict_proba_into(row, &mut probs);
                out.push(argmax(&probs));
                obs::record_wall("infer.serve.row_ns", t0.elapsed().as_nanos() as u64);
            }
        } else {
            for row in data.rows() {
                self.predict_proba_into(row, &mut probs);
                out.push(argmax(&probs));
            }
        }
    }
}

/// One regression tree in struct-of-arrays form (leaf value per node,
/// valid where `feature[i] == LEAF`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct FlatRegTree {
    pub(crate) feature: Vec<u32>,
    pub(crate) threshold: Vec<f64>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    pub(crate) value: Vec<f64>,
}

impl FlatRegTree {
    fn from_dump(dump: &[DumpRegNode]) -> Self {
        assert!(!dump.is_empty(), "empty tree dump");
        let mut t = Self {
            feature: Vec::with_capacity(dump.len()),
            threshold: Vec::with_capacity(dump.len()),
            left: Vec::with_capacity(dump.len()),
            right: Vec::with_capacity(dump.len()),
            value: Vec::with_capacity(dump.len()),
        };
        for node in dump {
            match node {
                DumpRegNode::Leaf { value } => {
                    t.feature.push(LEAF);
                    t.threshold.push(0.0);
                    t.left.push(0);
                    t.right.push(0);
                    t.value.push(*value);
                }
                DumpRegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let f = u32::try_from(*feature).expect("feature index fits u32");
                    assert!(f != LEAF, "feature index collides with leaf sentinel");
                    t.feature.push(f);
                    t.threshold.push(*threshold);
                    t.left
                        .push(u32::try_from(*left).expect("node index fits u32"));
                    t.right
                        .push(u32::try_from(*right).expect("node index fits u32"));
                    t.value.push(0.0);
                }
            }
        }
        t
    }

    #[inline]
    fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.value[i];
            }
            i = if row[f as usize] <= self.threshold[i] {
                self.left[i]
            } else {
                self.right[i]
            } as usize;
        }
    }

    fn validate(&self, n_features: usize) -> Result<(), String> {
        let n = self.feature.len();
        if n == 0
            || self.threshold.len() != n
            || self.left.len() != n
            || self.right.len() != n
            || self.value.len() != n
        {
            return Err("inconsistent node table lengths".into());
        }
        for i in 0..n {
            if self.feature[i] != LEAF {
                if self.feature[i] as usize >= n_features {
                    return Err(format!("feature {} outside schema", self.feature[i]));
                }
                if self.left[i] as usize <= i
                    || self.right[i] as usize <= i
                    || self.left[i] as usize >= n
                    || self.right[i] as usize >= n
                {
                    return Err(format!("bad child links at node {i}"));
                }
            }
        }
        Ok(())
    }
}

/// A gradient-boosted classifier compiled for serving (one flattened
/// booster per class, one-vs-rest). Bitwise identical to
/// [`GbdtClassifier`] decision scores and predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatGbdt {
    pub(crate) n_classes: usize,
    pub(crate) n_features: usize,
    pub(crate) learning_rate: f64,
    pub(crate) boosters: Vec<(f64, Vec<FlatRegTree>)>,
}

impl FlatGbdt {
    /// Compiles a fitted GBDT into node tables. `n_features` pins the
    /// feature schema (the recursive model does not record it). Panics
    /// on an unfitted model.
    pub fn compile(gbdt: &GbdtClassifier, n_features: usize) -> Self {
        let dumps = gbdt.dump_boosters();
        assert!(!dumps.is_empty(), "GBDT not fitted");
        let boosters = dumps
            .into_iter()
            .map(|(base, trees)| {
                (
                    base,
                    trees.iter().map(|t| FlatRegTree::from_dump(t)).collect(),
                )
            })
            .collect();
        Self {
            n_classes: gbdt.n_classes(),
            n_features,
            learning_rate: gbdt.learning_rate(),
            boosters,
        }
    }

    /// The compiled per-booster tables (blocked-engine recompilation).
    pub(crate) fn flat_boosters(&self) -> &[(f64, Vec<FlatRegTree>)] {
        &self.boosters
    }

    /// Per-class raw scores (log-odds) written into `out` (length
    /// `n_classes`) — the allocation-free core.
    pub fn decision_scores_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.boosters.len(), "output buffer arity");
        for (slot, (base, trees)) in out.iter_mut().zip(&self.boosters) {
            *slot = base + self.learning_rate * trees.iter().map(|t| t.predict(row)).sum::<f64>();
        }
    }

    /// Per-class raw scores (allocating wrapper).
    pub fn decision_scores(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.boosters.len()];
        self.decision_scores_into(row, &mut out);
        out
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features in the schema.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The shrinkage applied to every tree's contribution.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Number of trees per booster.
    pub fn n_trees(&self) -> usize {
        self.boosters.first().map_or(0, |(_, t)| t.len())
    }

    /// Total node count across all boosters.
    pub fn n_nodes(&self) -> usize {
        self.boosters
            .iter()
            .flat_map(|(_, trees)| trees.iter().map(|t| t.feature.len()))
            .sum()
    }

    /// Structural sanity check for engines loaded from disk.
    pub fn validate(&self) -> Result<(), String> {
        if self.boosters.is_empty() {
            return Err("GBDT has no boosters".into());
        }
        if self.boosters.len() != self.n_classes {
            return Err("booster count does not match n_classes".into());
        }
        if !self.learning_rate.is_finite() {
            return Err("non-finite learning rate".into());
        }
        for (c, (base, trees)) in self.boosters.iter().enumerate() {
            if !base.is_finite() {
                return Err(format!("booster {c}: non-finite base score"));
            }
            for (i, tree) in trees.iter().enumerate() {
                tree.validate(self.n_features)
                    .map_err(|e| format!("booster {c} tree {i}: {e}"))?;
            }
        }
        Ok(())
    }
}

impl Classifier for FlatGbdt {
    fn predict_one(&self, row: &[f64]) -> usize {
        argmax(&self.decision_scores(row))
    }

    /// Batch prediction over a frame view, reusing one score buffer —
    /// rows are borrowed slices of the backing frame, so serving
    /// allocates nothing per row.
    fn predict_batch_into(&self, data: &FrameView<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(data.len());
        let mut scores = vec![0.0; self.boosters.len()];
        // The traced loop is split out so the untraced serving path never
        // reads a clock or touches the collector.
        if obs::enabled() {
            obs::counter("infer.serve.batches", 1);
            obs::record_value("infer.serve.batch_rows", data.len() as u64);
            for row in data.rows() {
                let t0 = std::time::Instant::now();
                self.decision_scores_into(row, &mut scores);
                out.push(argmax(&scores));
                obs::record_wall("infer.serve.row_ns", t0.elapsed().as_nanos() as u64);
            }
        } else {
            for row in data.rows() {
                self.decision_scores_into(row, &mut scores);
                out.push(argmax(&scores));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_ml::{Dataset, ForestConfig, GbdtConfig};
    use libra_util::rng::rng_from_seed;

    fn blobs(n: usize, seed: u64, n_classes: usize) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % n_classes;
            features.push(vec![
                c as f64 * 3.0 + libra_util::rng::standard_normal(&mut rng),
                libra_util::rng::standard_normal(&mut rng),
            ]);
            labels.push(c);
        }
        Dataset::new(features, labels, n_classes, vec!["x".into(), "y".into()])
    }

    #[test]
    fn forest_flat_matches_recursive_bitwise() {
        let data = blobs(150, 1, 3);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 15,
            ..Default::default()
        });
        let mut rng = rng_from_seed(2);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        for row in data.rows() {
            // Bitwise: probabilities compare equal as full f64 vectors.
            assert_eq!(flat.predict_proba_one(row), rf.predict_proba_one(row));
            assert_eq!(flat.predict_one(row), rf.predict_one(row));
        }
        let per_row: Vec<usize> = data.rows().map(|r| rf.predict_one(r)).collect();
        assert_eq!(flat.predict_view(&data.view()), per_row);
        assert_eq!(flat.feature_importances(), rf.feature_importances());
        assert_eq!(flat.n_trees(), rf.n_trees());
        flat.validate().expect("compiled forest validates");
    }

    #[test]
    fn single_tree_forest_skips_normalization_bitwise() {
        // The hoisted normalization must stay bitwise identical to the
        // recursive forest's `p /= 1.0` on single-tree ensembles.
        let data = blobs(90, 2, 3);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 1,
            ..Default::default()
        });
        let mut rng = rng_from_seed(3);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        for row in data.rows() {
            let (rp, fp) = (rf.predict_proba_one(row), flat.predict_proba_one(row));
            for (a, b) in rp.iter().zip(fp.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(flat.predict_one(row), rf.predict_one(row));
        }
    }

    #[test]
    fn gbdt_flat_matches_recursive_bitwise() {
        let data = blobs(120, 3, 3);
        let mut g = GbdtClassifier::new(GbdtConfig {
            n_rounds: 12,
            ..Default::default()
        });
        g.fit(&data);
        let flat = FlatGbdt::compile(&g, 2);
        for row in data.rows() {
            assert_eq!(flat.decision_scores(row), g.decision_scores(row));
            assert_eq!(flat.predict_one(row), g.predict_one(row));
        }
        let per_row: Vec<usize> = data.rows().map(|r| g.predict_one(r)).collect();
        assert_eq!(flat.predict_view(&data.view()), per_row);
        flat.validate().expect("compiled GBDT validates");
    }

    #[test]
    fn batch_reuses_buffers_and_matches_per_row() {
        let data = blobs(60, 5, 2);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 8,
            ..Default::default()
        });
        let mut rng = rng_from_seed(6);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        let mut out = Vec::new();
        flat.predict_batch_into(&data.view(), &mut out);
        let per_row: Vec<usize> = data.rows().map(|r| flat.predict_one(r)).collect();
        assert_eq!(out, per_row);
        // Reuse the same output vector for a second, smaller batch.
        let first: Vec<usize> = (0..10).collect();
        flat.predict_batch_into(&data.select(&first), &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(out, per_row[..10]);
    }

    #[test]
    fn handles_infinite_features_like_recursive() {
        let data = Dataset::new(
            vec![
                vec![f64::NEG_INFINITY],
                vec![0.0],
                vec![f64::INFINITY],
                vec![1.0],
            ],
            vec![0, 0, 1, 1],
            2,
            vec!["tof".into()],
        );
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 5,
            ..Default::default()
        });
        let mut rng = rng_from_seed(7);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        for row in [[f64::NEG_INFINITY], [f64::INFINITY], [0.5], [-1e300]] {
            assert_eq!(flat.predict_one(&row), rf.predict_one(&row));
        }
    }

    #[test]
    fn split_nodes_exposes_every_split() {
        let data = blobs(80, 4, 2);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 4,
            ..Default::default()
        });
        let mut rng = rng_from_seed(5);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        let splits: Vec<(usize, f64)> = flat.split_nodes().collect();
        let leaves: usize = flat
            .trees
            .iter()
            .map(|t| t.feature.iter().filter(|&&f| f == LEAF).count())
            .sum();
        assert_eq!(splits.len() + leaves, flat.n_nodes());
        assert!(splits.iter().all(|&(f, _)| f < flat.n_features()));
    }

    #[test]
    fn validate_catches_corrupted_tables() {
        let data = blobs(60, 8, 2);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 3,
            ..Default::default()
        });
        let mut rng = rng_from_seed(9);
        rf.fit(&data, &mut rng);
        let mut flat = FlatForest::compile(&rf);
        flat.validate().expect("clean engine validates");
        // Point a split's feature outside the schema.
        let mut corrupted = false;
        'outer: for ti in 0..flat.trees.len() {
            for ni in 0..flat.trees[ti].feature.len() {
                if flat.trees[ti].feature[ni] != LEAF {
                    flat.trees[ti].feature[ni] = 999;
                    corrupted = true;
                    break 'outer;
                }
            }
        }
        assert!(corrupted, "expected at least one split node");
        assert!(flat.validate().is_err());
    }
}
