//! Breadth-first blocked tree arenas: the branchless inference engines.
//!
//! A [`BlockedForest`] / [`BlockedGbdt`] is recompiled from the flat
//! struct-of-arrays tables into one arena per ensemble, re-ordered
//! breadth-first so a level's nodes sit contiguously, with children
//! interleaved (`kids[2i]` / `kids[2i+1]`) for arithmetic child
//! selection and leaves self-looping so level-synchronous evaluation of
//! uneven trees needs no per-row bounds logic. Batches run through the
//! [`crate::kernel`] block kernels ([`crate::kernel::BLOCK`] rows at a
//! time); single rows use the same branchless step.
//!
//! The [`Exactness::Exact`] tables keep `f64` thresholds and are
//! **bitwise identical** to the recursive models (and therefore to the
//! flat engines): same leaf values, same accumulation order, same
//! division, same argmax tie-breaking. [`Exactness::Quantized`] stores
//! node thresholds as `f32` and compares in `f32` — an explicit opt-in
//! that may flip predictions only for feature values lying between a
//! threshold and its `f32` rounding.

use crate::engine::Exactness;
use crate::flat::{FlatForest, FlatGbdt, LEAF};
use crate::kernel::{self, argmax};
use libra_ml::{Classifier, FrameView};
use libra_obs as obs;

/// One ensemble's breadth-first node arena.
///
/// Shared by the forest and GBDT engines: per-tree roots and depth
/// bounds plus flat per-node tables. `kids` holds two entries per node;
/// leaves point both at themselves.
#[derive(Debug, Clone, Default)]
struct Arena {
    roots: Vec<u32>,
    steps: Vec<u32>,
    feature: Vec<u32>,
    thr: Vec<f64>,
    thr_q: Vec<f32>,
    kids: Vec<u32>,
}

impl Arena {
    /// Appends one tree in BFS order. `is_leaf`/`split` describe the
    /// source node table; `on_node` is called once per emitted node in
    /// arena order with `(arena_index, source_index)` so the caller can
    /// record per-node payloads (`source_index == usize::MAX` marks a
    /// split). The tree's root and step bound land on `roots`/`steps`.
    fn push_tree(
        &mut self,
        n_nodes: usize,
        is_leaf: impl Fn(usize) -> bool,
        split: impl Fn(usize) -> (u32, f64, u32, u32),
        mut on_node: impl FnMut(u32, usize),
    ) {
        let base = self.feature.len() as u32;
        let mut order = Vec::with_capacity(n_nodes);
        let mut newidx = vec![u32::MAX; n_nodes];
        newidx[0] = 0;
        order.push(0usize);
        let mut depth = 0u32;
        let mut frontier = vec![0usize];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &o in &frontier {
                if !is_leaf(o) {
                    let (_, _, l, r) = split(o);
                    for child in [l as usize, r as usize] {
                        newidx[child] = order.len() as u32;
                        order.push(child);
                        next.push(child);
                    }
                }
            }
            if !next.is_empty() {
                depth += 1;
            }
            frontier = next;
        }
        for &o in &order {
            let me = base + newidx[o];
            if is_leaf(o) {
                self.feature.push(0);
                self.thr.push(0.0);
                self.kids.push(me);
                self.kids.push(me);
                on_node(me, o);
            } else {
                let (f, t, l, r) = split(o);
                self.feature.push(f);
                self.thr.push(t);
                self.kids.push(base + newidx[l as usize]);
                self.kids.push(base + newidx[r as usize]);
                on_node(me, usize::MAX); // split marker: callers push a 0 payload
            }
        }
        self.roots.push(base);
        self.steps.push(depth);
    }

    fn quantize(&mut self) {
        self.thr_q = self.thr.iter().map(|&t| t as f32).collect();
    }
}

/// A random forest recompiled for branchless blocked evaluation.
///
/// Built from a [`FlatForest`] via [`BlockedForest::compile`]; the
/// exact tables predict bitwise identically to both the flat engine and
/// the recursive forest.
#[derive(Debug, Clone)]
pub struct BlockedForest {
    pub(crate) n_classes: usize,
    pub(crate) n_features: usize,
    pub(crate) exactness: Exactness,
    pub(crate) roots: Vec<u32>,
    pub(crate) steps: Vec<u32>,
    pub(crate) feature: Vec<u32>,
    pub(crate) thr: Vec<f64>,
    pub(crate) thr_q: Vec<f32>,
    pub(crate) kids: Vec<u32>,
    /// Per node: leaf-probability block id (leaves) or 0 (splits).
    pub(crate) payload: Vec<u32>,
    /// Concatenated leaf class distributions, `n_leaves × n_classes`.
    pub(crate) leaf_probs: Vec<f64>,
}

impl BlockedForest {
    /// Recompiles a flat forest into the breadth-first blocked arena.
    pub fn compile(flat: &FlatForest, exactness: Exactness) -> Self {
        let n_classes = flat.n_classes();
        let mut arena = Arena::default();
        let mut payload = Vec::new();
        let mut leaf_probs = Vec::new();
        for tree in flat.flat_trees() {
            arena.push_tree(
                tree.feature.len(),
                |o| tree.feature[o] == LEAF,
                |o| {
                    (
                        tree.feature[o],
                        tree.threshold[o],
                        tree.left[o],
                        tree.right[o],
                    )
                },
                |_, o| {
                    if o == usize::MAX {
                        payload.push(0);
                    } else {
                        let leaf_id = (leaf_probs.len() / n_classes) as u32;
                        let at = tree.left[o] as usize * n_classes;
                        leaf_probs.extend_from_slice(&tree.leaf_probs[at..at + n_classes]);
                        payload.push(leaf_id);
                    }
                },
            );
        }
        if exactness == Exactness::Quantized {
            arena.quantize();
        }
        Self {
            n_classes,
            n_features: flat.n_features(),
            exactness,
            roots: arena.roots,
            steps: arena.steps,
            feature: arena.feature,
            thr: arena.thr,
            thr_q: arena.thr_q,
            kids: arena.kids,
            payload,
            leaf_probs,
        }
    }

    /// Mean class-probability vote for one row, written into `out`
    /// (length `n_classes`).
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.n_classes, "output buffer arity");
        out.fill(0.0);
        for t in 0..self.roots.len() {
            let leaf = self.walk(t, row);
            let block = self.payload[leaf] as usize * self.n_classes;
            for (p, q) in out
                .iter_mut()
                .zip(&self.leaf_probs[block..block + self.n_classes])
            {
                *p += q;
            }
        }
        if self.roots.len() > 1 {
            let n = self.roots.len() as f64;
            for p in out.iter_mut() {
                *p /= n;
            }
        }
    }

    /// Mean class-probability vote (allocating wrapper).
    pub fn predict_proba_one(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        self.predict_proba_into(row, &mut out);
        out
    }

    /// Branchless single-row walk of tree `t` to its leaf's arena index.
    // `!(v <= thr)` keeps NaN routing right, like the recursive compare.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn walk(&self, t: usize, row: &[f64]) -> usize {
        let mut i = self.roots[t] as usize;
        let quant = self.exactness == Exactness::Quantized;
        for _ in 0..self.steps[t] {
            let v = row[self.feature[i] as usize];
            let go_right = if quant {
                !((v as f32) <= self.thr_q[i])
            } else {
                !(v <= self.thr[i])
            };
            let next = self.kids[2 * i + go_right as usize] as usize;
            if next == i {
                break;
            }
            i = next;
        }
        i
    }

    /// The numeric contract these tables were compiled under.
    pub fn exactness(&self) -> Exactness {
        self.exactness
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features in the schema.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across the arena.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }
}

impl Classifier for BlockedForest {
    fn predict_one(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba_one(row))
    }

    fn predict_batch_into(&self, data: &FrameView<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(data.len());
        // Traced and untraced paths split so untraced serving never
        // reads a clock or touches the collector.
        if obs::enabled() {
            obs::counter("infer.serve.batches", 1);
            obs::record_value("infer.serve.batch_rows", data.len() as u64);
            let t0 = std::time::Instant::now();
            kernel::forest_batch(self, data, out);
            obs::record_wall("infer.serve.batch_ns", t0.elapsed().as_nanos() as u64);
        } else {
            kernel::forest_batch(self, data, out);
        }
    }
}

/// A gradient-boosted classifier recompiled for branchless blocked
/// evaluation. Exact tables are bitwise identical to [`FlatGbdt`].
#[derive(Debug, Clone)]
pub struct BlockedGbdt {
    pub(crate) n_classes: usize,
    pub(crate) n_features: usize,
    pub(crate) learning_rate: f64,
    pub(crate) exactness: Exactness,
    /// Per booster: base score.
    pub(crate) bases: Vec<f64>,
    /// Per booster: `[start, end)` tree range into `roots`/`steps`.
    pub(crate) booster_trees: Vec<(u32, u32)>,
    pub(crate) roots: Vec<u32>,
    pub(crate) steps: Vec<u32>,
    pub(crate) feature: Vec<u32>,
    pub(crate) thr: Vec<f64>,
    pub(crate) thr_q: Vec<f32>,
    pub(crate) kids: Vec<u32>,
    /// Per node: regression leaf value (0.0 at splits).
    pub(crate) value: Vec<f64>,
}

impl BlockedGbdt {
    /// Recompiles a flat GBDT into the breadth-first blocked arena.
    pub fn compile(flat: &FlatGbdt, exactness: Exactness) -> Self {
        let mut arena = Arena::default();
        let mut value = Vec::new();
        let mut bases = Vec::new();
        let mut booster_trees = Vec::new();
        for (base, trees) in flat.flat_boosters() {
            let start = arena.roots.len() as u32;
            for tree in trees {
                arena.push_tree(
                    tree.feature.len(),
                    |o| tree.feature[o] == LEAF,
                    |o| {
                        (
                            tree.feature[o],
                            tree.threshold[o],
                            tree.left[o],
                            tree.right[o],
                        )
                    },
                    |_, o| {
                        if o == usize::MAX {
                            value.push(0.0);
                        } else {
                            value.push(tree.value[o]);
                        }
                    },
                );
            }
            bases.push(*base);
            booster_trees.push((start, arena.roots.len() as u32));
        }
        if exactness == Exactness::Quantized {
            arena.quantize();
        }
        Self {
            n_classes: flat.n_classes(),
            n_features: flat.n_features(),
            learning_rate: flat.learning_rate(),
            exactness,
            bases,
            booster_trees,
            roots: arena.roots,
            steps: arena.steps,
            feature: arena.feature,
            thr: arena.thr,
            thr_q: arena.thr_q,
            kids: arena.kids,
            value,
        }
    }

    /// Per-class raw scores (log-odds) for one row, written into `out`.
    pub fn decision_scores_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.bases.len(), "output buffer arity");
        for (b, slot) in out.iter_mut().enumerate() {
            let (t0, t1) = self.booster_trees[b];
            let mut sum = 0.0f64;
            for t in t0 as usize..t1 as usize {
                let leaf = self.walk(t, row);
                sum += self.value[leaf];
            }
            *slot = self.bases[b] + self.learning_rate * sum;
        }
    }

    /// Per-class raw scores (allocating wrapper).
    pub fn decision_scores(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.bases.len()];
        self.decision_scores_into(row, &mut out);
        out
    }

    // `!(v <= thr)` keeps NaN routing right, like the recursive compare.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn walk(&self, t: usize, row: &[f64]) -> usize {
        let mut i = self.roots[t] as usize;
        let quant = self.exactness == Exactness::Quantized;
        for _ in 0..self.steps[t] {
            let v = row[self.feature[i] as usize];
            let go_right = if quant {
                !((v as f32) <= self.thr_q[i])
            } else {
                !(v <= self.thr[i])
            };
            let next = self.kids[2 * i + go_right as usize] as usize;
            if next == i {
                break;
            }
            i = next;
        }
        i
    }

    /// The numeric contract these tables were compiled under.
    pub fn exactness(&self) -> Exactness {
        self.exactness
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features in the schema.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total node count across the arena.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }
}

impl Classifier for BlockedGbdt {
    fn predict_one(&self, row: &[f64]) -> usize {
        argmax(&self.decision_scores(row))
    }

    fn predict_batch_into(&self, data: &FrameView<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(data.len());
        if obs::enabled() {
            obs::counter("infer.serve.batches", 1);
            obs::record_value("infer.serve.batch_rows", data.len() as u64);
            let t0 = std::time::Instant::now();
            kernel::gbdt_batch(self, data, out);
            obs::record_wall("infer.serve.batch_ns", t0.elapsed().as_nanos() as u64);
        } else {
            kernel::gbdt_batch(self, data, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_ml::{Dataset, ForestConfig, GbdtClassifier, GbdtConfig, RandomForest};
    use libra_util::rng::rng_from_seed;

    fn blobs(n: usize, seed: u64, n_classes: usize) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % n_classes;
            features.push(vec![
                c as f64 * 3.0 + libra_util::rng::standard_normal(&mut rng),
                libra_util::rng::standard_normal(&mut rng),
            ]);
            labels.push(c);
        }
        Dataset::new(features, labels, n_classes, vec!["x".into(), "y".into()])
    }

    #[test]
    fn forest_blocked_matches_flat_and_recursive_bitwise() {
        let data = blobs(150, 21, 3);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 11,
            ..Default::default()
        });
        let mut rng = rng_from_seed(22);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        let blocked = BlockedForest::compile(&flat, Exactness::Exact);
        assert_eq!(blocked.n_trees(), flat.n_trees());
        assert_eq!(blocked.n_nodes(), flat.n_nodes());
        for row in data.rows() {
            let (bp, rp) = (blocked.predict_proba_one(row), rf.predict_proba_one(row));
            for (a, b) in bp.iter().zip(rp.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(blocked.predict_one(row), rf.predict_one(row));
        }
        // Batch (kernel) path agrees with the per-row walk, including
        // a ragged tail (150 % BLOCK != 0).
        let per_row: Vec<usize> = data.rows().map(|r| rf.predict_one(r)).collect();
        assert_eq!(blocked.predict_view(&data.view()), per_row);
    }

    #[test]
    fn gbdt_blocked_matches_flat_and_recursive_bitwise() {
        let data = blobs(120, 23, 3);
        let mut g = GbdtClassifier::new(GbdtConfig {
            n_rounds: 10,
            ..Default::default()
        });
        g.fit(&data);
        let flat = FlatGbdt::compile(&g, 2);
        let blocked = BlockedGbdt::compile(&flat, Exactness::Exact);
        assert_eq!(blocked.n_nodes(), flat.n_nodes());
        for row in data.rows() {
            let (bs, gs) = (blocked.decision_scores(row), g.decision_scores(row));
            for (a, b) in bs.iter().zip(gs.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(blocked.predict_one(row), g.predict_one(row));
        }
        let per_row: Vec<usize> = data.rows().map(|r| g.predict_one(r)).collect();
        assert_eq!(blocked.predict_view(&data.view()), per_row);
    }

    #[test]
    fn blocked_batch_handles_selected_views_and_tails() {
        let data = blobs(100, 25, 2);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 7,
            ..Default::default()
        });
        let mut rng = rng_from_seed(26);
        rf.fit(&data, &mut rng);
        let blocked = BlockedForest::compile(&FlatForest::compile(&rf), Exactness::Exact);
        for k in [1usize, 15, 16, 17, 33, 37, 100] {
            let sel: Vec<usize> = (0..k).map(|i| (i * 7) % 100).collect();
            let view = data.select(&sel);
            let per_row: Vec<usize> = sel.iter().map(|&i| rf.predict_one(data.row(i))).collect();
            assert_eq!(blocked.predict_view(&view), per_row);
        }
    }

    #[test]
    fn quantized_diverges_only_near_thresholds() {
        let data = blobs(200, 27, 3);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 9,
            ..Default::default()
        });
        let mut rng = rng_from_seed(28);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        let exact = BlockedForest::compile(&flat, Exactness::Exact);
        let quant = BlockedForest::compile(&flat, Exactness::Quantized);
        assert_eq!(quant.exactness(), Exactness::Quantized);
        for row in data.rows() {
            // A row where every split compares identically under f32
            // must predict identically; others may legitimately differ.
            let safe = flat
                .split_nodes()
                .all(|(f, thr)| (row[f] <= thr) == ((row[f] as f32) <= (thr as f32)));
            if safe {
                assert_eq!(quant.predict_one(row), exact.predict_one(row));
            }
        }
        let n = data.len();
        let diverged = quant
            .predict_view(&data.view())
            .iter()
            .zip(exact.predict_view(&data.view()))
            .filter(|(a, b)| **a != *b)
            .count();
        assert!(diverged <= n / 10, "quantized diverged on {diverged}/{n}");
    }

    #[test]
    fn stump_forest_compiles_to_self_looping_leaf() {
        // A forest whose trees are single leaves exercises steps == 0.
        let data = Dataset::new(
            vec![vec![0.0], vec![0.1], vec![0.2]],
            vec![1, 1, 1],
            2,
            vec!["x".into()],
        );
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 3,
            ..Default::default()
        });
        let mut rng = rng_from_seed(30);
        rf.fit(&data, &mut rng);
        let blocked = BlockedForest::compile(&FlatForest::compile(&rf), Exactness::Exact);
        for row in data.rows() {
            assert_eq!(blocked.predict_one(row), rf.predict_one(row));
        }
        assert_eq!(blocked.predict_view(&data.view()), vec![1, 1, 1]);
    }
}
