//! # libra-infer
//!
//! The train-once / serve-many half of the LiBRA reproduction.
//!
//! The paper's deployment story (§7, Alg. 1) is a trained classifier
//! making a BA/RA/NA call every 2×20 ms observation window — an
//! inference-serving problem. The research crates (`libra-ml`) keep the
//! pointer-chasing recursive trees that are convenient to fit and
//! inspect; this crate owns the hot serving path:
//!
//! * [`flat`] — recursive tree ensembles compiled into contiguous
//!   struct-of-arrays node tables ([`FlatForest`], [`FlatGbdt`]) with a
//!   batched, allocation-free-per-row `predict_batch` API. Predictions
//!   are **bitwise identical** to the recursive implementation — same
//!   leaf values, same accumulation order, same tie-breaking — just
//!   cache-friendly.
//! * [`artifact`] — a versioned, checksummed binary **model artifact
//!   format** (magic + format version + feature schema + class labels +
//!   CRC-32) freezing a trained model for shipment.
//! * [`registry`] — an on-disk **model registry** (`results/models/` by
//!   default) with `name@version` resolution and a latest-pointer, so
//!   simulators and the evaluation harness load a frozen artifact
//!   instead of retraining in-process.
//!
//! Determinism contract: artifact bytes are a pure function of the
//! trained model and its metadata — no timestamps, no hostnames — so a
//! model trained at any worker-thread count serializes to the same
//! bytes, and digests are comparable across machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod flat;
pub mod registry;

pub use artifact::{ArtifactMeta, Error, ModelArtifact, ModelPayload, FORMAT_VERSION, MAGIC};
pub use flat::{FlatForest, FlatGbdt};
pub use registry::{
    ArtifactFault, ModelRecord, ModelRegistry, ModelSpec, RegistryWatcher, ARTIFACT_EXT,
    LATEST_FILE,
};
