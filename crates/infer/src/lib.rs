//! # libra-infer
//!
//! The train-once / serve-many half of the LiBRA reproduction.
//!
//! The paper's deployment story (§7, Alg. 1) is a trained classifier
//! making a BA/RA/NA call every 2×20 ms observation window — an
//! inference-serving problem. The research crates (`libra-ml`) keep the
//! pointer-chasing recursive trees that are convenient to fit and
//! inspect; this crate owns the hot serving path:
//!
//! * [`flat`] — recursive tree ensembles compiled into contiguous
//!   struct-of-arrays node tables ([`FlatForest`], [`FlatGbdt`]) served
//!   through the one [`libra_ml::Classifier`] surface with an
//!   allocation-free-per-row batch path. Predictions are **bitwise
//!   identical** to the recursive implementation — same leaf values,
//!   same accumulation order, same tie-breaking — just cache-friendly.
//! * [`blocked`] + [`kernel`] — the flat tables recompiled into
//!   breadth-first arenas ([`BlockedForest`], [`BlockedGbdt`]) evaluated
//!   level-by-level over row blocks with branchless child selection and
//!   runtime SIMD dispatch; an optional `f32`-quantized node table sits
//!   behind the explicit [`Exactness::Quantized`] opt-in.
//! * [`engine`] — the engine-selection surface ([`EngineOpts`],
//!   [`EngineKind`], [`Exactness`]) shared by `libractl` and the bench
//!   harness.
//! * [`artifact`] — a versioned, checksummed binary **model artifact
//!   format** (magic + format version + feature schema + class labels +
//!   CRC-32) freezing a trained model for shipment.
//! * [`registry`] — an on-disk **model registry** (`results/models/` by
//!   default) with `name@version` resolution and a latest-pointer, so
//!   simulators and the evaluation harness load a frozen artifact
//!   instead of retraining in-process.
//!
//! Determinism contract: artifact bytes are a pure function of the
//! trained model and its metadata — no timestamps, no hostnames — so a
//! model trained at any worker-thread count serializes to the same
//! bytes, and digests are comparable across machines.

// `deny`, not `forbid`: the SIMD dispatchers in `kernel` carry the one
// narrowly-scoped `#[allow(unsafe_code)]` needed to call their
// `#[target_feature]`-compiled twins behind a runtime CPU probe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod blocked;
pub mod engine;
pub mod flat;
pub mod kernel;
pub mod registry;

pub use artifact::{ArtifactMeta, Error, ModelArtifact, ModelPayload, FORMAT_VERSION, MAGIC};
pub use blocked::{BlockedForest, BlockedGbdt};
pub use engine::{EngineKind, EngineOpts, Exactness};
pub use flat::{FlatForest, FlatGbdt};
pub use kernel::{simd_level, BLOCK};
pub use registry::{
    ArtifactFault, ModelRecord, ModelRegistry, ModelSpec, RegistryWatcher, ARTIFACT_EXT,
    LATEST_FILE,
};
