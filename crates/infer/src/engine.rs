//! Engine selection: which compiled inference path serves predictions.
//!
//! The redesigned engine API exposes three execution strategies behind
//! one [`libra_ml::Classifier`] surface:
//!
//! * **recursive** — the pointer-chasing `libra-ml` models themselves.
//!   Train-time only: artifacts carry the flattened tables, so the
//!   recursive engine exists for reference benchmarks, not serving.
//! * **flat** — the struct-of-arrays [`crate::FlatForest`] /
//!   [`crate::FlatGbdt`] tables with a per-row depth-first walk.
//! * **blocked** — the same tables recompiled into a breadth-first
//!   arena ([`crate::BlockedForest`] / [`crate::BlockedGbdt`]) evaluated
//!   level-by-level over row blocks with branchless child selection.
//!
//! ## Exactness contract
//!
//! [`Exactness::Exact`] keeps every threshold in `f64` and reproduces
//! the recursive models **bitwise**: identical leaf values, identical
//! accumulation order, identical tie-breaking. Property tests enforce
//! it, so routing serving through a different exact engine can never
//! move a response digest. [`Exactness::Quantized`] stores node
//! thresholds as `f32` (half the hot traversal bytes) and compares
//! feature values in `f32`; a prediction can differ from the exact path
//! only on rows where some feature value and a threshold are closer
//! than the `f32` rounding of that threshold — an explicit opt-in.

use serde::{Deserialize, Serialize};

/// Numeric contract of a compiled engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Exactness {
    /// `f64` thresholds; bitwise identical to the recursive models.
    #[default]
    Exact,
    /// `f32` node thresholds, `f32` compares: smaller and faster,
    /// allowed to diverge on threshold-adjacent feature values.
    Quantized,
}

impl Exactness {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Exactness::Exact => "exact",
            Exactness::Quantized => "quantized",
        }
    }
}

/// Which execution engine serves predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The recursive `libra-ml` model (reference; train-time only).
    Recursive,
    /// Struct-of-arrays tables, per-row depth-first walk.
    Flat,
    /// Breadth-first blocked arena, branchless level-synchronous walk.
    #[default]
    Blocked,
}

impl std::str::FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "recursive" => Ok(EngineKind::Recursive),
            "flat" => Ok(EngineKind::Flat),
            "blocked" => Ok(EngineKind::Blocked),
            other => Err(format!(
                "unknown engine `{other}` (expected recursive, flat, or blocked)"
            )),
        }
    }
}

impl EngineKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Recursive => "recursive",
            EngineKind::Flat => "flat",
            EngineKind::Blocked => "blocked",
        }
    }
}

/// Resolved engine selection, shared by `libractl predict`/`serve` and
/// `experiments inferbench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineOpts {
    /// The engine to route predictions through.
    pub kind: EngineKind,
    /// Opt into the `f32`-quantized node tables (blocked engine only).
    pub quantized: bool,
}

impl EngineOpts {
    /// Validates a `(kind, quantized)` pair: quantized tables exist
    /// only for the blocked engine.
    pub fn new(kind: EngineKind, quantized: bool) -> Result<Self, String> {
        if quantized && kind != EngineKind::Blocked {
            return Err("--quantized requires --engine blocked".into());
        }
        Ok(Self { kind, quantized })
    }

    /// The exactness the selection implies.
    pub fn exactness(&self) -> Exactness {
        if self.quantized {
            Exactness::Quantized
        } else {
            Exactness::Exact
        }
    }

    /// Report label, e.g. `blocked` or `blocked+quantized`.
    pub fn label(&self) -> String {
        if self.quantized {
            format!("{}+quantized", self.kind.label())
        } else {
            self.kind.label().to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_rejects() {
        assert_eq!("flat".parse::<EngineKind>().unwrap(), EngineKind::Flat);
        assert_eq!(
            "blocked".parse::<EngineKind>().unwrap(),
            EngineKind::Blocked
        );
        assert_eq!(
            "recursive".parse::<EngineKind>().unwrap(),
            EngineKind::Recursive
        );
        assert!("fast".parse::<EngineKind>().is_err());
    }

    #[test]
    fn quantized_requires_blocked() {
        assert!(EngineOpts::new(EngineKind::Flat, true).is_err());
        assert!(EngineOpts::new(EngineKind::Recursive, true).is_err());
        let opts = EngineOpts::new(EngineKind::Blocked, true).unwrap();
        assert_eq!(opts.exactness(), Exactness::Quantized);
        assert_eq!(opts.label(), "blocked+quantized");
    }

    #[test]
    fn default_is_blocked_exact() {
        let opts = EngineOpts::default();
        assert_eq!(opts.kind, EngineKind::Blocked);
        assert_eq!(opts.exactness(), Exactness::Exact);
        assert_eq!(opts.label(), "blocked");
    }
}
