//! The frozen model artifact format.
//!
//! What a vendor would flash next to the firmware after the offline
//! training of §7: one self-contained, checksummed binary file holding a
//! compiled inference engine plus the metadata needed to use it safely —
//! the feature schema (so a driver can refuse a model trained on a
//! different feature layout), the class labels, and provenance.
//!
//! ## On-disk layout (format version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LIBRAMDL"
//! 8       4     format version, u32 LE
//! 12      8     payload length, u64 LE
//! 20      n     payload: binser((ArtifactMeta, ModelPayload))
//! 20+n    4     CRC-32 (IEEE) of bytes [0, 20+n), u32 LE
//! ```
//!
//! Readers check, in order: length, magic, format version, the length
//! field, the CRC, and finally payload decode plus a structural
//! validation of the engine (child links in bounds, schema arity).
//! Truncated, bit-flipped, wrong-magic, and future-version files are all
//! rejected with a specific error.
//!
//! ## Determinism
//!
//! Artifact bytes are a pure function of the trained model and its
//! metadata — no timestamps, hostnames, or map iteration order — so the
//! same training seed yields byte-identical artifacts at any worker
//! thread count, and a CRC/digest comparison is a meaningful model
//! identity check.

use crate::flat::{FlatForest, FlatGbdt};
use libra_util::checksum::{crc32, fnv1a64};
use serde::{Deserialize, Serialize};
use std::fmt;

/// File magic: the first eight bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"LIBRAMDL";

/// Current artifact format version.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the fixed header preceding the payload.
const HEADER_LEN: usize = 8 + 4 + 8;

/// Size of the CRC trailer.
const TRAILER_LEN: usize = 4;

/// Artifact-store error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The file does not start with the artifact magic.
    BadMagic,
    /// The artifact was written by an incompatible format version.
    WrongVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file is shorter than its header/length field promises.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// The CRC trailer does not match the file contents.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the file.
        computed: u32,
    },
    /// The payload failed to decode or validate.
    Payload(String),
    /// Underlying filesystem failure.
    Io(String),
    /// Registry-level failure (unknown model, bad reference, ...).
    Registry(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadMagic => write!(f, "not a LiBRA model artifact (bad magic)"),
            Error::WrongVersion { found, expected } => {
                write!(
                    f,
                    "artifact format v{found} is not supported (expected v{expected})"
                )
            }
            Error::Truncated { need, have } => {
                write!(f, "artifact truncated: need {need} bytes, have {have}")
            }
            Error::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            ),
            Error::Payload(msg) => write!(f, "artifact payload: {msg}"),
            Error::Io(msg) => write!(f, "artifact io: {msg}"),
            Error::Registry(msg) => write!(f, "model registry: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Descriptive metadata frozen alongside the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Registry name the artifact was saved under (empty if unregistered).
    pub name: String,
    /// Feature schema: one column name per input feature, in row order.
    pub feature_names: Vec<String>,
    /// Class labels, in class-index order (e.g. `["BA", "RA", "NA"]`).
    pub class_labels: Vec<String>,
    /// Seed the model was trained from.
    pub train_seed: u64,
    /// Number of training rows.
    pub train_rows: u64,
    /// Free-form provenance notes (dataset plan, hyper-parameters, ...).
    pub notes: String,
}

/// The compiled engine inside an artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelPayload {
    /// A compiled random forest.
    Forest(FlatForest),
    /// A compiled gradient-boosted ensemble.
    Gbdt(FlatGbdt),
}

impl ModelPayload {
    /// Engine kind as a short label.
    pub fn kind(&self) -> &'static str {
        match self {
            ModelPayload::Forest(_) => "forest",
            ModelPayload::Gbdt(_) => "gbdt",
        }
    }

    /// Number of classes the engine predicts.
    pub fn n_classes(&self) -> usize {
        match self {
            ModelPayload::Forest(m) => m.n_classes(),
            ModelPayload::Gbdt(m) => m.n_classes(),
        }
    }

    /// Number of features the engine expects.
    pub fn n_features(&self) -> usize {
        match self {
            ModelPayload::Forest(m) => m.n_features(),
            ModelPayload::Gbdt(m) => m.n_features(),
        }
    }

    /// Total flattened node count (size estimate / inspection).
    pub fn n_nodes(&self) -> usize {
        match self {
            ModelPayload::Forest(m) => m.n_nodes(),
            ModelPayload::Gbdt(m) => m.n_nodes(),
        }
    }

    /// Structural sanity check of the engine tables.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ModelPayload::Forest(m) => m.validate(),
            ModelPayload::Gbdt(m) => m.validate(),
        }
    }
}

impl libra_ml::Classifier for ModelPayload {
    fn predict_one(&self, row: &[f64]) -> usize {
        match self {
            ModelPayload::Forest(m) => m.predict_one(row),
            ModelPayload::Gbdt(m) => m.predict_one(row),
        }
    }
    fn predict_batch_into(&self, data: &libra_ml::FrameView<'_>, out: &mut Vec<usize>) {
        match self {
            ModelPayload::Forest(m) => m.predict_batch_into(data, out),
            ModelPayload::Gbdt(m) => m.predict_batch_into(data, out),
        }
    }
}

/// A frozen, shippable model: metadata + compiled engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Descriptive metadata.
    pub meta: ArtifactMeta,
    /// The compiled engine.
    pub payload: ModelPayload,
}

impl ModelArtifact {
    /// Consistency check between the metadata schema and the engine.
    fn check_schema(&self) -> Result<(), Error> {
        if self.meta.feature_names.len() != self.payload.n_features() {
            return Err(Error::Payload(format!(
                "feature schema has {} names but the engine expects {} features",
                self.meta.feature_names.len(),
                self.payload.n_features()
            )));
        }
        if self.meta.class_labels.len() != self.payload.n_classes() {
            return Err(Error::Payload(format!(
                "{} class labels for an engine with {} classes",
                self.meta.class_labels.len(),
                self.payload.n_classes()
            )));
        }
        self.payload.validate().map_err(Error::Payload)
    }

    /// Serializes to the checksummed on-disk format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, Error> {
        self.check_schema()?;
        let payload = libra_util::binser::to_bytes(&(&self.meta, &self.payload))
            .map_err(|e| Error::Payload(e.to_string()))?;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }

    /// Parses and fully validates an artifact file image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(Error::Truncated {
                need: HEADER_LEN + TRAILER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(Error::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(Error::WrongVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| Error::Payload("payload length overflow".into()))?;
        let need = HEADER_LEN + payload_len + TRAILER_LEN;
        if bytes.len() < need {
            return Err(Error::Truncated {
                need,
                have: bytes.len(),
            });
        }
        if bytes.len() > need {
            return Err(Error::Payload(format!(
                "{} trailing bytes",
                bytes.len() - need
            )));
        }
        let body = &bytes[..HEADER_LEN + payload_len];
        let stored =
            u32::from_le_bytes(bytes[need - TRAILER_LEN..need].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(Error::ChecksumMismatch { stored, computed });
        }
        let (meta, payload): (ArtifactMeta, ModelPayload) =
            libra_util::binser::from_bytes(&body[HEADER_LEN..])
                .map_err(|e| Error::Payload(e.to_string()))?;
        let artifact = Self { meta, payload };
        artifact.check_schema()?;
        Ok(artifact)
    }

    /// Writes the artifact to a file, creating parent directories.
    ///
    /// Crash-safe: the bytes land in a `.tmp` sibling first and are
    /// renamed into place, so a concurrent reader (or a publisher crash
    /// mid-write) can never observe a partially written artifact at the
    /// final path — it either sees the old file or the complete new one.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> Result<(), Error> {
        let bytes = self.to_bytes()?;
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent).map_err(|e| Error::Io(e.to_string()))?;
        }
        atomic_write(path.as_ref(), &bytes)
    }

    /// Reads and validates an artifact file.
    pub fn read(path: impl AsRef<std::path::Path>) -> Result<Self, Error> {
        let bytes = std::fs::read(&path)
            .map_err(|e| Error::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_bytes(&bytes)
    }

    /// FNV-1a digest of the serialized artifact — a stable content
    /// identity (equal digests ⇔ byte-identical artifacts, up to hash
    /// collisions no regression check has to resist).
    pub fn digest(&self) -> Result<u64, Error> {
        Ok(fnv1a64(&self.to_bytes()?))
    }
}

/// Writes `bytes` to `path` via a temp-file + rename pair in the same
/// directory (rename within one filesystem is atomic on POSIX). Shared
/// by artifact writes and the registry's `LATEST` pointer updates.
pub(crate) fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), Error> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| Error::Io(format!("{}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        Error::Io(format!("{} -> {}: {e}", tmp.display(), path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_ml::{Dataset, ForestConfig, RandomForest};
    use libra_util::rng::rng_from_seed;

    fn small_artifact() -> ModelArtifact {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = i % 3;
            features.push(vec![c as f64 * 2.0 + (i % 5) as f64 * 0.1, (i % 7) as f64]);
            labels.push(c);
        }
        let data = Dataset::new(features, labels, 3, vec!["a".into(), "b".into()]);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 6,
            ..Default::default()
        });
        let mut rng = rng_from_seed(11);
        rf.fit(&data, &mut rng);
        ModelArtifact {
            meta: ArtifactMeta {
                name: "test".into(),
                feature_names: vec!["a".into(), "b".into()],
                class_labels: vec!["BA".into(), "RA".into(), "NA".into()],
                train_seed: 11,
                train_rows: 60,
                notes: String::new(),
            },
            payload: ModelPayload::Forest(FlatForest::compile(&rf)),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let art = small_artifact();
        let bytes = art.to_bytes().expect("serialize");
        let back = ModelArtifact::from_bytes(&bytes).expect("parse");
        assert_eq!(back, art);
        // Re-serialization is byte-stable (digest identity).
        assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn header_fields_are_where_the_spec_says() {
        let bytes = small_artifact().to_bytes().unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            FORMAT_VERSION
        );
        let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), HEADER_LEN + len + TRAILER_LEN);
    }

    #[test]
    fn bit_flips_anywhere_are_rejected() {
        let bytes = small_artifact().to_bytes().unwrap();
        // Flip a byte in the payload and in the trailer.
        for at in [HEADER_LEN + 3, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(
                matches!(
                    ModelArtifact::from_bytes(&bad),
                    Err(Error::ChecksumMismatch { .. }) | Err(Error::Payload(_))
                ),
                "flip at {at} must be rejected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = small_artifact().to_bytes().unwrap();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(ModelArtifact::from_bytes(&bad), Err(Error::BadMagic));
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&future),
            Err(Error::WrongVersion { found, expected })
                if found == FORMAT_VERSION + 1 && expected == FORMAT_VERSION
        ));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = small_artifact().to_bytes().unwrap();
        for keep in [0, 7, HEADER_LEN, bytes.len() - 1] {
            assert!(
                matches!(
                    ModelArtifact::from_bytes(&bytes[..keep]),
                    Err(Error::Truncated { .. })
                ),
                "keeping {keep} bytes must be a truncation error"
            );
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut art = small_artifact();
        art.meta.feature_names.pop();
        assert!(matches!(art.to_bytes(), Err(Error::Payload(_))));
    }
}
