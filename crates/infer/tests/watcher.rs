//! `RegistryWatcher` edge cases: the registry states a live serving
//! process can observe when operators (or a crashed publisher) touch
//! the model directory between polls.
//!
//! The unit suite in `registry.rs` covers the happy path — publish,
//! poll, steady state. These tests pin the awkward transitions:
//!
//! - **rollback**: the latest-pointer moves *backwards*; the watcher
//!   must report the old version again (a change is a change);
//! - **pointer to a deleted artifact**: the poll absorbs the damage
//!   (reporting nothing, leaving `seen` unchanged, recording the error
//!   for `last_error`) and retries next poll — serving keeps the model
//!   it already holds until the registry is repaired;
//! - **half-written registry files**: a torn `LATEST` or a truncated
//!   artifact behind the pointer likewise defers, never surfaces;
//! - **poll during publish**: an artifact file that exists before the
//!   pointer repoints is invisible until the pointer moves — the
//!   pointer write is the publication;
//! - **missing pointer**: the watcher follows the highest on-disk
//!   version, matching `ModelRegistry::resolve`'s fallback.

use libra_infer::{
    ArtifactMeta, FlatForest, ModelArtifact, ModelPayload, ModelRegistry, RegistryWatcher,
    ARTIFACT_EXT, LATEST_FILE,
};
use libra_ml::{Dataset, ForestConfig, RandomForest};
use libra_util::rng::rng_from_seed;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("libra-watcher-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A small but real trained artifact; distinct seeds give distinct
/// payload bytes, so version contents are distinguishable.
fn artifact(seed: u64) -> ModelArtifact {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..45 {
        let c = i % 3;
        features.push(vec![c as f64 + (i % 4) as f64 * 0.05, (i % 6) as f64]);
        labels.push(c);
    }
    let data = Dataset::new(features, labels, 3, vec!["x".into(), "y".into()]);
    let mut rf = RandomForest::new(ForestConfig {
        n_trees: 4,
        ..Default::default()
    });
    let mut rng = rng_from_seed(seed);
    rf.fit(&data, &mut rng);
    ModelArtifact {
        meta: ArtifactMeta {
            name: "watch-test".into(),
            feature_names: vec!["x".into(), "y".into()],
            class_labels: vec!["BA".into(), "RA".into(), "NA".into()],
            train_seed: seed,
            train_rows: 45,
            notes: String::new(),
        },
        payload: ModelPayload::Forest(FlatForest::compile(&rf)),
    }
}

fn repoint(dir: &std::path::Path, name: &str, version: u32) {
    std::fs::write(dir.join(name).join(LATEST_FILE), format!("{version}\n")).unwrap();
}

#[test]
fn rollback_to_an_older_version_is_reported() {
    let dir = tmpdir("rollback");
    let reg = ModelRegistry::open(&dir);
    reg.save("m", &artifact(1)).unwrap();
    reg.save("m", &artifact(2)).unwrap();

    let mut watcher = RegistryWatcher::new(reg.clone(), "m").unwrap();
    let (v, _) = watcher.poll().expect("initial version");
    assert_eq!(v, 2);

    // An operator rolls the pointer back to v1: the watcher reports
    // the *old* artifact as a fresh publication — serving must follow
    // the pointer down as readily as up.
    repoint(&dir, "m", 1);
    let (v, a) = watcher.poll().expect("rollback visible");
    assert_eq!(v, 1);
    assert_eq!(a, artifact(1));
    assert_eq!(watcher.seen(), Some(1));
    assert!(watcher.poll().is_none(), "rollback reported once");

    // Rolling forward again is a change too.
    repoint(&dir, "m", 2);
    let (v, _) = watcher.poll().expect("roll-forward visible");
    assert_eq!(v, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pointer_at_deleted_artifact_defers_then_recovers() {
    let dir = tmpdir("deleted");
    let reg = ModelRegistry::open(&dir);
    reg.save("m", &artifact(1)).unwrap();
    reg.save("m", &artifact(2)).unwrap();

    let mut watcher = RegistryWatcher::starting_at(reg.clone(), "m", 1).unwrap();

    // v2's artifact file vanishes while LATEST still points at it —
    // the poll absorbs the damage: nothing is reported, `seen` stays
    // where it was, and the error is parked in `last_error` for
    // telemetry. The serving loop keeps the model it already holds.
    std::fs::remove_file(dir.join("m").join(format!("v2.{ARTIFACT_EXT}"))).unwrap();
    assert!(watcher.poll().is_none());
    assert_eq!(watcher.seen(), Some(1));
    assert!(watcher.last_error().is_some(), "damage recorded");
    assert_eq!(watcher.deferred(), 1);

    // The damage persists across polls: each retry defers again.
    assert!(watcher.poll().is_none());
    assert_eq!(watcher.deferred(), 2);

    // Repairing the pointer (rollback to the surviving version) makes
    // polls quiet and clean again: v1 is already the version served.
    repoint(&dir, "m", 1);
    assert!(watcher.poll().is_none());
    assert!(watcher.last_error().is_none(), "clean poll clears error");

    // And a real new publication still comes through afterwards.
    let v = reg.save("m", &artifact(3)).unwrap();
    let (seen, _) = watcher.poll().expect("post-repair publication");
    assert_eq!(seen, v);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn half_written_registry_files_defer_instead_of_surfacing() {
    let dir = tmpdir("halfwrite");
    let reg = ModelRegistry::open(&dir);
    reg.save("m", &artifact(1)).unwrap();
    reg.save("m", &artifact(2)).unwrap();

    let mut watcher = RegistryWatcher::starting_at(reg.clone(), "m", 1).unwrap();

    // A torn LATEST (interrupted non-atomic writer, half a digit of
    // garbage) defers rather than erroring out of the serving loop.
    std::fs::write(dir.join("m").join(LATEST_FILE), "2garbage").unwrap();
    assert!(watcher.poll().is_none());
    assert_eq!(watcher.seen(), Some(1));
    assert!(watcher.last_error().is_some());

    // A truncated artifact behind a valid pointer defers too.
    repoint(&dir, "m", 2);
    let v2 = dir.join("m").join(format!("v2.{ARTIFACT_EXT}"));
    let full = std::fs::read(&v2).unwrap();
    std::fs::write(&v2, &full[..full.len() / 2]).unwrap();
    assert!(watcher.poll().is_none());
    assert_eq!(watcher.seen(), Some(1));

    // Restoring the artifact completes the publication on a later poll.
    std::fs::write(&v2, &full).unwrap();
    let (v, a) = watcher.poll().expect("repaired artifact visible");
    assert_eq!(v, 2);
    assert_eq!(a, artifact(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_written_before_pointer_repoints_stays_invisible() {
    let dir = tmpdir("midpublish");
    let reg = ModelRegistry::open(&dir);
    reg.save("m", &artifact(1)).unwrap();

    let mut watcher = RegistryWatcher::starting_at(reg.clone(), "m", 1).unwrap();
    assert!(watcher.poll().is_none());

    // Mid-publish snapshot: v2's artifact bytes are fully on disk, but
    // the latest-pointer still says 1 (ModelRegistry::save writes the
    // artifact first, the pointer last). A poll landing here must not
    // jump ahead of the pointer.
    artifact(2)
        .write(dir.join("m").join(format!("v2.{ARTIFACT_EXT}")))
        .unwrap();
    assert!(watcher.poll().is_none(), "saw an unpublished file");
    assert_eq!(watcher.seen(), Some(1));

    // The pointer write completes the publication.
    repoint(&dir, "m", 2);
    let (v, a) = watcher.poll().expect("publication completes");
    assert_eq!(v, 2);
    assert_eq!(a, artifact(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_pointer_follows_highest_version_on_disk() {
    let dir = tmpdir("nopointer");
    let reg = ModelRegistry::open(&dir);
    reg.save("m", &artifact(1)).unwrap();
    reg.save("m", &artifact(2)).unwrap();
    std::fs::remove_file(dir.join("m").join(LATEST_FILE)).unwrap();

    // A fresh watcher on a pointerless registry falls back to the
    // highest version present, like ModelRegistry::resolve does.
    let mut watcher = RegistryWatcher::new(reg.clone(), "m").unwrap();
    let (v, a) = watcher.poll().expect("fallback version");
    assert_eq!(v, 2);
    assert_eq!(a, artifact(2));
    assert!(watcher.poll().is_none());

    // The next save allocates v3 and restores the pointer; the watcher
    // carries on seamlessly.
    assert_eq!(reg.save("m", &artifact(3)).unwrap(), 3);
    let (v, _) = watcher.poll().expect("post-restore publication");
    assert_eq!(v, 3);
    let _ = std::fs::remove_dir_all(&dir);
}
