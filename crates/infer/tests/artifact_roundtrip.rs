//! Artifact round-trip and tamper-rejection tests.
//!
//! The determinism half of this suite is run in CI under
//! `LIBRA_THREADS=4` as well as single-threaded: artifact bytes must be
//! a pure function of the trained model, so the digest cannot move with
//! the worker-thread count.

use libra_infer::{
    ArtifactMeta, Error, FlatForest, ModelArtifact, ModelPayload, ModelRegistry, ModelSpec,
    FORMAT_VERSION,
};
use libra_ml::{Classifier, Dataset, ForestConfig, RandomForest};
use libra_util::rng::rng_from_seed;
use rand::Rng;

fn train_dataset(seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..120 {
        let class = i % 3;
        features.push(vec![
            class as f64 * 2.0 + rng.gen_range(-0.8..0.8),
            rng.gen_range(0.0..8.0),
            class as f64 - rng.gen_range(0.0..0.5),
        ]);
        labels.push(class);
    }
    Dataset::new(
        features,
        labels,
        3,
        vec!["snr".into(), "evm".into(), "sweep".into()],
    )
}

fn build_artifact(seed: u64) -> ModelArtifact {
    let data = train_dataset(seed);
    let mut rf = RandomForest::new(ForestConfig {
        n_trees: 12,
        ..Default::default()
    });
    let mut rng = rng_from_seed(seed);
    rf.fit(&data, &mut rng);
    ModelArtifact {
        meta: ArtifactMeta {
            name: "roundtrip".into(),
            feature_names: data.feature_names.clone(),
            class_labels: vec!["BA".into(), "RA".into(), "NA".into()],
            train_seed: seed,
            train_rows: data.len() as u64,
            notes: "artifact_roundtrip integration test".into(),
        },
        payload: ModelPayload::Forest(FlatForest::compile(&rf)),
    }
}

#[test]
fn roundtrip_is_digest_identical() {
    // Honour the CI override so this test exercises the pooled-training
    // path when LIBRA_THREADS is set.
    if let Ok(threads) = std::env::var("LIBRA_THREADS") {
        if let Ok(n) = threads.parse::<usize>() {
            libra_util::par::set_threads(n);
        }
    }

    let art = build_artifact(0x11B2A);
    let bytes = art.to_bytes().expect("serialize");
    let back = ModelArtifact::from_bytes(&bytes).expect("parse");
    assert_eq!(back, art, "decoded artifact differs from the original");
    assert_eq!(
        back.digest().unwrap(),
        art.digest().unwrap(),
        "round-trip must preserve the content digest"
    );

    // Training again from the same seed gives byte-identical output:
    // the format embeds no timestamps or environment.
    let again = build_artifact(0x11B2A);
    assert_eq!(
        again.to_bytes().unwrap(),
        bytes,
        "artifact bytes must be seed-deterministic"
    );

    // And the decoded engine really predicts (via the one Classifier
    // surface — the payload itself implements it too).
    let probe = Dataset::new(
        vec![vec![0.1, 4.0, 0.2], vec![4.1, 1.0, 1.8]],
        vec![0, 0],
        3,
        vec!["snr".into(), "evm".into(), "sweep".into()],
    );
    match (&art.payload, &back.payload) {
        (ModelPayload::Forest(a), ModelPayload::Forest(b)) => {
            assert_eq!(a.predict_view(&probe.view()), b.predict_view(&probe.view()));
            assert_eq!(
                art.payload.predict_view(&probe.view()),
                back.payload.predict_view(&probe.view())
            );
        }
        _ => panic!("payload kind changed in round-trip"),
    }
}

#[test]
fn every_single_byte_is_covered_by_the_checksum() {
    let bytes = build_artifact(7).to_bytes().unwrap();
    // Flipping any byte of the file must be detected. Exhaustive over a
    // stride to keep runtime sane, plus the first and last bytes.
    let mut positions: Vec<usize> = (0..bytes.len()).step_by(97).collect();
    positions.push(bytes.len() - 1);
    for at in positions {
        let mut bad = bytes.clone();
        bad[at] ^= 0x01;
        assert!(
            ModelArtifact::from_bytes(&bad).is_err(),
            "single-bit flip at byte {at} went undetected"
        );
    }
}

#[test]
fn truncated_wrong_magic_and_future_version_are_rejected() {
    let bytes = build_artifact(9).to_bytes().unwrap();

    for keep in [0usize, 4, 19, 20, bytes.len() - 4, bytes.len() - 1] {
        assert!(
            matches!(
                ModelArtifact::from_bytes(&bytes[..keep]),
                Err(Error::Truncated { .. })
            ),
            "prefix of {keep} bytes must report truncation"
        );
    }

    let mut wrong_magic = bytes.clone();
    wrong_magic[..8].copy_from_slice(b"NOTLIBRA");
    assert_eq!(
        ModelArtifact::from_bytes(&wrong_magic),
        Err(Error::BadMagic)
    );

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(FORMAT_VERSION + 9).to_le_bytes());
    assert_eq!(
        ModelArtifact::from_bytes(&future),
        Err(Error::WrongVersion {
            found: FORMAT_VERSION + 9,
            expected: FORMAT_VERSION
        })
    );

    let mut padded = bytes.clone();
    padded.push(0);
    assert!(
        ModelArtifact::from_bytes(&padded).is_err(),
        "trailing garbage must be rejected"
    );
}

#[test]
fn registry_save_then_load_serves_identical_bytes() {
    let dir = std::env::temp_dir().join(format!("libra-artifact-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reg = ModelRegistry::open(&dir);

    let art = build_artifact(21);
    let v1 = reg.save("rt", &art).expect("save v1");
    let v2 = reg.save("rt", &art).expect("save v2");
    assert_eq!((v1, v2), (1, 2));

    let (version, loaded) = reg
        .load(&ModelSpec::parse("rt").unwrap())
        .expect("load latest");
    assert_eq!(version, 2);
    assert_eq!(loaded.digest().unwrap(), art.digest().unwrap());

    let listing = reg.list().expect("list");
    assert_eq!(listing.len(), 1);
    assert_eq!(listing[0].versions, vec![1, 2]);
    assert_eq!(listing[0].latest, Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}
