//! Property tests: the flattened engines must be prediction-identical to
//! the recursive `libra-ml` implementations on arbitrary models and
//! inputs — every class count, every tree shape, every row.

use libra_infer::{FlatForest, FlatGbdt};
use libra_ml::{Classifier, Dataset, ForestConfig, GbdtClassifier, GbdtConfig, RandomForest};
use libra_util::rng::rng_from_seed;
use proptest::prelude::*;
use rand::Rng;

/// Deterministic synthetic classification data: class-dependent cluster
/// centres plus noise, so trees have real structure to learn.
fn synth_dataset(seed: u64, n_rows: usize, n_features: usize, n_classes: usize) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut features = Vec::with_capacity(n_rows);
    let mut labels = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let class = i % n_classes;
        let row: Vec<f64> = (0..n_features)
            .map(|f| class as f64 * 1.5 + ((f + 1) as f64) * rng.gen_range(-1.0..1.0))
            .collect();
        features.push(row);
        labels.push(class);
    }
    let names = (0..n_features).map(|f| format!("f{f}")).collect();
    Dataset::new(features, labels, n_classes, names)
}

/// Fresh rows the model never saw, including values outside the
/// training range (forces root-to-leaf paths down both extremes).
fn probe_rows(seed: u64, n_rows: usize, n_features: usize) -> Vec<Vec<f64>> {
    let mut rng = rng_from_seed(seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..n_rows)
        .map(|_| {
            (0..n_features)
                .map(|_| rng.gen_range(-10.0..10.0))
                .collect()
        })
        .collect()
}

/// Wraps probe rows in a columnar frame (dummy labels) so they can flow
/// through the `Classifier` view surface — the only batch path left.
fn probe_frame(probes: &[Vec<f64>], n_features: usize, n_classes: usize) -> Dataset {
    let names = (0..n_features).map(|f| format!("f{f}")).collect();
    Dataset::new(probes.to_vec(), vec![0; probes.len()], n_classes, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_forest_matches_recursive(
        seed in 0u64..1_000_000,
        n_rows in 24usize..80,
        n_features in 1usize..6,
        n_classes in 2usize..5,
        n_trees in 1usize..8,
        max_depth in 1usize..7,
    ) {
        let data = synth_dataset(seed, n_rows, n_features, n_classes);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees,
            max_depth,
            min_samples_split: 2,
            ..Default::default()
        });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        flat.validate().expect("compiled tables are well-formed");

        let probes = probe_rows(seed, 40, n_features);
        for row in data.rows().chain(probes.iter().map(Vec::as_slice)) {
            // Classes, probabilities, and tie-breaking all bitwise equal.
            prop_assert_eq!(flat.predict_one(row), rf.predict_one(row));
            let (rp, fp) = (rf.predict_proba_one(row), flat.predict_proba_one(row));
            prop_assert_eq!(rp.len(), fp.len());
            for (a, b) in rp.iter().zip(fp.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // The zero-copy view path agrees with the per-row path, on
        // training rows and unseen probes alike.
        let batch = flat.predict_view(&probe_frame(&probes, n_features, n_classes).view());
        let per_row: Vec<usize> = probes.iter().map(|r| flat.predict_one(r)).collect();
        prop_assert_eq!(batch, per_row);
        let mut via_view = Vec::new();
        flat.predict_batch_into(&data.view(), &mut via_view);
        let frame_rows: Vec<usize> = data.rows().map(|r| flat.predict_one(r)).collect();
        prop_assert_eq!(via_view, frame_rows);
    }

    #[test]
    fn flat_gbdt_matches_recursive(
        seed in 0u64..1_000_000,
        n_rows in 24usize..60,
        n_features in 1usize..5,
        n_classes in 2usize..4,
        n_rounds in 1usize..6,
    ) {
        let data = synth_dataset(seed, n_rows, n_features, n_classes);
        let mut gbdt = GbdtClassifier::new(GbdtConfig {
            n_rounds,
            max_depth: 3,
            ..Default::default()
        });
        gbdt.fit(&data);
        let flat = FlatGbdt::compile(&gbdt, n_features);
        flat.validate().expect("compiled tables are well-formed");

        let probes = probe_rows(seed, 30, n_features);
        for row in data.rows().chain(probes.iter().map(Vec::as_slice)) {
            prop_assert_eq!(flat.predict_one(row), gbdt.predict_one(row));
            let (rs, fs) = (gbdt.decision_scores(row), flat.decision_scores(row));
            prop_assert_eq!(rs.len(), fs.len());
            for (a, b) in rs.iter().zip(fs.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let batch = flat.predict_view(&probe_frame(&probes, n_features, n_classes).view());
        let per_row: Vec<usize> = probes.iter().map(|r| flat.predict_one(r)).collect();
        prop_assert_eq!(batch, per_row);
    }
}
