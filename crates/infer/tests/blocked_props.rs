//! Property tests for the blocked/branchless engine: the exact path must
//! be **bitwise identical** to the recursive models on adversarial tree
//! shapes (single-node stumps, maximally deep chains, pure-leaf forests
//! evaluated on arbitrary rows) and on every block-tail size, under both
//! the portable and SIMD kernels — the same binary is rebuilt with
//! `-C target-cpu=native` in CI and its digests diffed. The quantized
//! path gets a *bounded-divergence* property instead: rows whose every
//! split comparison agrees between f64 and f32 must predict identically.

use libra_infer::{BlockedForest, BlockedGbdt, Exactness, FlatForest, FlatGbdt, BLOCK};
use libra_ml::{Classifier, Dataset, ForestConfig, GbdtClassifier, GbdtConfig, RandomForest};
use libra_util::rng::rng_from_seed;
use proptest::prelude::*;
use rand::Rng;

fn synth_dataset(seed: u64, n_rows: usize, n_features: usize, n_classes: usize) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut features = Vec::with_capacity(n_rows);
    let mut labels = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let class = i % n_classes;
        let row: Vec<f64> = (0..n_features)
            .map(|f| class as f64 * 1.5 + ((f + 1) as f64) * rng.gen_range(-1.0..1.0))
            .collect();
        features.push(row);
        labels.push(class);
    }
    let names = (0..n_features).map(|f| format!("f{f}")).collect();
    Dataset::new(features, labels, n_classes, names)
}

/// Probe rows wrapped in a frame (dummy labels) so they can flow through
/// the batch kernel. Values span far outside the training range, plus
/// infinities — legal sentinels that force extreme root-to-leaf paths.
fn probe_frame(seed: u64, n_rows: usize, n_features: usize, n_classes: usize) -> Dataset {
    let mut rng = rng_from_seed(seed ^ 0xDEAD_BEEF_CAFE_F00D);
    let rows: Vec<Vec<f64>> = (0..n_rows)
        .map(|i| {
            (0..n_features)
                .map(|f| match (i + f) % 17 {
                    0 => f64::INFINITY,
                    1 => f64::NEG_INFINITY,
                    _ => rng.gen_range(-25.0..25.0),
                })
                .collect()
        })
        .collect();
    let names = (0..n_features).map(|f| format!("f{f}")).collect();
    Dataset::new(rows, vec![0; n_rows], n_classes, names)
}

fn assert_probas_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: proba length");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: proba bits");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Blocked exact vs recursive vs flat, across tree shapes from
    /// stumps (`max_depth = 1`) to deep chains (`max_depth` up to 16 on
    /// few features, so paths degenerate into long runs) — classes,
    /// probabilities, and tie-breaking all bitwise equal, per row and
    /// through the batch kernel.
    #[test]
    fn blocked_forest_matches_recursive_on_adversarial_shapes(
        seed in 0u64..1_000_000,
        n_rows in 24usize..70,
        n_features in 1usize..4,
        n_classes in 2usize..5,
        n_trees in 1usize..7,
        max_depth in 1usize..16,
    ) {
        let data = synth_dataset(seed, n_rows, n_features, n_classes);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees,
            max_depth,
            min_samples_split: 2,
            ..Default::default()
        });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        let blocked = BlockedForest::compile(&flat, Exactness::Exact);

        let probes = probe_frame(seed, 48, n_features, n_classes);
        for row in data.rows().chain(probes.rows()) {
            prop_assert_eq!(blocked.predict_one(row), rf.predict_one(row));
            let (rp, bp) = (rf.predict_proba_one(row), blocked.predict_proba_one(row));
            prop_assert_eq!(rp.len(), bp.len());
            for (a, b) in rp.iter().zip(bp.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Batch kernel agrees with the per-row walk on unseen probes.
        let batch = blocked.predict_view(&probes.view());
        let per_row: Vec<usize> = probes.rows().map(|r| blocked.predict_one(r)).collect();
        prop_assert_eq!(&batch, &per_row);
        // And with the flat engine, which props.rs pins to recursive.
        prop_assert_eq!(&batch, &flat.predict_view(&probes.view()));
    }

    /// Mixed block tails: every selection size around the block boundary
    /// (`n % BLOCK` ∈ {0, 1, BLOCK−1, …}) must agree with per-row walks.
    #[test]
    fn blocked_batch_tails_match_per_row(
        seed in 0u64..1_000_000,
        extra in 0usize..(2 * BLOCK),
    ) {
        let data = synth_dataset(seed, 64, 3, 3);
        let mut rf = RandomForest::new(ForestConfig { n_trees: 5, ..Default::default() });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        let blocked = BlockedForest::compile(&FlatForest::compile(&rf), Exactness::Exact);

        let n = data.len();
        for k in [1, BLOCK - 1, BLOCK, BLOCK + 1, BLOCK + extra] {
            let k = k.min(n);
            let sel: Vec<usize> = (0..k).map(|i| (i * 11) % n).collect();
            let got = blocked.predict_view(&data.select(&sel));
            let want: Vec<usize> = sel.iter().map(|&i| blocked.predict_one(data.row(i))).collect();
            prop_assert_eq!(got, want, "tail size {}", k);
        }
    }

    /// Quantized divergence is bounded and explainable: any row whose
    /// every split comparison is unchanged by the f64→f32 threshold cast
    /// must predict identically to the exact path. Only rows that
    /// straddle a rounded threshold may move.
    #[test]
    fn quantized_divergence_is_bounded_to_threshold_straddlers(
        seed in 0u64..1_000_000,
        n_trees in 1usize..6,
    ) {
        let data = synth_dataset(seed, 60, 3, 3);
        let mut rf = RandomForest::new(ForestConfig { n_trees, ..Default::default() });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        let flat = FlatForest::compile(&rf);
        let exact = BlockedForest::compile(&flat, Exactness::Exact);
        let quant = BlockedForest::compile(&flat, Exactness::Quantized);
        let splits: Vec<(usize, f64)> = flat.split_nodes().collect();

        let probes = probe_frame(seed, 64, 3, 3);
        let e = exact.predict_view(&probes.view());
        let q = quant.predict_view(&probes.view());
        let mut diverged = 0usize;
        for (i, row) in probes.rows().enumerate() {
            let safe = splits.iter().all(|&(f, thr)| {
                (row[f] <= thr) == ((row[f] as f32) <= (thr as f32))
            });
            if safe {
                prop_assert_eq!(e[i], q[i], "f32-safe row {} diverged", i);
            } else if e[i] != q[i] {
                diverged += 1;
            }
        }
        // Straddlers are rare under any sane data distribution.
        prop_assert!(diverged <= probes.len() / 8,
            "{} of {} rows diverged", diverged, probes.len());
    }

    /// GBDT: blocked exact decision scores and classes bitwise-match the
    /// recursive booster, per row and batched.
    #[test]
    fn blocked_gbdt_matches_recursive(
        seed in 0u64..1_000_000,
        n_rounds in 1usize..5,
        n_classes in 2usize..4,
    ) {
        let data = synth_dataset(seed, 48, 3, n_classes);
        let mut gbdt = GbdtClassifier::new(GbdtConfig { n_rounds, max_depth: 3, ..Default::default() });
        gbdt.fit(&data);
        let flat = FlatGbdt::compile(&gbdt, 3);
        let blocked = BlockedGbdt::compile(&flat, Exactness::Exact);

        let probes = probe_frame(seed, 33, 3, n_classes);
        for row in data.rows().chain(probes.rows()) {
            prop_assert_eq!(blocked.predict_one(row), gbdt.predict_one(row));
        }
        let batch = blocked.predict_view(&probes.view());
        let per_row: Vec<usize> = probes.rows().map(|r| gbdt.predict_one(r)).collect();
        prop_assert_eq!(batch, per_row);
    }
}

/// A forest of pure leaves (constant-label training data) — the
/// degenerate "no features consulted" case. Every tree is a single
/// self-looping node; the kernel must take zero level steps and still
/// emit the exact leaf distribution for rows of any content, including
/// NaN features on the per-row path (frames reject NaN, slices do not).
#[test]
fn pure_leaf_forest_ignores_row_content() {
    let features: Vec<Vec<f64>> = (0..24).map(|i| vec![i as f64, -(i as f64)]).collect();
    let labels = vec![1usize; 24];
    let data = Dataset::new(features, labels, 3, vec!["a".into(), "b".into()]);
    let mut rf = RandomForest::new(ForestConfig {
        n_trees: 4,
        ..Default::default()
    });
    let mut rng = rng_from_seed(9);
    rf.fit(&data, &mut rng);
    let blocked = BlockedForest::compile(&FlatForest::compile(&rf), Exactness::Exact);

    for row in [
        vec![0.0, 0.0],
        vec![f64::INFINITY, f64::NEG_INFINITY],
        vec![f64::NAN, f64::NAN],
        vec![1e300, -1e300],
    ] {
        assert_eq!(blocked.predict_one(&row), 1);
        assert_probas_bitwise(
            &blocked.predict_proba_one(&row),
            &rf.predict_proba_one(&[0.0, 0.0]),
            "pure-leaf forest",
        );
    }
}

/// NaN routing on real split trees: the recursive comparison
/// `v <= thr` is false for NaN (NaN goes right), and the branchless
/// kernel must reproduce that bit-for-bit on the per-row path.
#[test]
fn nan_rows_route_right_like_recursive() {
    let data = synth_dataset(0x4A4E, 60, 3, 3);
    let mut rf = RandomForest::new(ForestConfig {
        n_trees: 6,
        ..Default::default()
    });
    let mut rng = rng_from_seed(0x4A4E);
    rf.fit(&data, &mut rng);
    let blocked = BlockedForest::compile(&FlatForest::compile(&rf), Exactness::Exact);

    let rows = [
        vec![f64::NAN, 1.0, -2.0],
        vec![1.0, f64::NAN, f64::NAN],
        vec![f64::NAN, f64::NAN, f64::NAN],
    ];
    for row in &rows {
        assert_eq!(blocked.predict_one(row), rf.predict_one(row));
        assert_probas_bitwise(
            &blocked.predict_proba_one(row),
            &rf.predict_proba_one(row),
            "NaN routing",
        );
    }
}
