//! Emulation of COTS 802.11ad link adaptation (paper §3).
//!
//! COTS devices — the TP-Link Talon AD7200 router, the Acer TravelMate
//! laptop, the ASUS ROG phone — all use the same simple heuristic: **on a
//! missing Block ACK, lower the MCS; if no working MCS is found, trigger
//! a Tx sector sweep** (and always receive in quasi-omni mode). The paper
//! shows this heuristic makes wrong decisions even in trivially simple
//! scenarios: the phone re-triggers BA >100 times in 60 s while static,
//! the AP oscillates between sectors, and disabling BA outright *raises*
//! throughput by 26 % in the static case (Fig. 1) — yet BA delivers 15 %
//! *more* in a mobility case (Fig. 3).
//!
//! This module reproduces that behaviour from first principles:
//!
//! * heavily-overlapping sectors make several sweep candidates near-equal;
//! * per-sweep SNR measurement noise then makes repeated sweeps disagree
//!   (sector flapping);
//! * transient deep fades (hand/body micro-motion, modelled as a random
//!   fade process whose intensity is a device-profile parameter) cause
//!   Block-ACK losses that send the RA ladder to the bottom and trigger
//!   BA — at which point the device may well land on a different,
//!   possibly worse, sector.

use crate::sweep::tx_sweep;
use libra_arrays::{BeamId, BeamPattern, Codebook};
use libra_channel::{BlockerPlacement, Environment, Point, Pose, Scene};
use libra_phy::trace::standard_normal;
use libra_phy::{ErrorModel, McsTable};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Behavioural parameters of one COTS device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Number of Tx sectors in the device codebook.
    pub sectors: usize,
    /// Per-sector SNR measurement noise during a sweep, dB.
    pub sweep_noise_sigma_db: f64,
    /// Probability per AMPDU of entering a transient deep fade.
    pub fade_prob: f64,
    /// Depth of a transient fade, dB.
    pub fade_depth_db: f64,
    /// Mean fade duration, AMPDUs.
    pub fade_len_ampdus: usize,
    /// AMPDU (frame aggregation) duration, ms.
    pub ampdu_ms: f64,
    /// Time consumed by one Tx sector sweep, ms.
    pub ba_overhead_ms: f64,
    /// AMPDUs with ACKs between upward MCS probes.
    pub probe_interval: usize,
}

impl DeviceProfile {
    /// The Talon AD7200 AP / Acer laptop profile (same chipset and
    /// array; the paper only distinguishes phone vs AP/laptop): moderate
    /// sweep noise, rare fades.
    pub fn talon_ap() -> Self {
        Self {
            sectors: 32,
            sweep_noise_sigma_db: 5.0,
            fade_prob: 0.003,
            fade_depth_db: 18.0,
            fade_len_ampdus: 3,
            ampdu_ms: 2.0,
            ba_overhead_ms: 1.0,
            probe_interval: 50,
        }
    }

    /// The ROG phone profile: a small handset array with noisier sweeps
    /// and much more frequent micro-motion fades (Fig. 1a shows it
    /// triggering BA >100 times per minute even when static).
    pub fn rog_phone() -> Self {
        Self {
            sectors: 16,
            sweep_noise_sigma_db: 3.0,
            fade_prob: 0.012,
            fade_depth_db: 22.0,
            fade_len_ampdus: 4,
            ampdu_ms: 2.0,
            ba_overhead_ms: 1.0,
            probe_interval: 50,
        }
    }
}

/// The three controlled scenarios of §3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CotsScenario {
    /// Client static, facing the AP, clear LOS (Fig. 1).
    Static {
        /// Tx–Rx distance, metres.
        distance_m: f64,
    },
    /// A human stands on the LOS for the whole session (Fig. 2).
    Blockage {
        /// Tx–Rx distance, metres.
        distance_m: f64,
    },
    /// Client walks away from the AP at walking speed, facing it
    /// (Fig. 3).
    Mobility {
        /// Starting distance, metres.
        start_m: f64,
        /// Walking speed, metres per second.
        speed_m_per_s: f64,
    },
}

impl CotsScenario {
    /// The scene at elapsed time `t_s`.
    pub fn scene_at(&self, t_s: f64) -> Scene {
        match *self {
            CotsScenario::Static { distance_m } => corridor_scene(distance_m),
            CotsScenario::Blockage { distance_m } => {
                let room = Environment::Lobby.room();
                let tx = Pose::new(Point::new(1.0, 7.0), 0.0);
                let rx = Pose::new(Point::new(1.0 + distance_m, 7.0), 180.0);
                let blocker = BlockerPlacement::MidPath.blocker(tx.position, rx.position, 0.0);
                Scene::new(room, tx, rx).with_blockers(vec![blocker])
            }
            CotsScenario::Mobility {
                start_m,
                speed_m_per_s,
            } => {
                // A walk away from the AP across the lobby. Real walks
                // are never radial: the client curves across the room
                // while facing the AP, so the AP-side bearing sweeps
                // tens of degrees over the walk — the reason Figs 3a/3b
                // show the Tx sector changing during motion even though
                // the client keeps facing the AP. Modelled as a curved
                // path in AP-polar coordinates: distance grows from
                // `start_m` to 20 m while the bearing sweeps 50° → 5°.
                let room = Environment::Lobby.room();
                let tx = Pose::new(Point::new(1.0, 2.0), 25.0);
                let walked = (speed_m_per_s * t_s).min(17.0);
                let d = start_m.max(2.5) + walked;
                let bearing = 50.0 - 45.0 * walked / 17.0;
                let rx_pos = Point::new(
                    (tx.position.x + d * bearing.to_radians().cos()).min(room.width_m - 0.5),
                    (tx.position.y + d * bearing.to_radians().sin()).min(room.depth_m - 0.5),
                );
                // The client faces the AP throughout the walk.
                let rx = Pose::new(rx_pos, rx_pos.bearing_deg(tx.position));
                Scene::new(room, tx, rx)
            }
        }
    }

    /// True when the geometry changes over time (requires re-tracing).
    pub fn is_time_varying(&self) -> bool {
        matches!(self, CotsScenario::Mobility { .. })
    }

    /// Multiplier on the transient-fade probability: a walking user
    /// induces far more small-scale fading (body sway, gait, ground
    /// bounce) than a static one.
    pub fn fade_multiplier(&self) -> f64 {
        if self.is_time_varying() {
            5.0
        } else {
            1.0
        }
    }
}

fn corridor_scene(distance_m: f64) -> Scene {
    let room = Environment::CorridorMedium.room();
    let y = room.depth_m / 2.0;
    let tx = Pose::new(Point::new(1.0, y), 0.0);
    let rx = Pose::new(Point::new(1.0 + distance_m, y), 180.0);
    Scene::new(room, tx, rx)
}

/// One sector-selection event (emitted when the active sector changes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorEvent {
    /// Time of the change, milliseconds from session start.
    pub t_ms: f64,
    /// New active sector; `None` is the "sector 255" lock failure of
    /// Fig. 2.
    pub sector: Option<BeamId>,
}

/// The outcome of one emulated COTS session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CotsRunLog {
    /// Sector changes over the session (first entry is the initial SLS).
    pub sector_timeline: Vec<SectorEvent>,
    /// How many times BA (a sector sweep) was triggered.
    pub ba_trigger_count: usize,
    /// Number of distinct sectors ever selected.
    pub distinct_sectors: usize,
    /// Session mean MAC throughput, Mbps.
    pub mean_tput_mbps: f64,
    /// Total bytes delivered.
    pub bytes_delivered: f64,
}

/// Configuration of one emulated session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CotsConfig {
    /// Device behaviour profile.
    pub profile: DeviceProfile,
    /// When `false`, BA is disabled (the LEDE-firmware manipulation of
    /// §3) and the sector stays fixed at `fixed_sector`.
    pub ba_enabled: bool,
    /// Sector to lock when BA is disabled; ignored otherwise.
    pub fixed_sector: BeamId,
    /// Session duration, seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Runs one emulated COTS session.
pub fn run_cots(scenario: &CotsScenario, cfg: &CotsConfig) -> CotsRunLog {
    let mut rng = libra_util::rng::rng_from_seed(cfg.seed);
    let table = McsTable::ieee80211ad();
    let model = ErrorModel::default();
    let codebook = Codebook::cots(cfg.profile.sectors);
    let quasi = BeamPattern::quasi_omni();

    let mut scene = scenario.scene_at(0.0);
    let mut rays = scene.rays();

    let mut t_ms = 0.0f64;
    let mut ba_count = 0usize;
    let mut timeline: Vec<SectorEvent> = Vec::new();
    let mut bytes = 0.0f64;

    // Initial association: one SLS (or the locked sector).
    let mut sector: Option<BeamId> = if cfg.ba_enabled {
        ba_count += 1;
        t_ms += cfg.profile.ba_overhead_ms;
        tx_sweep(
            &scene,
            &rays,
            &codebook,
            cfg.profile.sweep_noise_sigma_db,
            &mut rng,
        )
        .best_beam
    } else {
        Some(cfg.fixed_sector)
    };
    timeline.push(SectorEvent { t_ms, sector });

    let mut mcs: usize = table.max_index();
    // Fast recovery: the MCS that most recently carried near-lossless
    // traffic. After a loss burst ends, the device jumps straight back
    // (retry-chain behaviour of COTS rate adaptation) instead of
    // climbing one probe at a time.
    let mut last_good_mcs: usize = table.max_index();
    let mut in_loss_burst = false;
    // One jump-back attempt per burst; a failed attempt demotes
    // `last_good_mcs` and backs off.
    let mut jump_from: Option<usize> = None;
    let mut jump_cooldown: usize = 0;
    let mut fade_left = 0usize;
    let mut acks_since_probe = 0usize;
    let duration_ms = cfg.duration_s * 1000.0;

    while t_ms < duration_ms {
        // Geometry update for time-varying scenarios.
        if scenario.is_time_varying() {
            scene = scenario.scene_at(t_ms / 1000.0);
            rays = scene.rays();
        }

        // Fade process (more frequent while the user walks).
        if fade_left == 0 && rng.gen::<f64>() < cfg.profile.fade_prob * scenario.fade_multiplier() {
            fade_left = 1 + (rng.gen::<f64>() * 2.0 * cfg.profile.fade_len_ampdus as f64) as usize;
        }
        let fade_db = if fade_left > 0 {
            fade_left -= 1;
            cfg.profile.fade_depth_db
        } else {
            0.0
        };
        // A sweep triggered *now* measures the channel under the current
        // fade: the device cannot tell a fade from misalignment, so the
        // SLS it runs in response to a fade sees a uniformly degraded
        // channel and its pick is noise-dominated — the key reason COTS
        // BA lands on bad sectors (§3).
        let faded_scene = |scene: &Scene, fade: f64| -> Scene {
            let mut s = scene.clone();
            s.tx_power_dbm -= fade;
            s
        };

        let beam = match sector {
            Some(s) => codebook.beam(s),
            None => {
                // No lock: the device keeps sweeping until it locks.
                if cfg.ba_enabled {
                    ba_count += 1;
                    t_ms += cfg.profile.ba_overhead_ms;
                    sector = tx_sweep(
                        &faded_scene(&scene, fade_db),
                        &rays,
                        &codebook,
                        cfg.profile.sweep_noise_sigma_db,
                        &mut rng,
                    )
                    .best_beam;
                    timeline.push(SectorEvent { t_ms, sector });
                } else {
                    t_ms += cfg.profile.ampdu_ms;
                }
                continue;
            }
        };

        let resp = scene.response_with_rays(&rays, beam, &quasi);
        let snr = resp.snr_db - fade_db + 0.4 * standard_normal(&mut rng);
        let entry = table.get(mcs);
        let cdr = model.cdr(entry, snr, resp.rms_delay_spread_ns());
        // Block ACK missing when essentially nothing decodes.
        let ack = cdr > 0.005;

        t_ms += cfg.profile.ampdu_ms;
        jump_cooldown = jump_cooldown.saturating_sub(1);
        if ack {
            bytes += entry.rate_mbps * 1e6 * (cfg.profile.ampdu_ms / 1000.0) * cdr / 8.0;
            acks_since_probe += 1;
            jump_from = None; // a jump-back that gets ACKed sticks
            if cdr > 0.9 {
                last_good_mcs = mcs;
            }
            if in_loss_burst {
                // The burst is over: retry the last known-good MCS once.
                // If the channel really degraded, the next missing ACK
                // demotes `last_good_mcs` and the ladder takes over.
                in_loss_burst = false;
                if jump_cooldown == 0 && last_good_mcs > mcs {
                    jump_from = Some(mcs);
                    mcs = last_good_mcs;
                }
            }
            // Occasional upward probe.
            if acks_since_probe >= cfg.profile.probe_interval && mcs < table.max_index() {
                acks_since_probe = 0;
                let up = table.get(mcs + 1);
                let cdr_up = model.cdr(up, snr, resp.rms_delay_spread_ns());
                if cdr_up * up.rate_mbps > cdr * entry.rate_mbps {
                    mcs += 1;
                }
            }
        } else if let Some(from) = jump_from.take() {
            // The jump-back failed: the old "good" rate is gone. Demote
            // and back off before trying again.
            last_good_mcs = from;
            jump_cooldown = 150;
            mcs = from;
            in_loss_burst = true;
        } else if mcs > 0 {
            // RA: lower the MCS on frame loss.
            in_loss_burst = true;
            mcs -= 1;
        } else if cfg.ba_enabled {
            // No working MCS: trigger BA.
            ba_count += 1;
            t_ms += cfg.profile.ba_overhead_ms;
            let new_sector = tx_sweep(
                &faded_scene(&scene, fade_db),
                &rays,
                &codebook,
                cfg.profile.sweep_noise_sigma_db,
                &mut rng,
            )
            .best_beam;
            if new_sector != sector {
                timeline.push(SectorEvent {
                    t_ms,
                    sector: new_sector,
                });
            }
            sector = new_sector;
            // After re-training the device retries at its recent rate;
            // the per-loss ladder handles a sector that cannot carry it.
            mcs = last_good_mcs;
            in_loss_burst = false;
        }
        // With BA disabled and MCS 0 failing we just keep trying MCS 0.
    }

    let mut distinct: Vec<Option<BeamId>> = timeline.iter().map(|e| e.sector).collect();
    distinct.sort();
    distinct.dedup();

    CotsRunLog {
        ba_trigger_count: ba_count,
        distinct_sectors: distinct.len(),
        mean_tput_mbps: bytes * 8.0 / 1e6 / cfg.duration_s,
        bytes_delivered: bytes,
        sector_timeline: timeline,
    }
}

/// Runs the BA-disabled baseline for every sector and returns the log of
/// the best ("manually discovered by sequentially trying all sectors",
/// §3) together with the winning sector id.
pub fn best_fixed_sector_run(
    scenario: &CotsScenario,
    profile: &DeviceProfile,
    duration_s: f64,
    seed: u64,
) -> (BeamId, CotsRunLog) {
    let mut best: Option<(BeamId, CotsRunLog)> = None;
    for s in 0..profile.sectors {
        let cfg = CotsConfig {
            profile: *profile,
            ba_enabled: false,
            fixed_sector: s,
            duration_s,
            // Same seed for every sector: the comparison isolates sector
            // quality instead of rewarding lucky fade realizations.
            seed,
        };
        let log = run_cots(scenario, &cfg);
        if best
            .as_ref()
            .map_or(true, |(_, b)| log.bytes_delivered > b.bytes_delivered)
        {
            best = Some((s, log));
        }
    }
    best.expect("at least one sector")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(profile: DeviceProfile, scenario: CotsScenario, seed: u64) -> CotsRunLog {
        let cfg = CotsConfig {
            profile,
            ba_enabled: true,
            fixed_sector: 0,
            duration_s: 10.0,
            seed,
        };
        run_cots(&scenario, &cfg)
    }

    #[test]
    fn static_phone_flaps() {
        let log = quick(
            DeviceProfile::rog_phone(),
            CotsScenario::Static { distance_m: 9.0 },
            1,
        );
        // Fig. 1a: >100 triggers per 60 s and ~6 sectors → expect ≥ 10
        // triggers and ≥ 2 sectors in 10 s.
        assert!(
            log.ba_trigger_count >= 10,
            "triggers {}",
            log.ba_trigger_count
        );
        assert!(
            log.distinct_sectors >= 2,
            "sectors {}",
            log.distinct_sectors
        );
    }

    #[test]
    fn static_ap_flaps_less_than_phone() {
        let phone = quick(
            DeviceProfile::rog_phone(),
            CotsScenario::Static { distance_m: 9.0 },
            2,
        );
        let ap = quick(
            DeviceProfile::talon_ap(),
            CotsScenario::Static { distance_m: 9.0 },
            2,
        );
        assert!(
            ap.ba_trigger_count < phone.ba_trigger_count,
            "ap {} !< phone {}",
            ap.ba_trigger_count,
            phone.ba_trigger_count
        );
    }

    #[test]
    fn static_link_carries_traffic() {
        let log = quick(
            DeviceProfile::talon_ap(),
            CotsScenario::Static { distance_m: 9.0 },
            3,
        );
        assert!(log.mean_tput_mbps > 500.0, "tput {}", log.mean_tput_mbps);
    }

    #[test]
    fn blockage_still_delivers_via_reflection() {
        let log = quick(
            DeviceProfile::talon_ap(),
            CotsScenario::Blockage { distance_m: 8.0 },
            4,
        );
        assert!(log.mean_tput_mbps > 100.0, "tput {}", log.mean_tput_mbps);
    }

    #[test]
    fn disabling_ba_beats_ba_when_static() {
        // Fig. 1c: locking the best sector beats leaving BA on.
        let scenario = CotsScenario::Static { distance_m: 9.0 };
        let profile = DeviceProfile::talon_ap();
        let with_ba = quick(profile, scenario, 5);
        let (_, fixed) = best_fixed_sector_run(&scenario, &profile, 10.0, 5);
        assert!(
            fixed.bytes_delivered > with_ba.bytes_delivered,
            "fixed {} !> ba {}",
            fixed.bytes_delivered,
            with_ba.bytes_delivered
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let scenario = CotsScenario::Static { distance_m: 9.0 };
        let cfg = CotsConfig {
            profile: DeviceProfile::rog_phone(),
            ba_enabled: true,
            fixed_sector: 0,
            duration_s: 3.0,
            seed: 42,
        };
        let a = run_cots(&scenario, &cfg);
        let b = run_cots(&scenario, &cfg);
        assert_eq!(a.ba_trigger_count, b.ba_trigger_count);
        assert_eq!(a.bytes_delivered, b.bytes_delivered);
    }

    #[test]
    fn mobility_scene_moves_rx_and_changes_bearing() {
        let s = CotsScenario::Mobility {
            start_m: 2.0,
            speed_m_per_s: 1.0,
        };
        let s0 = s.scene_at(0.0);
        let s10 = s.scene_at(10.0);
        let d0 = s0.tx.position.distance(s0.rx.position);
        let d10 = s10.tx.position.distance(s10.rx.position);
        assert!(d10 > d0 + 5.0, "client should move away: {d0} → {d10}");
        // The Tx-side bearing drifts by at least one COTS sector width.
        let b0 = s0.tx.position.bearing_deg(s0.rx.position);
        let b10 = s10.tx.position.bearing_deg(s10.rx.position);
        assert!((b0 - b10).abs() > 4.0, "bearing should drift: {b0} → {b10}");
        // The client keeps facing the AP.
        let facing = s10
            .rx
            .local_angle_deg(s10.rx.position.bearing_deg(s10.tx.position));
        assert!(facing.abs() < 1.0);
    }
}
