//! Sector-level sweep (SLS) beam-training procedures.
//!
//! Three procedures from the paper (§2):
//!
//! * [`exhaustive_sweep`] — the naive O(N²) search over all Tx×Rx beam
//!   pairs. This is what the dataset collection methodology emulates
//!   ("we first performed a SLS to collect SNR measurements for all 625
//!   (25 × 25) beam pairs and selected the best beam pair based on SNR",
//!   §5.1) and what the high-overhead directional-reception BA variants
//!   of §8.1 use.
//! * [`tx_sweep`] — Tx-side-only training with quasi-omni reception,
//!   the O(N) procedure COTS devices use.
//! * [`separate_sweep`] — 802.11ad-style O(N) training of each side
//!   separately (Tx SLS with the other side quasi-omni, then Rx SLS).
//!
//! Every sweep measurement is the *received sounding power* over the
//! thermal floor (`BeamPairResponse::sweep_metric_db`) — a receiver
//! cannot separate signal from co-channel interference within a short
//! sounding window — plus Gaussian measurement noise.
//! Because codebook beams overlap heavily (25°–35° beamwidths at 5°
//! spacing), several beams are near-equal on a clean link, and
//! measurement noise makes repeated sweeps pick different winners — the
//! root cause of the sector flapping the paper demonstrates on COTS
//! hardware (§3, Figs 1–3).

use libra_arrays::{BeamId, BeamPattern, Codebook};
use libra_channel::{RayPath, Scene};
use libra_obs as obs;
use libra_phy::trace::standard_normal;
use rand::Rng;

/// SNR threshold below which a swept beam (pair) is considered unusable;
/// a sweep in which no candidate clears it reports a failure — the
/// "sector ID 255" of the paper's Fig. 2.
pub const SWEEP_LOCK_THRESHOLD_DB: f64 = 0.0;

/// Result of an exhaustive O(N²) pair sweep.
#[derive(Debug, Clone)]
pub struct PairSweepResult {
    /// Measured SNR per `[tx][rx]` beam pair, dB (with measurement noise).
    pub snr_db: Vec<Vec<f64>>,
    /// The measured-best pair, or `None` when nothing cleared the lock
    /// threshold.
    pub best_pair: Option<(BeamId, BeamId)>,
    /// Measured SNR of the best pair, dB.
    pub best_snr_db: f64,
}

/// Result of a one-sided sweep.
#[derive(Debug, Clone)]
pub struct TxSweepResult {
    /// Measured SNR per Tx beam (Rx in quasi-omni), dB.
    pub snr_db: Vec<f64>,
    /// Measured-best Tx beam, or `None` on lock failure.
    pub best_beam: Option<BeamId>,
    /// Measured SNR of the best beam, dB.
    pub best_snr_db: f64,
}

/// Exhaustive O(N²) sweep of all Tx×Rx beam pairs.
pub fn exhaustive_sweep(
    scene: &Scene,
    rays: &[RayPath],
    tx_cb: &Codebook,
    rx_cb: &Codebook,
    noise_sigma_db: f64,
    rng: &mut impl Rng,
) -> PairSweepResult {
    obs::counter("mac.sweep.measurements", (tx_cb.len() * rx_cb.len()) as u64);
    let mut snr = vec![vec![f64::NEG_INFINITY; rx_cb.len()]; tx_cb.len()];
    let mut best = f64::NEG_INFINITY;
    let mut best_pair = None;
    for (ti, tb) in tx_cb.iter() {
        for (ri, rb) in rx_cb.iter() {
            let resp = scene.response_with_rays(rays, tb, rb);
            let measured = resp.sweep_metric_db() + noise_sigma_db * standard_normal(rng);
            snr[ti][ri] = measured;
            if measured > best {
                best = measured;
                best_pair = Some((ti, ri));
            }
        }
    }
    if best < SWEEP_LOCK_THRESHOLD_DB {
        obs::counter("mac.sweep.lock_failures", 1);
        best_pair = None;
    }
    PairSweepResult {
        snr_db: snr,
        best_pair,
        best_snr_db: best,
    }
}

/// Tx-side O(N) sweep with the Rx in quasi-omni (the COTS procedure).
pub fn tx_sweep(
    scene: &Scene,
    rays: &[RayPath],
    tx_cb: &Codebook,
    noise_sigma_db: f64,
    rng: &mut impl Rng,
) -> TxSweepResult {
    obs::counter("mac.sweep.measurements", tx_cb.len() as u64);
    let quasi = BeamPattern::quasi_omni();
    let mut snr = vec![f64::NEG_INFINITY; tx_cb.len()];
    let mut best = f64::NEG_INFINITY;
    let mut best_beam = None;
    for (ti, tb) in tx_cb.iter() {
        let resp = scene.response_with_rays(rays, tb, &quasi);
        let measured = resp.sweep_metric_db() + noise_sigma_db * standard_normal(rng);
        snr[ti] = measured;
        if measured > best {
            best = measured;
            best_beam = Some(ti);
        }
    }
    if best < SWEEP_LOCK_THRESHOLD_DB {
        obs::counter("mac.sweep.lock_failures", 1);
        best_beam = None;
    }
    TxSweepResult {
        snr_db: snr,
        best_beam,
        best_snr_db: best,
    }
}

/// 802.11ad-style separate training: Tx SLS under quasi-omni reception,
/// then an Rx SLS with the chosen Tx beam. O(N + M) measurements.
/// Returns the chosen pair, or `None` when the Tx stage fails to lock.
pub fn separate_sweep(
    scene: &Scene,
    rays: &[RayPath],
    tx_cb: &Codebook,
    rx_cb: &Codebook,
    noise_sigma_db: f64,
    rng: &mut impl Rng,
) -> Option<(BeamId, BeamId)> {
    let tx_stage = tx_sweep(scene, rays, tx_cb, noise_sigma_db, rng);
    let tx_beam = tx_stage.best_beam?;
    obs::counter("mac.sweep.measurements", rx_cb.len() as u64);
    let tb = tx_cb.beam(tx_beam);
    let mut best = f64::NEG_INFINITY;
    let mut best_rx = None;
    for (ri, rb) in rx_cb.iter() {
        let resp = scene.response_with_rays(rays, tb, rb);
        let measured = resp.sweep_metric_db() + noise_sigma_db * standard_normal(rng);
        if measured > best {
            best = measured;
            best_rx = Some(ri);
        }
    }
    if best < SWEEP_LOCK_THRESHOLD_DB {
        obs::counter("mac.sweep.lock_failures", 1);
        return None;
    }
    best_rx.map(|r| (tx_beam, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_channel::{Material, Point, Pose, Room};
    use libra_util::rng::rng_from_seed;

    fn scene() -> Scene {
        let room = Room::rectangular("t", 30.0, 3.0, [Material::Drywall; 4]);
        Scene::new(
            room,
            Pose::new(Point::new(1.0, 1.5), 0.0),
            Pose::new(Point::new(11.0, 1.5), 180.0),
        )
    }

    #[test]
    fn noiseless_exhaustive_sweep_finds_boresight() {
        let s = scene();
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(1);
        let res = exhaustive_sweep(&s, &rays, &cb, &cb, 0.0, &mut rng);
        let (t, r) = res.best_pair.expect("locked");
        // LOS at 0° from Tx, 180° from Rx (whose boresight faces the Tx):
        // both ends should pick a beam near boresight (id 12 ± 1).
        assert!((11..=13).contains(&t), "tx beam {t}");
        assert!((11..=13).contains(&r), "rx beam {r}");
        assert!(res.best_snr_db > 25.0);
    }

    #[test]
    fn sweep_matrix_dimensions() {
        let s = scene();
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(2);
        let res = exhaustive_sweep(&s, &rays, &cb, &cb, 0.5, &mut rng);
        assert_eq!(res.snr_db.len(), 25);
        assert!(res.snr_db.iter().all(|row| row.len() == 25));
        // 625 measurements, as the paper's collection methodology states.
        assert_eq!(res.snr_db.iter().map(Vec::len).sum::<usize>(), 625);
    }

    #[test]
    fn tx_sweep_agrees_with_geometry() {
        let s = scene();
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(3);
        let res = tx_sweep(&s, &rays, &cb, 0.0, &mut rng);
        let b = res.best_beam.expect("locked");
        assert!((11..=13).contains(&b), "tx beam {b}");
    }

    #[test]
    fn measurement_noise_causes_flapping() {
        // With realistic noise, repeated sweeps pick multiple distinct
        // winners — the §3 sector-flapping phenomenon.
        let s = scene();
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(4);
        let mut winners = std::collections::HashSet::new();
        for _ in 0..40 {
            let res = tx_sweep(&s, &rays, &cb, 2.0, &mut rng);
            winners.insert(res.best_beam);
        }
        assert!(winners.len() >= 2, "no flapping: {winners:?}");
    }

    #[test]
    fn hopeless_link_fails_to_lock() {
        // Rx facing away at extreme range in an absorbing room.
        let room = Room::rectangular("t", 200.0, 3.0, [Material::Brick; 4]);
        let mut s = Scene::new(
            room,
            Pose::new(Point::new(1.0, 1.5), 0.0),
            Pose::new(Point::new(199.0, 1.5), 0.0), // facing away
        );
        s.tx_power_dbm = -30.0;
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(5);
        let res = exhaustive_sweep(&s, &rays, &cb, &cb, 0.0, &mut rng);
        assert!(res.best_pair.is_none(), "snr {}", res.best_snr_db);
    }

    #[test]
    fn separate_sweep_returns_reasonable_pair() {
        let s = scene();
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(6);
        let (t, r) = separate_sweep(&s, &rays, &cb, &cb, 0.0, &mut rng).expect("locked");
        assert!((10..=14).contains(&t));
        assert!((10..=14).contains(&r));
    }
}
