//! TDMA airtime arbitration for one AP cell.
//!
//! 802.11ad service periods are scheduled: within each beacon interval
//! the AP hands out contention-free airtime. We model the data-transfer
//! interval as a fixed frame of [`FRAME_SLOTS`] slots that all
//! associated stations share:
//!
//! * A station running a **BA sector sweep** is allocated
//!   [`BA_SLOTS`] slots of every frame for the duration of the sweep
//!   (the SSW exchange pre-empts data service periods). Those slots
//!   are real airtime the other stations lose — the mechanism that
//!   makes one station's BA decision a *cell-wide* cost in the
//!   multi-station simulator.
//! * The remaining slots are split evenly across the data stations.
//!
//! Shares are exact rationals evaluated in a fixed order (slot counts
//! are integers; the final division is one f64 op), and membership
//! lives in `BTreeSet`s, so a share query is a pure function of the
//! set of joined/sweeping stations — no iteration-order or timing
//! dependence. That property is load-bearing: the multi-station
//! engine's bitwise-determinism contract scales per-frame byte deltas
//! by these shares.

use std::collections::BTreeSet;

/// Slots per TDMA frame (shares are quantized to 1/100ths).
pub const FRAME_SLOTS: u32 = 100;

/// Slots of every frame a BA sweep occupies while it runs.
pub const BA_SLOTS: u32 = 30;

/// Deterministic airtime arbiter for the stations of one AP.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TdmaArbiter {
    /// Every associated station.
    members: BTreeSet<u32>,
    /// Subset currently running a BA sweep.
    sweeping: BTreeSet<u32>,
}

impl TdmaArbiter {
    /// An arbiter with no stations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associates `station`; returns `false` if it was already joined.
    pub fn join(&mut self, station: u32) -> bool {
        self.members.insert(station)
    }

    /// Disassociates `station` (also clears any sweep state).
    pub fn leave(&mut self, station: u32) {
        self.members.remove(&station);
        self.sweeping.remove(&station);
    }

    /// Marks `station` as running a BA sweep.
    pub fn ba_start(&mut self, station: u32) {
        if self.members.contains(&station) {
            self.sweeping.insert(station);
        }
    }

    /// Clears `station`'s sweep state.
    pub fn ba_end(&mut self, station: u32) {
        self.sweeping.remove(&station);
    }

    /// Number of associated stations.
    pub fn n_stations(&self) -> usize {
        self.members.len()
    }

    /// Number of stations currently sweeping.
    pub fn n_sweeping(&self) -> usize {
        self.sweeping.len()
    }

    /// Whether `station` is associated.
    pub fn contains(&self, station: u32) -> bool {
        self.members.contains(&station)
    }

    /// Slots of each frame allocated to every sweeping station. Capped
    /// so that many concurrent sweeps degrade gracefully instead of
    /// over-committing the frame.
    fn ba_slots_each(&self) -> u32 {
        let nb = self.sweeping.len() as u32;
        FRAME_SLOTS.checked_div(nb).map_or(0, |s| BA_SLOTS.min(s))
    }

    /// Fraction of airtime `station` gets per frame, in `[0, 1]`.
    ///
    /// Sweeping stations get their sweep allocation (they deliver no
    /// data with it — the slots are the overhead). Data stations split
    /// what remains evenly. A station that is not associated gets 0.
    pub fn share(&self, station: u32) -> f64 {
        if !self.members.contains(&station) {
            return 0.0;
        }
        let ba_each = self.ba_slots_each();
        if self.sweeping.contains(&station) {
            return ba_each as f64 / FRAME_SLOTS as f64;
        }
        let n_data = (self.members.len() - self.sweeping.len()) as u32;
        if n_data == 0 {
            return 0.0;
        }
        let remaining = FRAME_SLOTS - ba_each * self.sweeping.len() as u32;
        (remaining as f64 / n_data as f64) / FRAME_SLOTS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_station_owns_the_frame() {
        let mut a = TdmaArbiter::new();
        assert!(a.join(7));
        assert!(!a.join(7));
        assert_eq!(a.share(7), 1.0);
        assert_eq!(a.share(8), 0.0);
    }

    #[test]
    fn data_stations_split_evenly() {
        let mut a = TdmaArbiter::new();
        for s in 0..4 {
            a.join(s);
        }
        for s in 0..4 {
            assert!((a.share(s) - 0.25).abs() < 1e-12);
        }
        let total: f64 = (0..4).map(|s| a.share(s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_costs_everyone_airtime() {
        let mut a = TdmaArbiter::new();
        for s in 0..3 {
            a.join(s);
        }
        let before = a.share(1);
        a.ba_start(0);
        // Sweeper holds its BA allocation; the two data stations split
        // the remaining 70 slots.
        assert!((a.share(0) - BA_SLOTS as f64 / 100.0).abs() < 1e-12);
        assert!((a.share(1) - 0.35).abs() < 1e-12);
        assert!(a.share(1) > before); // 1/3 → 35/100
        a.ba_end(0);
        assert!((a.share(0) - a.share(1)).abs() < 1e-12);
    }

    #[test]
    fn many_sweeps_never_overcommit() {
        let mut a = TdmaArbiter::new();
        for s in 0..8 {
            a.join(s);
            a.ba_start(s);
        }
        let total: f64 = (0..8).map(|s| a.share(s)).sum();
        assert!(total <= 1.0 + 1e-12, "total share {total}");
        // 8 sweeps × min(30, 100/8 = 12) slots each.
        assert!((a.share(0) - 0.12).abs() < 1e-12);
    }

    #[test]
    fn leave_clears_sweep_state() {
        let mut a = TdmaArbiter::new();
        a.join(1);
        a.join(2);
        a.ba_start(1);
        a.leave(1);
        assert_eq!(a.n_stations(), 1);
        assert_eq!(a.n_sweeping(), 0);
        assert_eq!(a.share(2), 1.0);
        // Sweep marks on non-members are ignored.
        a.ba_start(99);
        assert_eq!(a.n_sweeping(), 0);
    }

    #[test]
    fn share_is_a_pure_function_of_membership() {
        // Same membership reached through different histories → same
        // shares (the determinism property the multisim engine needs).
        let mut a = TdmaArbiter::new();
        let mut b = TdmaArbiter::new();
        for s in [3, 1, 2] {
            a.join(s);
        }
        for s in [2, 3, 9, 1] {
            b.join(s);
        }
        b.leave(9);
        a.ba_start(2);
        b.ba_start(2);
        for s in [1, 2, 3] {
            assert_eq!(a.share(s), b.share(s));
        }
        assert_eq!(a, b);
    }
}
