//! Adaptation overhead models (paper §8.1).
//!
//! **BA overhead.** The time to complete beam training depends on the
//! beamwidth (number of beams to test) and the algorithm. The paper
//! evaluates four realistic values:
//!
//! | preset | duration | provenance |
//! |---|---|---|
//! | `QuasiOmni30` | 0.5 ms | O(N) COTS-style sweep, 30° beams (Eqn. 2 of [24]) |
//! | `QuasiOmni3`  | 5 ms   | O(N) sweep, 3° beams — the narrowest 802.11ad allows |
//! | `Directional9`| 150 ms | O(N²) both-sides training, 9° beams (Fig. 11 of [56]) |
//! | `Directional7`| 250 ms | O(N²) both-sides training, 7° beams |
//!
//! **RA overhead.** RA probes MCSs by sending one aggregated frame at
//! each; the time to restore a link via RA is
//! `MCSs traversed × frame aggregation time` (FAT ∈ {2 ms, 10 ms}).
//!
//! **Worst-case delay.** `D_max = N_MCS·d_fr + d_BA + N_MCS·d_fr`
//! (§5.2): a full failed downward RA ladder, then BA, then another full
//! ladder that only succeeds at MCS 0.

use libra_phy::{FrameConfig, McsTable};
use serde::{Deserialize, Serialize};

/// The four BA-overhead operating points of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaOverheadPreset {
    /// 0.5 ms — O(N) quasi-omni sweep with 30° beams (today's COTS).
    QuasiOmni30,
    /// 5 ms — O(N) quasi-omni sweep with 3° beams.
    QuasiOmni3,
    /// 150 ms — O(N²) directional-reception training with 9° beams.
    Directional9,
    /// 250 ms — O(N²) directional-reception training with 7° beams.
    Directional7,
}

impl BaOverheadPreset {
    /// All four presets, in increasing-overhead order.
    pub const ALL: [BaOverheadPreset; 4] = [
        BaOverheadPreset::QuasiOmni30,
        BaOverheadPreset::QuasiOmni3,
        BaOverheadPreset::Directional9,
        BaOverheadPreset::Directional7,
    ];

    /// The two presets shown in the multi-impairment figures (space
    /// limits trimmed the paper's Figs 12–13 to these).
    pub const FIGURE12: [BaOverheadPreset; 2] = [
        BaOverheadPreset::QuasiOmni30,
        BaOverheadPreset::Directional7,
    ];

    /// BA duration, milliseconds.
    pub fn duration_ms(self) -> f64 {
        match self {
            BaOverheadPreset::QuasiOmni30 => 0.5,
            BaOverheadPreset::QuasiOmni3 => 5.0,
            BaOverheadPreset::Directional9 => 150.0,
            BaOverheadPreset::Directional7 => 250.0,
        }
    }

    /// The α weight the paper pairs with this overhead in the utility
    /// metric: 0.7 (throughput-leaning) for the low-overhead presets,
    /// 0.5 for the high-overhead ones (§8.1).
    pub fn paper_alpha(self) -> f64 {
        match self {
            BaOverheadPreset::QuasiOmni30 | BaOverheadPreset::QuasiOmni3 => 0.7,
            BaOverheadPreset::Directional9 | BaOverheadPreset::Directional7 => 0.5,
        }
    }

    /// Short label used in figure/table output.
    pub fn label(self) -> &'static str {
        match self {
            BaOverheadPreset::QuasiOmni30 => "BA 0.5ms",
            BaOverheadPreset::QuasiOmni3 => "BA 5ms",
            BaOverheadPreset::Directional9 => "BA 150ms",
            BaOverheadPreset::Directional7 => "BA 250ms",
        }
    }
}

/// The protocol parameter grid of one evaluation cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolParams {
    /// BA overhead preset.
    pub ba: BaOverheadPreset,
    /// Frame aggregation time, milliseconds (2 or 10 in the paper).
    pub fat_ms: f64,
}

impl ProtocolParams {
    /// Builds the params and derived frame config.
    pub fn new(ba: BaOverheadPreset, fat_ms: f64) -> Self {
        Self { ba, fat_ms }
    }

    /// The full 4×2 grid of §8.2.
    pub fn grid() -> Vec<ProtocolParams> {
        let mut v = Vec::new();
        for ba in BaOverheadPreset::ALL {
            for fat in [2.0, 10.0] {
                v.push(ProtocolParams::new(ba, fat));
            }
        }
        v
    }

    /// Frame config at this FAT.
    pub fn frame_config(&self) -> FrameConfig {
        FrameConfig::with_fat_ms(self.fat_ms)
    }

    /// BA duration, ms.
    pub fn ba_ms(&self) -> f64 {
        self.ba.duration_ms()
    }

    /// RA overhead for probing `mcs_count` MCSs, ms.
    pub fn ra_ms(&self, mcs_count: usize) -> f64 {
        mcs_count as f64 * self.fat_ms
    }

    /// Worst-case link recovery delay `D_max` (§5.2), ms.
    pub fn dmax_ms(&self, table: &McsTable) -> f64 {
        let n = table.len() as f64;
        n * self.fat_ms + self.ba_ms() + n * self.fat_ms
    }

    /// Label like `"BA 0.5ms, FAT 2ms"`.
    pub fn label(&self) -> String {
        format!("{}, FAT {:.0}ms", self.ba.label(), self.fat_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_durations_match_paper() {
        assert_eq!(BaOverheadPreset::QuasiOmni30.duration_ms(), 0.5);
        assert_eq!(BaOverheadPreset::QuasiOmni3.duration_ms(), 5.0);
        assert_eq!(BaOverheadPreset::Directional9.duration_ms(), 150.0);
        assert_eq!(BaOverheadPreset::Directional7.duration_ms(), 250.0);
    }

    #[test]
    fn alphas_match_paper() {
        assert_eq!(BaOverheadPreset::QuasiOmni30.paper_alpha(), 0.7);
        assert_eq!(BaOverheadPreset::Directional7.paper_alpha(), 0.5);
    }

    #[test]
    fn grid_has_eight_cells() {
        let g = ProtocolParams::grid();
        assert_eq!(g.len(), 8);
        // All combinations distinct.
        let set: std::collections::HashSet<String> = g.iter().map(|p| p.label()).collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn dmax_formula() {
        let t = McsTable::x60(); // 9 MCSs
        let p = ProtocolParams::new(BaOverheadPreset::Directional7, 10.0);
        // 9·10 + 250 + 9·10 = 430 ms
        assert_eq!(p.dmax_ms(&t), 430.0);
    }

    #[test]
    fn ra_overhead_scales_with_probes() {
        let p = ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0);
        assert_eq!(p.ra_ms(0), 0.0);
        assert_eq!(p.ra_ms(5), 10.0);
    }
}
