//! 802.11ad beamforming-training (BFT) protocol accounting.
//!
//! The evaluation's BA-overhead presets (0.5 ms, 5 ms, 150 ms, 250 ms —
//! `BaOverheadPreset`) are quoted by the paper from two sources: Eqn. (2)
//! of Haider & Knightly [24] for the O(N) quasi-omni sweeps, and Fig. 11
//! of Sur et al. [56] for the O(N²) directional-reception search. This
//! module reconstructs those numbers from first principles, so the
//! presets are *derived*, not folklore:
//!
//! * **SSW frame time.** Sector-sweep frames ride the control PHY
//!   (MCS 0, 27.5 Mbps, spread DBPSK). A 26-byte SSW frame plus the
//!   control-PHY preamble and header comes to ≈ 15.8 µs; frames within a
//!   sweep are separated by SBIFS (1 µs).
//! * **O(N) standard SLS** (quasi-omni reception): the initiator sweeps
//!   all its Tx sectors, the responder sweeps back, then SSW-Feedback
//!   and SSW-ACK (MBIFS-separated) close the exchange.
//! * **O(N²) exhaustive pair training** (directional reception): every
//!   Tx×Rx pair must be sounded; on phased-array platforms each pair
//!   measurement costs the SSW time *plus* a per-measurement settling/
//!   reporting overhead (the [56] testbed measures ≈ 93 µs per pair
//!   including RSSI readback).
//!
//! The module also models the 802.11ad **beacon interval** structure
//! (BTI / A-BFT / DTI) far enough to answer the scheduling question that
//! matters for link recovery: *how long until the next training
//! opportunity?*

use serde::{Deserialize, Serialize};

/// Control-PHY (MCS 0) data rate, Mbps — the rate of all SSW frames.
pub const CONTROL_PHY_RATE_MBPS: f64 = 27.5;

/// SSW frame body length, bytes (802.11ad Sector Sweep frame).
pub const SSW_FRAME_BYTES: f64 = 26.0;

/// Control-PHY preamble + header duration, µs.
pub const CONTROL_PHY_PREAMBLE_US: f64 = 8.2;

/// Short beamforming inter-frame space, µs.
pub const SBIFS_US: f64 = 1.0;

/// Medium beamforming inter-frame space, µs.
pub const MBIFS_US: f64 = 9.0;

/// Per-pair measurement overhead of an exhaustive directional search on
/// a phased-array testbed (beam settling + RSSI readback), µs. Measured
/// ≈ 93 µs/pair by the X60-class platform in [56].
pub const PAIR_MEASUREMENT_OVERHEAD_US: f64 = 93.0;

/// Duration of one SSW frame on air, µs.
pub fn ssw_frame_us() -> f64 {
    CONTROL_PHY_PREAMBLE_US + SSW_FRAME_BYTES * 8.0 / CONTROL_PHY_RATE_MBPS
}

/// Number of sectors needed to cover `fov_deg` of azimuth with
/// `beamwidth_deg`-wide beams (ceil).
pub fn sectors_for_beamwidth(beamwidth_deg: f64, fov_deg: f64) -> usize {
    assert!(beamwidth_deg > 0.0 && fov_deg > 0.0);
    (fov_deg / beamwidth_deg).ceil() as usize
}

/// One-sided transmit sector sweep duration (N frames, SBIFS-spaced), µs.
pub fn tx_sweep_us(n_sectors: usize) -> f64 {
    assert!(n_sectors >= 1);
    n_sectors as f64 * ssw_frame_us() + (n_sectors - 1) as f64 * SBIFS_US
}

/// Full standard-compliant O(N) SLS with quasi-omni reception:
/// initiator sweep + responder sweep + SSW-Feedback + SSW-ACK, µs.
pub fn sls_quasi_omni_us(n_initiator: usize, n_responder: usize) -> f64 {
    tx_sweep_us(n_initiator)
        + MBIFS_US
        + tx_sweep_us(n_responder)
        + MBIFS_US
        + ssw_frame_us() // SSW-Feedback
        + MBIFS_US
        + ssw_frame_us() // SSW-ACK
}

/// Exhaustive O(N²) pair training with directional reception, µs.
/// Dominated by the per-pair measurement overhead on real arrays.
pub fn pair_training_us(n_tx: usize, n_rx: usize) -> f64 {
    (n_tx * n_rx) as f64 * (ssw_frame_us() + PAIR_MEASUREMENT_OVERHEAD_US)
}

/// Derives the BA duration (ms) for a quasi-omni O(N) deployment with
/// the given beamwidth (full-circle sector fan, both sides sweeping).
pub fn derive_quasi_omni_ba_ms(beamwidth_deg: f64) -> f64 {
    let n = sectors_for_beamwidth(beamwidth_deg, 360.0);
    sls_quasi_omni_us(n, n) / 1000.0
}

/// Derives the BA duration (ms) for a directional O(N²) deployment with
/// the given beamwidth over the ±60° field of view of a typical array.
pub fn derive_directional_ba_ms(beamwidth_deg: f64) -> f64 {
    // Narrow-beam systems train over the full circle (the [56]
    // methodology sweeps the entire azimuth).
    let n = sectors_for_beamwidth(beamwidth_deg, 360.0);
    pair_training_us(n, n) / 1000.0
}

// ---------------------------------------------------------------------
// Beacon interval scheduling.
// ---------------------------------------------------------------------

/// The 802.11ad beacon-interval layout relevant to beam training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeaconInterval {
    /// Beacon interval length, µs (typically ~100 ms; 102 400 µs).
    pub bi_us: f64,
    /// Beacon transmission interval (AP sector sweep), µs.
    pub bti_us: f64,
    /// Number of association-beamforming-training slots.
    pub a_bft_slots: usize,
    /// Duration of one A-BFT slot, µs (a responder sector sweep + ack).
    pub a_bft_slot_us: f64,
}

impl BeaconInterval {
    /// A typical 802.11ad configuration: 102.4 ms BI, 8 A-BFT slots,
    /// AP with `ap_sectors` sectors, stations with `sta_sectors`.
    pub fn typical(ap_sectors: usize, sta_sectors: usize) -> Self {
        Self {
            bi_us: 102_400.0,
            bti_us: tx_sweep_us(ap_sectors),
            a_bft_slots: 8,
            a_bft_slot_us: tx_sweep_us(sta_sectors) + MBIFS_US + ssw_frame_us(),
        }
    }

    /// Total A-BFT duration, µs.
    pub fn a_bft_us(&self) -> f64 {
        self.a_bft_slots as f64 * self.a_bft_slot_us
    }

    /// Start of the data-transfer interval within the BI, µs.
    pub fn dti_start_us(&self) -> f64 {
        self.bti_us + MBIFS_US + self.a_bft_us()
    }

    /// Fraction of the beacon interval spent on training overhead.
    pub fn training_overhead_fraction(&self) -> f64 {
        self.dti_start_us() / self.bi_us
    }

    /// Given a link break at `t_us` within the beacon interval, the wait
    /// until the next *scheduled* training opportunity (the next BTI).
    /// In-DTI on-demand training (what LiBRA assumes) avoids this wait —
    /// this quantifies what a purely BI-scheduled design would pay.
    pub fn wait_for_next_bti_us(&self, t_us: f64) -> f64 {
        let t = t_us.rem_euclid(self.bi_us);
        if t <= 0.0 {
            0.0
        } else {
            self.bi_us - t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::BaOverheadPreset;

    #[test]
    fn ssw_frame_time_matches_standard_ballpark() {
        // 8.2 µs preamble + 26·8/27.5 ≈ 7.6 µs payload ≈ 15.8 µs.
        let t = ssw_frame_us();
        assert!((15.0..17.0).contains(&t), "ssw {t} µs");
    }

    #[test]
    fn sector_counts() {
        assert_eq!(sectors_for_beamwidth(30.0, 360.0), 12);
        assert_eq!(sectors_for_beamwidth(3.0, 360.0), 120);
        assert_eq!(sectors_for_beamwidth(9.0, 360.0), 40);
        assert_eq!(sectors_for_beamwidth(7.0, 360.0), 52);
        assert_eq!(sectors_for_beamwidth(25.0, 120.0), 5);
    }

    #[test]
    fn quasi_omni_preset_derivations() {
        // 30° beams → ≈ 0.5 ms (preset QuasiOmni30).
        let d30 = derive_quasi_omni_ba_ms(30.0);
        let preset = BaOverheadPreset::QuasiOmni30.duration_ms();
        assert!(
            (d30 - preset).abs() / preset < 0.25,
            "derived {d30} ms vs preset {preset} ms"
        );
        // 3° beams → ≈ 4–5 ms (preset QuasiOmni3).
        let d3 = derive_quasi_omni_ba_ms(3.0);
        let preset = BaOverheadPreset::QuasiOmni3.duration_ms();
        assert!(
            (d3 - preset).abs() / preset < 0.25,
            "derived {d3} ms vs preset {preset} ms"
        );
    }

    #[test]
    fn directional_preset_derivations() {
        // 9° beams, O(N²) → ≈ 150 ms (preset Directional9).
        let d9 = derive_directional_ba_ms(9.0);
        let preset = BaOverheadPreset::Directional9.duration_ms();
        assert!(
            (d9 - preset).abs() / preset < 0.25,
            "derived {d9} ms vs preset {preset} ms"
        );
        // 7° beams → ≈ 250 ms (preset Directional7).
        let d7 = derive_directional_ba_ms(7.0);
        let preset = BaOverheadPreset::Directional7.duration_ms();
        assert!(
            (d7 - preset).abs() / preset < 0.25,
            "derived {d7} ms vs preset {preset} ms"
        );
    }

    #[test]
    fn sweeps_scale_linearly_and_quadratically() {
        let t16 = tx_sweep_us(16);
        let t32 = tx_sweep_us(32);
        assert!(t32 > 1.9 * t16 && t32 < 2.1 * t16);
        let p16 = pair_training_us(16, 16);
        let p32 = pair_training_us(32, 32);
        assert!((p32 / p16 - 4.0).abs() < 0.01, "O(N²) scaling");
    }

    #[test]
    fn beacon_interval_layout() {
        let bi = BeaconInterval::typical(32, 16);
        assert!(bi.bti_us > 0.0);
        assert!(bi.dti_start_us() > bi.bti_us);
        // Training overhead is a few percent of a 100 ms BI.
        let frac = bi.training_overhead_fraction();
        assert!(frac > 0.005 && frac < 0.1, "overhead fraction {frac}");
    }

    #[test]
    fn bti_wait_wraps() {
        let bi = BeaconInterval::typical(32, 16);
        assert_eq!(bi.wait_for_next_bti_us(0.0), 0.0);
        let w = bi.wait_for_next_bti_us(2_400.0);
        assert!((w - 100_000.0).abs() < 1.0);
        // Just before the next BTI the wait is tiny.
        let w = bi.wait_for_next_bti_us(bi.bi_us - 10.0);
        assert!((w - 10.0).abs() < 1e-6);
        // And it wraps modulo the BI.
        let w2 = bi.wait_for_next_bti_us(bi.bi_us + 2_400.0);
        assert!((w2 - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn on_demand_vs_scheduled_training_gap() {
        // The motivation for Tx-initiated in-DTI adaptation: waiting for
        // the next BTI costs ~50 ms on average — far more than even the
        // worst BA preset.
        let bi = BeaconInterval::typical(32, 16);
        let mean_wait_ms: f64 = (0..100)
            .map(|i| bi.wait_for_next_bti_us(i as f64 * bi.bi_us / 100.0) / 1000.0)
            .sum::<f64>()
            / 100.0;
        assert!(mean_wait_ms > 40.0 && mean_wait_ms < 60.0);
        assert!(mean_wait_ms > BaOverheadPreset::QuasiOmni3.duration_ms());
    }
}
