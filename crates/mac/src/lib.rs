//! # libra-mac
//!
//! 60 GHz MAC-layer procedures: the beam-training primitives, adaptation
//! overhead models, and the COTS-device emulation of paper §3.
//!
//! * [`sweep`] — sector-level sweep procedures (O(N) Tx-only with
//!   quasi-omni reception, 802.11ad separate-side training, and the
//!   naive O(N²) pair search used for dataset collection), all with
//!   per-measurement noise — the mechanism behind COTS sector flapping.
//! * [`overhead`] — the BA-overhead presets (0.5/5/150/250 ms) and
//!   FAT (2/10 ms) grid of the evaluation, plus the worst-case recovery
//!   delay `D_max` of §5.2.
//! * [`cots`] — emulation of the COTS heuristic (RA on missing Block
//!   ACK, BA when no working MCS) reproducing Figs 1–3.
//! * [`bft`] — 802.11ad beamforming-training protocol accounting: SSW
//!   frame timing, O(N)/O(N²) sweep durations (deriving the §8.1
//!   presets from first principles), and beacon-interval scheduling.
//! * [`tdma`] — deterministic TDMA airtime arbitration for the
//!   multi-station simulator: stations on one AP share a 100-slot
//!   frame, and a running BA sweep occupies real slots the data
//!   stations lose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bft;
pub mod cots;
pub mod overhead;
pub mod sweep;
pub mod tdma;

pub use bft::{derive_directional_ba_ms, derive_quasi_omni_ba_ms, BeaconInterval};
pub use cots::{
    best_fixed_sector_run, run_cots, CotsConfig, CotsRunLog, CotsScenario, DeviceProfile,
};
pub use overhead::{BaOverheadPreset, ProtocolParams};
pub use sweep::{exhaustive_sweep, separate_sweep, tx_sweep, PairSweepResult, TxSweepResult};
pub use tdma::{TdmaArbiter, BA_SLOTS, FRAME_SLOTS};
