//! Property-based tests for the MAC procedures.

use libra_arrays::Codebook;
use libra_channel::{Material, Point, Pose, Room, Scene};
use libra_mac::cots::{run_cots, CotsConfig, CotsScenario, DeviceProfile};
use libra_mac::sweep::{exhaustive_sweep, separate_sweep, tx_sweep};
use libra_mac::{BaOverheadPreset, ProtocolParams};
use libra_util::rng::rng_from_seed;
use proptest::prelude::*;

fn scene(dist: f64, rot: f64) -> Scene {
    let room = Room::rectangular("prop", 30.0, 4.0, [Material::Drywall; 4]);
    Scene::new(
        room,
        Pose::new(Point::new(1.0, 2.0), 0.0),
        Pose::new(Point::new(1.0 + dist, 2.0), 180.0 + rot),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A noiseless exhaustive sweep result is at least as good (in true
    /// sweep metric) as every other pair.
    #[test]
    fn noiseless_sweep_finds_optimum(dist in 3.0f64..20.0, rot in -30.0f64..30.0) {
        let s = scene(dist, rot);
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(1);
        let res = exhaustive_sweep(&s, &rays, &cb, &cb, 0.0, &mut rng);
        if let Some((bt, br)) = res.best_pair {
            let best = s
                .response_with_rays(&rays, cb.beam(bt), cb.beam(br))
                .sweep_metric_db();
            for (_, tb) in cb.iter() {
                for (_, rb) in cb.iter() {
                    let m = s.response_with_rays(&rays, tb, rb).sweep_metric_db();
                    prop_assert!(best >= m - 1e-9);
                }
            }
        }
    }

    /// The O(N) Tx sweep picks a beam whose full-pair potential is
    /// within a bounded gap of the O(N²) optimum (quasi-omni reception
    /// loses information, but not unboundedly).
    #[test]
    fn tx_sweep_reasonable(dist in 3.0f64..18.0) {
        let s = scene(dist, 0.0);
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(2);
        let pair = exhaustive_sweep(&s, &rays, &cb, &cb, 0.0, &mut rng).best_pair;
        let txb = tx_sweep(&s, &rays, &cb, 0.0, &mut rng).best_beam;
        if let (Some((bt, _)), Some(t)) = (pair, txb) {
            let full = s.response_with_rays(&rays, cb.beam(bt), cb.beam(12)).snr_db;
            let oneside = s.response_with_rays(&rays, cb.beam(t), cb.beam(12)).snr_db;
            prop_assert!(oneside >= full - 6.0, "Tx-only sweep lost {} dB", full - oneside);
        }
    }

    /// Separate (two-stage) training never returns an out-of-range pair.
    #[test]
    fn separate_sweep_valid_ids(dist in 3.0f64..20.0, noise in 0.0f64..3.0, seed in 0u64..50) {
        let s = scene(dist, 0.0);
        let rays = s.rays();
        let cb = Codebook::sibeam_25();
        let mut rng = rng_from_seed(seed);
        if let Some((t, r)) = separate_sweep(&s, &rays, &cb, &cb, noise, &mut rng) {
            prop_assert!(t < cb.len() && r < cb.len());
        }
    }

    /// Protocol parameter arithmetic: D_max dominates both single-sided
    /// overheads for every preset/FAT combination.
    #[test]
    fn dmax_dominates(fat in 0.5f64..20.0, preset in 0usize..4) {
        let t = libra_phy::McsTable::x60();
        let p = ProtocolParams::new(BaOverheadPreset::ALL[preset], fat);
        let dmax = p.dmax_ms(&t);
        prop_assert!(dmax >= p.ba_ms());
        prop_assert!(dmax >= p.ra_ms(t.len()));
        prop_assert!((dmax - (2.0 * p.ra_ms(t.len()) + p.ba_ms())).abs() < 1e-9);
    }

    /// COTS sessions conserve sanity for arbitrary short configs: bytes
    /// and throughput non-negative, BA disabled ⇒ zero triggers and a
    /// single fixed sector.
    #[test]
    fn cots_session_invariants(
        dist in 4.0f64..15.0,
        seed in 0u64..30,
        ba_enabled in any::<bool>(),
        sector in 0usize..32,
    ) {
        let cfg = CotsConfig {
            profile: DeviceProfile::talon_ap(),
            ba_enabled,
            fixed_sector: sector,
            duration_s: 2.0,
            seed,
        };
        let log = run_cots(&CotsScenario::Static { distance_m: dist }, &cfg);
        prop_assert!(log.bytes_delivered >= 0.0);
        prop_assert!(log.mean_tput_mbps >= 0.0);
        if !ba_enabled {
            prop_assert_eq!(log.ba_trigger_count, 0);
            prop_assert_eq!(log.distinct_sectors, 1);
        } else {
            prop_assert!(log.ba_trigger_count >= 1, "initial SLS counts");
        }
    }
}
