//! Epoch-based model publication — hot swap without locks on the hot
//! path and without torn batches.
//!
//! The design splits the cost asymmetrically, exactly like a
//! double-buffered channel: *publishing* a model (rare — once per
//! retrain) takes a mutex; *checking* for one (every batch boundary on
//! every shard) is a single atomic epoch load. A shard holds its model
//! through a [`ModelHandle`] that caches `(epoch, Arc<ServedModel>)`
//! and re-reads the slot under the mutex only when the epoch moved.
//! Because a shard refreshes only *between* batches and a batch is
//! classified entirely through one cached `Arc`, a publication can
//! never tear a batch: every response is attributable to exactly one
//! model version.

use libra::LibraClassifier;
use libra_infer::{Error, ModelArtifact};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One published model version: the compiled classifier plus the
/// registry identity every response is stamped with.
#[derive(Debug, Clone)]
pub struct ServedModel {
    /// Registry name (`ba-forest` in `ba-forest@3`).
    pub name: String,
    /// Registry version (`3` in `ba-forest@3`).
    pub version: u32,
    /// The compiled decision engine.
    pub classifier: LibraClassifier,
}

impl ServedModel {
    /// Wraps an already-built classifier under a registry identity,
    /// routing it through the blocked exact engine — bitwise identical
    /// to the flat tables, so response digests cannot move. Use
    /// [`ServedModel::with_engine`] for an explicit selection.
    pub fn new(name: impl Into<String>, version: u32, mut classifier: LibraClassifier) -> Self {
        classifier
            .select_engine(&libra_infer::EngineOpts::default())
            .expect("the default engine selection is always servable");
        Self {
            name: name.into(),
            version,
            classifier,
        }
    }

    /// Like [`ServedModel::new`] but honoring a caller-chosen engine
    /// selection (e.g. `libractl serve --engine flat`).
    pub fn with_engine(
        name: impl Into<String>,
        version: u32,
        mut classifier: LibraClassifier,
        opts: &libra_infer::EngineOpts,
    ) -> Result<Self, String> {
        classifier.select_engine(opts)?;
        Ok(Self {
            name: name.into(),
            version,
            classifier,
        })
    }

    /// Compiles a registry artifact into its servable form. `version`
    /// is the registry version the artifact was resolved at (artifacts
    /// themselves are version-agnostic bytes). Routes through the
    /// blocked exact engine like [`ServedModel::new`].
    pub fn from_artifact(artifact: &ModelArtifact, version: u32) -> Result<Self, Error> {
        Ok(Self::new(
            artifact.meta.name.clone(),
            version,
            LibraClassifier::from_artifact(artifact)?,
        ))
    }
}

/// The publication cell shared by all shards.
///
/// Epoch 1 is the model the service started with; every
/// [`publish`](Self::publish) bumps it. The epoch is read with
/// `Acquire` and bumped under the slot mutex, so a reader that observes
/// a new epoch and takes the mutex always finds the matching (or a
/// newer) model — never an older one.
#[derive(Debug)]
pub struct ModelCell {
    epoch: AtomicU64,
    slot: Mutex<Arc<ServedModel>>,
}

impl ModelCell {
    /// Creates the cell holding the initial model (epoch 1).
    pub fn new(model: Arc<ServedModel>) -> Self {
        Self {
            epoch: AtomicU64::new(1),
            slot: Mutex::new(model),
        }
    }

    /// Current publication epoch — the lock-free fast-path probe.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Reads the current `(epoch, model)` pair (slow path: takes the
    /// slot mutex; shards call this only when the epoch moved).
    pub fn load(&self) -> (u64, Arc<ServedModel>) {
        let slot = self.slot.lock().expect("model slot poisoned");
        (self.epoch.load(Ordering::Acquire), Arc::clone(&slot))
    }

    /// Publishes a new model and returns the new epoch. In-flight
    /// batches keep their own `Arc` and finish on the old version;
    /// every batch *started* after this returns is classified by the
    /// new one.
    pub fn publish(&self, model: Arc<ServedModel>) -> u64 {
        let mut slot = self.slot.lock().expect("model slot poisoned");
        *slot = model;
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }
}

/// One shard's cached view of the [`ModelCell`].
#[derive(Debug)]
pub struct ModelHandle {
    cell: Arc<ModelCell>,
    epoch: u64,
    model: Arc<ServedModel>,
}

impl ModelHandle {
    /// Caches the cell's current model.
    pub fn new(cell: Arc<ModelCell>) -> Self {
        let (epoch, model) = cell.load();
        Self { cell, epoch, model }
    }

    /// Re-reads the cell if the epoch moved since the last look.
    /// Returns true when the cached model changed. The steady-state
    /// cost — called once per batch boundary — is one atomic load.
    pub fn refresh(&mut self) -> bool {
        if self.cell.epoch() == self.epoch {
            return false;
        }
        let (epoch, model) = self.cell.load();
        self.epoch = epoch;
        self.model = model;
        true
    }

    /// The cached model. Stable for as long as the caller holds off on
    /// [`refresh`](Self::refresh) — the torn-batch guarantee.
    pub fn model(&self) -> &ServedModel {
        &self.model
    }

    /// Epoch of the cached model.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_dataset::FEATURE_NAMES;
    use libra_util::rng::rng_from_seed;

    /// A deliberately tiny classifier — enough structure to serve, fast
    /// enough to train in-test.
    fn tiny_model(version: u32) -> Arc<ServedModel> {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60usize {
            let c = i % 3;
            let mut row = vec![0.0; FEATURE_NAMES.len()];
            row[0] = c as f64 * 8.0 + (i % 5) as f64 * 0.1;
            row[5] = 1.0 - c as f64 * 0.3;
            features.push(row);
            labels.push(c);
        }
        let names = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let data = libra_ml::Dataset::new(features, labels, 3, names);
        let mut rng = rng_from_seed(7 + version as u64);
        let clf = LibraClassifier::train(&data, &mut rng);
        Arc::new(ServedModel::new("tiny", version, clf))
    }

    #[test]
    fn publish_bumps_epoch_and_swaps_model() {
        let cell = ModelCell::new(tiny_model(1));
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.load().1.version, 1);
        assert_eq!(cell.publish(tiny_model(2)), 2);
        assert_eq!(cell.epoch(), 2);
        let (epoch, model) = cell.load();
        assert_eq!((epoch, model.version), (2, 2));
    }

    #[test]
    fn handle_holds_version_until_refresh() {
        let cell = Arc::new(ModelCell::new(tiny_model(1)));
        let mut handle = ModelHandle::new(Arc::clone(&cell));
        assert_eq!(handle.model().version, 1);
        assert!(!handle.refresh(), "no publish, no change");

        cell.publish(tiny_model(2));
        // The cached Arc is untouched until the holder asks — this is
        // exactly what keeps an in-flight batch on one version.
        assert_eq!(handle.model().version, 1);
        assert!(handle.refresh());
        assert_eq!((handle.epoch(), handle.model().version), (2, 2));
        assert!(!handle.refresh());
    }

    #[test]
    fn from_artifact_carries_registry_identity() {
        let served = tiny_model(1);
        let artifact = served.classifier.to_artifact("tiny", 7, 60, "");
        let rebuilt = ServedModel::from_artifact(&artifact, 3).unwrap();
        assert_eq!(rebuilt.name, "tiny");
        assert_eq!(rebuilt.version, 3);
    }
}
