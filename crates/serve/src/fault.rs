//! Deterministic fault & deadline plan for the serve path — the chaos
//! hook `libra_guard` arms on a [`crate::service::ServeConfig`].
//!
//! The plan must not break the serving determinism contract: the
//! response stream (and therefore [`crate::request::response_digest`])
//! has to stay bitwise identical at any shard, batch and thread count
//! even while faults fire. Every digest-affecting lottery — latency
//! spikes, deadline misses, response drops — is therefore a pure
//! function of the request's `seq` through a derived RNG stream, never
//! of a wall clock or of scheduling. The one *real-time* fault, the
//! per-batch shard stall, only sleeps: batch composition is already a
//! pure function of the per-shard stream, so a stall changes timing
//! (and wall histograms) but never a single response.
//!
//! Deadlines ride the same mechanism: each decision is assigned a
//! *virtual* latency (`base_latency_us`, spiked to `spike_latency_us`
//! by the spike lottery), and a decision whose virtual latency exceeds
//! `deadline_us` counts as a deadline miss. That keeps the
//! miss-and-degrade path — §7 fallback, `degraded` stamp, `obs`
//! counters — fully reproducible, which is the property chaos runs
//! assert on.

use libra_util::rng::{derive_seed, derive_seed_index, SplitMix64};

/// Per-request fault lotteries and the decision deadline.
///
/// All probabilities are per mille. `Default` is the all-quiet plan
/// (nothing fires, no deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeFaults {
    /// Stream seed; every lottery derives from `(seed, request seq)`.
    pub seed: u64,
    /// Virtual latency assigned to an unspiked decision, µs.
    pub base_latency_us: u32,
    /// Per-mille probability a decision's virtual latency spikes.
    pub spike_per_mille: u16,
    /// Virtual latency of a spiked decision, µs.
    pub spike_latency_us: u32,
    /// Per-decision deadline, µs; `0` disables deadline enforcement.
    pub deadline_us: u32,
    /// Per-mille probability the model's answer is dropped (the
    /// response is still delivered, but degraded to the §7 fallback).
    pub drop_per_mille: u16,
    /// Shard whose worker stalls after every batch, if any.
    pub stall_shard: Option<u32>,
    /// Real wall-clock stall per batch on the stalled shard, ms.
    pub stall_ms: u32,
}

/// What the fault lotteries decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDraw {
    /// Virtual decision latency, µs.
    pub latency_us: u32,
    /// The latency spike lottery fired.
    pub spiked: bool,
    /// The virtual latency exceeded the deadline.
    pub deadline_missed: bool,
    /// The drop lottery fired.
    pub dropped: bool,
}

impl FaultDraw {
    /// True when the model's answer must be replaced by the fallback.
    pub fn degrades(&self) -> bool {
        self.deadline_missed || self.dropped
    }
}

impl ServeFaults {
    /// Rolls every lottery for one request — a pure function of
    /// `(self, seq)`. Draw order is fixed (spike, then drop) so the
    /// stream stays stable if more lotteries are added after them.
    pub fn draw(&self, seq: u64) -> FaultDraw {
        let mut rng = SplitMix64::new(derive_seed_index(
            derive_seed(self.seed, "serve.fault"),
            seq,
        ));
        let spiked = (rng.next_u64() % 1000) < u64::from(self.spike_per_mille);
        let dropped = (rng.next_u64() % 1000) < u64::from(self.drop_per_mille);
        let latency_us = if spiked {
            self.spike_latency_us
        } else {
            self.base_latency_us
        };
        let deadline_missed = self.deadline_us > 0 && latency_us > self.deadline_us;
        FaultDraw {
            latency_us,
            spiked,
            deadline_missed,
            dropped,
        }
    }

    /// True when shard `shard` stalls after each batch.
    pub fn stalls(&self, shard: u32) -> bool {
        self.stall_shard == Some(shard) && self.stall_ms > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ServeFaults {
        ServeFaults {
            seed: 0xC4A05,
            base_latency_us: 50,
            spike_per_mille: 100,
            spike_latency_us: 5_000,
            deadline_us: 1_000,
            drop_per_mille: 50,
            stall_shard: Some(1),
            stall_ms: 2,
        }
    }

    #[test]
    fn draws_are_pure_functions_of_seq() {
        let f = plan();
        for seq in 0..200 {
            assert_eq!(f.draw(seq), f.draw(seq));
        }
    }

    #[test]
    fn rates_land_near_their_per_mille_targets() {
        let f = plan();
        let n = 20_000u64;
        let (mut spikes, mut drops) = (0u64, 0u64);
        for seq in 0..n {
            let d = f.draw(seq);
            spikes += u64::from(d.spiked);
            drops += u64::from(d.dropped);
            // A spike over this plan's deadline is always a miss.
            assert_eq!(d.deadline_missed, d.spiked);
        }
        let spike_rate = spikes as f64 * 1000.0 / n as f64;
        let drop_rate = drops as f64 * 1000.0 / n as f64;
        assert!((80.0..120.0).contains(&spike_rate), "{spike_rate}");
        assert!((35.0..65.0).contains(&drop_rate), "{drop_rate}");
    }

    #[test]
    fn quiet_plan_never_fires() {
        let f = ServeFaults::default();
        for seq in 0..500 {
            let d = f.draw(seq);
            assert!(!d.spiked && !d.dropped && !d.deadline_missed);
            assert_eq!(d.latency_us, 0);
        }
        assert!(!f.stalls(0));
    }

    #[test]
    fn stall_is_scoped_to_one_shard() {
        let f = plan();
        assert!(f.stalls(1));
        assert!(!f.stalls(0));
        assert!(!f.stalls(2));
    }
}
