//! # libra-serve
//!
//! The long-running decision service on top of `LibraClassifier` and
//! the `ModelRegistry` (ROADMAP item 2): LiBRA as a production serving
//! system rather than a batch evaluator.
//!
//! * [`request`] — the wire types: a [`DecisionRequest`] per
//!   observation window, the [`DecisionResponse`] it produces, the
//!   recorded request-stream format (`results/serve_requests.bin`,
//!   `binser`-encoded) and the shard-count-invariant
//!   [`response_digest`].
//! * [`model`] — epoch-based model publication: a [`ModelCell`] holds
//!   the current [`ServedModel`] behind an atomic epoch; shards cache
//!   an `Arc` per batch via [`ModelHandle`], so the steady-state hot
//!   path is one atomic load per batch — no locks — and a new
//!   `name@version` goes live mid-traffic without pausing or tearing a
//!   batch (every batch is classified by exactly one model version).
//! * [`service`] — the [`DecisionService`]: N worker shards keyed by
//!   station id (the stable `libra_util::checksum::shard_of` hash),
//!   each batching incoming requests into the zero-copy
//!   `Classifier::predict_batch_into` columnar path (the blocked
//!   branchless kernel by default) and reporting per-shard `obs`
//!   deltas merged back in shard order.
//! * [`loadgen`] — the deterministic synthetic load generator: derived
//!   RNG streams per fixed-size chunk under the `libra_util::par`
//!   contract, so the generated stream is bitwise identical at any
//!   thread count and replays identically at any shard count.
//! * [`fault`] — the deterministic fault & deadline plan
//!   ([`ServeFaults`]) `libra_guard` arms for chaos runs: latency
//!   spikes, response drops and deadline misses as pure functions of
//!   the request `seq`, plus real (timing-only) shard stalls; decisions
//!   they hit degrade to the §7 rule and are stamped
//!   [`DecisionResponse::degraded`] instead of panicking or vanishing.
//!
//! The shard/dispatch layer is classifier-agnostic by construction: it
//! only needs a row-batched `classify` of feature rows plus the §7
//! fallback rule, both reached through [`ServedModel`] — a future DRL
//! policy slots behind the same surface.
//!
//! Determinism contract: `response_digest` of a served stream is a pure
//! function of `(requests, model)` — independent of shard count, batch
//! size, thread scheduling and tracing — because rows are classified
//! independently and the digest folds responses in submission (`seq`)
//! order. Batch *composition* (sizes, per-shard ordinals) is a pure
//! function of `(requests, shards, max_batch)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod loadgen;
pub mod model;
pub mod request;
pub mod service;

pub use fault::{FaultDraw, ServeFaults};
pub use loadgen::{generate_requests, LoadConfig};
pub use model::{ModelCell, ModelHandle, ServedModel};
pub use request::{
    default_record_path, load_requests, response_digest, save_requests, DecisionRequest,
    DecisionResponse,
};
pub use service::{serve_all, DecisionService, ServeConfig, ServeOutcome};
