//! The sharded decision service.
//!
//! N worker shards, each an owned `std::thread` draining a bounded
//! channel. Requests route by `shard_of(station_id, shards)` — a
//! stable hash, so a station's requests always serialize through one
//! shard in submission order. A shard accumulates up to
//! `max_batch` requests (blocking — batch composition is a pure
//! function of the per-shard stream, not of timing), refreshes its
//! model handle once, then classifies the whole batch through the
//! zero-copy `Classifier::predict_batch_into` columnar path.
//!
//! Observability follows the workspace contract: when tracing is off
//! the hot loop never reads a clock or touches the collector; when on,
//! each shard collects into its own `obs` scope and the deltas merge
//! back in shard-index order at [`DecisionService::finish`], so traced
//! reports are deterministic too (wall histograms excepted, as always).
//!
//! Instruments: counters `serve.decisions`, `serve.fallback`,
//! `serve.model.refresh`; value histogram `serve.batch_rows`; wall
//! histogram `serve.decision_ns` (submit-to-decision latency).
//!
//! ## Graceful degradation
//!
//! With a [`ServeFaults`] plan armed on the config (the `libra_guard`
//! chaos hook — `None` costs one branch per batch), a decision can
//! *degrade*: its virtual latency misses the deadline, its response is
//! dropped by the fault lottery, or the model's schema no longer
//! matches the served feature layout. A degraded decision never
//! panics and is never lost — it falls back to the §7 rule, is stamped
//! [`DecisionResponse::degraded`], and is counted: counters
//! `serve.degraded`, `serve.deadline_miss`, `serve.dropped`,
//! `serve.model_error`, `serve.stall`; value histogram
//! `serve.degraded_per_mille` (per-batch degradation rate — the
//! degradation-rate histogram). Latency spikes additionally feed the
//! `serve.injected_latency_us` value histogram. All of it is a pure
//! function of the request stream, so chaos runs keep the digest
//! contract.

use crate::fault::ServeFaults;
use crate::model::{ModelCell, ModelHandle, ServedModel};
use crate::request::{DecisionRequest, DecisionResponse};
use crossbeam::channel::{bounded, Receiver, Sender};
use libra_dataset::{Action3, FEATURE_NAMES};
use libra_ml::Classifier;
use libra_obs as obs;
use libra_util::checksum::shard_of;
use libra_util::frame::FeatureFrame;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Service shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker shard count (≥ 1).
    pub shards: usize,
    /// Rows per classification batch (≥ 1); the last batch of a
    /// shard's stream may be shorter.
    pub max_batch: usize,
    /// Per-shard channel capacity (submission backpressure).
    pub queue_depth: usize,
    /// Fault/deadline plan; `None` (the default) is the zero-cost
    /// healthy path.
    pub faults: Option<ServeFaults>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            max_batch: 64,
            queue_depth: 1024,
            faults: None,
        }
    }
}

/// A request in flight, stamped at submission when tracing is on.
#[derive(Debug)]
struct Envelope {
    request: DecisionRequest,
    submitted: Option<Instant>,
}

/// What one shard worker hands back at shutdown.
struct ShardOutput {
    responses: Vec<DecisionResponse>,
    report: obs::Report,
    batches: u64,
}

/// Everything a completed serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// All responses, sorted by request sequence number.
    pub responses: Vec<DecisionResponse>,
    /// Total batches flushed across all shards.
    pub batches: u64,
}

/// A running decision service. Submit requests with
/// [`submit`](Self::submit), publish new model versions mid-traffic
/// with [`publish`](Self::publish), and collect every response with
/// [`finish`](Self::finish).
pub struct DecisionService {
    cell: Arc<ModelCell>,
    senders: Vec<Sender<Envelope>>,
    handles: Vec<JoinHandle<ShardOutput>>,
    traced: bool,
}

impl DecisionService {
    /// Starts the shard workers serving `model`.
    pub fn start(cfg: &ServeConfig, model: Arc<ServedModel>) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.max_batch >= 1, "need at least one row per batch");
        // Captured once: toggling tracing mid-run would otherwise make
        // shards disagree about whether to stamp submissions.
        let traced = obs::enabled();
        let cell = Arc::new(ModelCell::new(model));
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = bounded::<Envelope>(cfg.queue_depth.max(1));
            let cell = Arc::clone(&cell);
            let max_batch = cfg.max_batch;
            let faults = cfg.faults;
            let handle = std::thread::Builder::new()
                .name(format!("libra-serve-{shard}"))
                .spawn(move || run_shard(shard as u32, rx, cell, max_batch, traced, faults))
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            cell,
            senders,
            handles,
            traced,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shared publication cell (e.g. for a registry watcher loop).
    pub fn cell(&self) -> &Arc<ModelCell> {
        &self.cell
    }

    /// Publishes a new model version mid-traffic; returns the new
    /// epoch. Every batch started after this returns is classified by
    /// `model`; in-flight batches finish on their own version.
    pub fn publish(&self, model: Arc<ServedModel>) -> u64 {
        self.cell.publish(model)
    }

    /// Routes one request to its station's shard (blocks on shard
    /// backpressure).
    pub fn submit(&self, request: DecisionRequest) {
        let shard = shard_of(request.station_id, self.senders.len());
        let envelope = Envelope {
            request,
            submitted: self.traced.then(Instant::now),
        };
        self.senders[shard]
            .send(envelope)
            .expect("shard worker hung up");
    }

    /// Closes submission, drains every shard, merges per-shard `obs`
    /// deltas in shard order, and returns all responses sorted by
    /// sequence number.
    pub fn finish(self) -> ServeOutcome {
        drop(self.senders);
        let mut responses = Vec::new();
        let mut batches = 0u64;
        for handle in self.handles {
            let out = handle.join().expect("shard worker panicked");
            obs::merge_report(&out.report);
            responses.extend(out.responses);
            batches += out.batches;
        }
        responses.sort_unstable_by_key(|r| r.seq);
        ServeOutcome { responses, batches }
    }
}

/// Runs `requests` through a fresh service to completion — the replay
/// path shared by `libractl serve`, the bench harness and the tests.
pub fn serve_all(
    cfg: &ServeConfig,
    model: Arc<ServedModel>,
    requests: &[DecisionRequest],
) -> ServeOutcome {
    let service = DecisionService::start(cfg, model);
    for &request in requests {
        service.submit(request);
    }
    service.finish()
}

fn run_shard(
    shard: u32,
    rx: Receiver<Envelope>,
    cell: Arc<ModelCell>,
    max_batch: usize,
    traced: bool,
    faults: Option<ServeFaults>,
) -> ShardOutput {
    if traced {
        let ((responses, batches), report) =
            obs::with_scope(|| shard_loop(shard, &rx, &cell, max_batch, faults.as_ref()));
        ShardOutput {
            responses,
            report,
            batches,
        }
    } else {
        let (responses, batches) = shard_loop(shard, &rx, &cell, max_batch, faults.as_ref());
        ShardOutput {
            responses,
            report: obs::Report::default(),
            batches,
        }
    }
}

fn shard_loop(
    shard: u32,
    rx: &Receiver<Envelope>,
    cell: &Arc<ModelCell>,
    max_batch: usize,
    faults: Option<&ServeFaults>,
) -> (Vec<DecisionResponse>, u64) {
    let mut handle = ModelHandle::new(Arc::clone(cell));
    let feature_names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let mut pending: Vec<Envelope> = Vec::with_capacity(max_batch);
    let mut classes: Vec<usize> = Vec::with_capacity(max_batch);
    let mut responses = Vec::new();
    let mut batches = 0u64;
    loop {
        // Block for the batch head; a closed, drained channel ends the
        // shard.
        match rx.recv() {
            Ok(envelope) => pending.push(envelope),
            Err(_) => break,
        }
        // Fill the batch by *blocking*, not polling: batch composition
        // becomes a pure function of the per-shard stream, never of
        // arrival timing — the batch-size histogram is deterministic.
        let mut open = true;
        while open && pending.len() < max_batch {
            match rx.recv() {
                Ok(envelope) => pending.push(envelope),
                Err(_) => open = false,
            }
        }
        flush_batch(
            shard,
            &mut handle,
            &feature_names,
            &mut pending,
            &mut classes,
            &mut responses,
            &mut batches,
            faults,
        );
        // A stalled shard sleeps after each batch — a pure timing
        // fault: batch composition and every response are already
        // fixed, so the stall can never reach the digest.
        if let Some(f) = faults {
            if f.stalls(shard) {
                obs::counter("serve.stall", 1);
                std::thread::sleep(std::time::Duration::from_millis(u64::from(f.stall_ms)));
            }
        }
        if !open {
            break;
        }
    }
    (responses, batches)
}

/// Classifies one accumulated batch through exactly one model version.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    shard: u32,
    handle: &mut ModelHandle,
    feature_names: &[String],
    pending: &mut Vec<Envelope>,
    classes: &mut Vec<usize>,
    responses: &mut Vec<DecisionResponse>,
    batches: &mut u64,
    faults: Option<&ServeFaults>,
) {
    if pending.is_empty() {
        return;
    }
    // The one hot-swap point: between batches, never inside one.
    if handle.refresh() {
        obs::counter("serve.model.refresh", 1);
    }
    let model = handle.model();

    // A model whose engine disagrees with the served feature layout
    // would panic inside the columnar path; detect it up front and
    // degrade the whole batch to the §7 rule instead.
    let model_broken = model.classifier.engine().n_features() != feature_names.len();
    if model_broken {
        obs::counter("serve.model_error", 1);
        classes.clear();
        classes.resize(pending.len(), usize::MAX);
    } else {
        let mut frame = FeatureFrame::with_schema(3, feature_names.to_vec());
        for envelope in pending.iter() {
            frame.push_row(&envelope.request.features.to_row(), 0);
        }
        model.classifier.predict_batch_into(&frame.view(), classes);
    }
    obs::record_value("serve.batch_rows", pending.len() as u64);

    let mut degraded_rows = 0u64;
    for (envelope, &class) in pending.iter().zip(classes.iter()) {
        let request = &envelope.request;
        let fallback = || {
            model
                .classifier
                .fallback(request.features.initial_mcs, request.ba_overhead_ms)
        };
        let (action, gated, degraded) = if request.ack_missing {
            // §7: missing ACK gates the model out by design — not a
            // degradation, the rule *is* the decision path here.
            (fallback(), true, false)
        } else if model_broken {
            (fallback(), false, true)
        } else if let Some(draw) = faults.map(|f| f.draw(request.seq)) {
            if draw.spiked {
                obs::record_value("serve.injected_latency_us", u64::from(draw.latency_us));
            }
            if draw.deadline_missed {
                obs::counter("serve.deadline_miss", 1);
            }
            if draw.dropped {
                obs::counter("serve.dropped", 1);
            }
            if draw.degrades() {
                (fallback(), false, true)
            } else {
                (class_action(class), false, false)
            }
        } else {
            (class_action(class), false, false)
        };
        responses.push(DecisionResponse {
            seq: request.seq,
            station_id: request.station_id,
            action,
            model_version: model.version,
            gated,
            degraded,
            shard,
            batch: *batches,
        });
        obs::counter("serve.decisions", 1);
        if gated {
            obs::counter("serve.fallback", 1);
        }
        if degraded {
            obs::counter("serve.degraded", 1);
            degraded_rows += 1;
        }
        if let Some(submitted) = envelope.submitted {
            let nanos = submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            obs::record_wall("serve.decision_ns", nanos);
        }
    }
    // Per-batch degradation rate, in per mille — only once a fault
    // plan (or a broken model) makes degradation possible, so healthy
    // runs keep their exact pre-guard trace output.
    if faults.is_some() || model_broken {
        obs::record_value(
            "serve.degraded_per_mille",
            degraded_rows * 1000 / pending.len() as u64,
        );
    }
    *batches += 1;
    pending.clear();
}

fn class_action(class: usize) -> Action3 {
    match class {
        0 => Action3::Ba,
        1 => Action3::Ra,
        _ => Action3::Na,
    }
}
