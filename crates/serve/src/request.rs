//! Wire types, the recorded request-stream format, and the response
//! digest.
//!
//! A recorded stream is the replay contract of the whole subsystem: the
//! load generator writes `Vec<DecisionRequest>` through `binser` to
//! `results/serve_requests.bin`, and any later `libractl serve` run —
//! at any shard count, batch size or thread count — must reproduce the
//! exact same [`response_digest`] for the same model. The digest
//! therefore folds only fields that are properties of *the decision*
//! (sequence, station, action, version, fallback flag), never of the
//! dispatch (shard, batch ordinal).

use libra_dataset::{Action3, Features};
use libra_util::binser;
use libra_util::checksum::fnv1a64;
use libra_util::paths::results_root;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One decision request: the per-observation-window question "BA, RA,
/// or nothing?" for one station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionRequest {
    /// Global submission sequence number (the replay order handle).
    pub seq: u64,
    /// Station identity — the shard routing key.
    pub station_id: u64,
    /// The observation-window feature vector (Table 3); its
    /// `initial_mcs` doubles as the station's current MCS for the §7
    /// fallback rule.
    pub features: Features,
    /// True when the window's ACK went missing — the model is skipped
    /// and the §7 fallback rule decides.
    pub ack_missing: bool,
    /// BA overhead the station currently operates under, ms (fallback
    /// rule input).
    pub ba_overhead_ms: f64,
}

/// The decision the service produced for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionResponse {
    /// Sequence number of the request this answers.
    pub seq: u64,
    /// Station the decision is for.
    pub station_id: u64,
    /// The adaptation call.
    pub action: Action3,
    /// Version of the model that made the call — every response is
    /// attributable to exactly one published version.
    pub model_version: u32,
    /// True when the §7 fallback rule decided (missing ACK).
    pub gated: bool,
    /// True when the decision *degraded* to the §7 fallback — a missed
    /// deadline, a dropped model answer, or a model error — rather than
    /// being gated by design. Part of the decision, so it is folded
    /// into the digest.
    pub degraded: bool,
    /// Shard that served the request (dispatch metadata, excluded from
    /// the digest).
    pub shard: u32,
    /// Per-shard batch ordinal the request was classified in (dispatch
    /// metadata, excluded from the digest; the torn-batch test keys on
    /// it).
    pub batch: u64,
}

/// FNV-1a digest of a response stream, folded in `seq` order.
///
/// Covers `(seq, station_id, action, gated, degraded, model_version)`
/// — the decision itself — and deliberately excludes dispatch
/// metadata, so the digest is bitwise identical at any shard count,
/// batch size and thread count, *including under an armed fault plan*
/// (every degradation is a pure function of the request stream).
/// Callers pass responses already sorted by `seq` (what
/// [`crate::service::DecisionService::finish`] returns).
pub fn response_digest(responses: &[DecisionResponse]) -> u64 {
    let mut bytes = Vec::with_capacity(responses.len() * 23);
    for r in responses {
        bytes.extend_from_slice(&r.seq.to_le_bytes());
        bytes.extend_from_slice(&r.station_id.to_le_bytes());
        bytes.push(r.action.class_index() as u8);
        bytes.push(r.gated as u8);
        bytes.push(r.degraded as u8);
        bytes.extend_from_slice(&r.model_version.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Default location of the recorded request stream.
pub fn default_record_path() -> PathBuf {
    results_root().join("serve_requests.bin")
}

/// Records a request stream for bitwise-identical replay.
pub fn save_requests(path: &Path, requests: &[DecisionRequest]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    binser::write_file(path, &requests).map_err(|e| format!("write {}: {e:?}", path.display()))
}

/// Loads a recorded request stream.
pub fn load_requests(path: &Path) -> Result<Vec<DecisionRequest>, String> {
    binser::read_file(path).map_err(|e| format!("read {}: {e:?}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(seq: u64) -> DecisionResponse {
        DecisionResponse {
            seq,
            station_id: seq % 5,
            action: Action3::Ra,
            model_version: 1,
            gated: false,
            degraded: false,
            shard: 0,
            batch: 0,
        }
    }

    #[test]
    fn digest_ignores_dispatch_metadata() {
        let a: Vec<DecisionResponse> = (0..10).map(response).collect();
        let mut b = a.clone();
        for (i, r) in b.iter_mut().enumerate() {
            r.shard = (i % 3) as u32;
            r.batch = i as u64;
        }
        assert_eq!(response_digest(&a), response_digest(&b));
    }

    #[test]
    fn digest_sees_every_decision_field() {
        let base: Vec<DecisionResponse> = (0..10).map(response).collect();
        let d0 = response_digest(&base);
        for field in ["action", "version", "gated", "degraded", "station"] {
            let mut changed = base.clone();
            match field {
                "action" => changed[3].action = Action3::Ba,
                "version" => changed[3].model_version = 2,
                "gated" => changed[3].gated = true,
                "degraded" => changed[3].degraded = true,
                _ => changed[3].station_id = 99,
            }
            assert_ne!(d0, response_digest(&changed), "digest blind to {field}");
        }
    }

    #[test]
    fn record_replay_roundtrip_is_bitwise() {
        let requests: Vec<DecisionRequest> = (0..100)
            .map(|i| DecisionRequest {
                seq: i,
                station_id: i % 7,
                features: Features::no_change((i % 9) as usize),
                ack_missing: i % 31 == 0,
                ba_overhead_ms: 250.0,
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("libra-serve-req-{}", std::process::id()));
        let path = dir.join("serve_requests.bin");
        save_requests(&path, &requests).unwrap();
        let loaded = load_requests(&path).unwrap();
        assert_eq!(loaded, requests);
        assert_eq!(
            binser::to_bytes(&loaded).unwrap(),
            binser::to_bytes(&requests).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
