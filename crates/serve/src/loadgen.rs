//! The deterministic synthetic load generator.
//!
//! Drives millions of decisions without a simulator in the loop:
//! plausible Table-3 feature vectors, a station population for the
//! shard router to spread, a small missing-ACK rate to exercise the §7
//! fallback path, and BA overheads drawn from the paper's four presets.
//!
//! Determinism follows the workspace contract: the stream is generated
//! in fixed-size chunks under `libra_util::par`, each chunk's RNG
//! derived from `(seed, chunk index)` — so the generated stream is
//! bitwise identical at any thread count, and chunk boundaries (not
//! worker scheduling) own the randomness. Recording the stream
//! ([`crate::request::save_requests`]) then makes any later replay
//! bitwise identical too.

use crate::request::DecisionRequest;
use libra_dataset::Features;
use libra_mac::BaOverheadPreset;
use libra_util::par::par_map_index;
use libra_util::rng::{derive_seed, derive_seed_index, rng_from_seed};
use rand::Rng;

/// Requests generated per derived RNG stream. Fixed (not tunable):
/// changing it would change every generated stream.
pub const GEN_CHUNK: usize = 4096;

/// Load-generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Total requests to generate.
    pub requests: usize,
    /// Station population (ids `0..stations`).
    pub stations: u64,
    /// Master seed; the stream is a pure function of the whole config.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            requests: 100_000,
            stations: 64,
            seed: 0x5E27E,
        }
    }
}

/// Generates the request stream (bitwise identical at any thread
/// count).
pub fn generate_requests(cfg: &LoadConfig) -> Vec<DecisionRequest> {
    assert!(cfg.stations >= 1, "need at least one station");
    let stream_seed = derive_seed(cfg.seed, "serve.loadgen");
    let chunks = cfg.requests.div_ceil(GEN_CHUNK);
    let per_chunk: Vec<Vec<DecisionRequest>> = par_map_index(chunks, |chunk| {
        let mut rng = rng_from_seed(derive_seed_index(stream_seed, chunk as u64));
        let start = chunk * GEN_CHUNK;
        let end = (start + GEN_CHUNK).min(cfg.requests);
        (start..end)
            .map(|i| sample_request(&mut rng, i as u64, cfg.stations))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// One synthetic observation window. Ranges bracket what the §8
/// campaigns actually produce (ToF clamps at the sentinel, similarity
/// floors near blockage, the full CDR span) so the served feature space
/// resembles the trained one.
fn sample_request(rng: &mut impl Rng, seq: u64, stations: u64) -> DecisionRequest {
    let initial_mcs = rng.gen_range(0..=8usize);
    let features = Features {
        snr_diff_db: rng.gen_range(-5.0..25.0),
        tof_diff_ns: rng.gen_range(-100.0..1000.0),
        noise_diff_db: rng.gen_range(-2.0..2.0),
        pdp_similarity: rng.gen_range(0.5..1.0),
        csi_similarity: rng.gen_range(0.3..1.0),
        cdr: rng.gen_range(0.0..1.0),
        initial_mcs,
    };
    let preset = BaOverheadPreset::ALL[rng.gen_range(0..BaOverheadPreset::ALL.len())];
    DecisionRequest {
        seq,
        station_id: rng.gen_range(0..stations),
        features,
        ack_missing: rng.gen_bool(0.03),
        ba_overhead_ms: preset.duration_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_util::par::set_threads;

    #[test]
    fn stream_is_thread_count_invariant() {
        // Straddle a chunk boundary so multiple derived streams are in
        // play.
        let cfg = LoadConfig {
            requests: GEN_CHUNK + 100,
            stations: 16,
            seed: 0xAB,
        };
        set_threads(1);
        let seq = generate_requests(&cfg);
        set_threads(4);
        let par = generate_requests(&cfg);
        set_threads(0);
        assert_eq!(seq, par);
    }

    #[test]
    fn stream_is_plausible_and_sequenced() {
        let cfg = LoadConfig {
            requests: 5_000,
            stations: 8,
            seed: 1,
        };
        let requests = generate_requests(&cfg);
        assert_eq!(requests.len(), 5_000);
        let mut fallbacks = 0usize;
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert!(r.station_id < 8);
            assert!(r.features.initial_mcs <= 8);
            assert!((0.0..=1.0).contains(&r.features.cdr));
            assert!(BaOverheadPreset::ALL
                .iter()
                .any(|p| p.duration_ms() == r.ba_overhead_ms));
            fallbacks += r.ack_missing as usize;
        }
        // ~3% missing ACKs: loose bounds, just prove both paths exist.
        assert!(fallbacks > 50 && fallbacks < 500, "got {fallbacks}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_requests(&LoadConfig {
            requests: 100,
            stations: 8,
            seed: 1,
        });
        let b = generate_requests(&LoadConfig {
            requests: 100,
            stations: 8,
            seed: 2,
        });
        assert_ne!(a, b);
    }
}
