//! Graceful degradation under an armed fault plan — the serve-side
//! contract of the guarded model lifecycle.
//!
//! Three properties are pinned here:
//!
//! 1. **No panics, no losses**: under deadline misses, response drops
//!    and shard stalls every request still gets a response; degraded
//!    ones carry the §7 fallback action and the `degraded` stamp.
//! 2. **Determinism survives chaos**: the response digest under a fault
//!    plan is bitwise identical at any shard count, and stalls (real
//!    sleeps) change nothing but timing.
//! 3. **A broken model degrades, never panics**: a model whose engine
//!    disagrees with the served feature schema turns every non-gated
//!    decision into a degraded fallback decision.

use libra::LibraClassifier;
use libra_dataset::FEATURE_NAMES;
use libra_obs as obs;
use libra_serve::{
    generate_requests, response_digest, serve_all, DecisionRequest, LoadConfig, ServeConfig,
    ServeFaults, ServedModel,
};
use libra_util::rng::rng_from_seed;
use std::sync::Arc;

fn tiny_model(version: u32) -> Arc<ServedModel> {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..60usize {
        let c = i % 3;
        let mut row = vec![0.0; FEATURE_NAMES.len()];
        row[0] = c as f64 * 8.0 + (i % 5) as f64 * 0.1;
        row[5] = 1.0 - c as f64 * 0.3;
        features.push(row);
        labels.push(c);
    }
    let names = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let data = libra_ml::Dataset::new(features, labels, 3, names);
    let mut rng = rng_from_seed(7 + version as u64);
    let clf = LibraClassifier::train(&data, &mut rng);
    Arc::new(ServedModel::new("tiny", version, clf))
}

/// A model trained on the *wrong* feature arity — the kind of artifact
/// a schema drift (or a bad export) would produce. It can exist in
/// memory; the serve path must refuse to run it into a panic.
fn misshapen_model() -> Arc<ServedModel> {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..45usize {
        let c = i % 3;
        features.push(vec![c as f64, (i % 4) as f64 * 0.25]);
        labels.push(c);
    }
    let data = libra_ml::Dataset::new(features, labels, 3, vec!["a".into(), "b".into()]);
    let mut rf = libra_ml::RandomForest::new(libra_ml::ForestConfig {
        n_trees: 3,
        ..Default::default()
    });
    let mut rng = rng_from_seed(13);
    rf.fit(&data, &mut rng);
    let engine = libra_infer::FlatForest::compile(&rf);
    Arc::new(ServedModel::new(
        "misshapen",
        1,
        LibraClassifier::from_engine(engine),
    ))
}

fn load(requests: usize, seed: u64) -> Vec<DecisionRequest> {
    generate_requests(&LoadConfig {
        requests,
        stations: 32,
        seed,
    })
}

fn chaos_plan() -> ServeFaults {
    ServeFaults {
        seed: 0xFA_117,
        base_latency_us: 80,
        spike_per_mille: 120,
        spike_latency_us: 9_000,
        deadline_us: 2_000,
        drop_per_mille: 40,
        stall_shard: Some(0),
        stall_ms: 1,
    }
}

#[test]
fn fault_plan_degrades_to_fallback_and_loses_nothing() {
    let model = tiny_model(1);
    let requests = load(2_000, 0xDE6);
    let faults = chaos_plan();
    let cfg = ServeConfig {
        faults: Some(faults),
        ..ServeConfig::default()
    };
    let outcome = serve_all(&cfg, Arc::clone(&model), &requests);
    assert_eq!(outcome.responses.len(), requests.len());

    let mut degraded = 0usize;
    for (request, response) in requests.iter().zip(&outcome.responses) {
        assert_eq!(request.seq, response.seq);
        let draw = faults.draw(request.seq);
        if request.ack_missing {
            // Gating by design outranks the fault lottery.
            assert!(response.gated && !response.degraded);
            continue;
        }
        assert_eq!(response.degraded, draw.degrades(), "seq {}", request.seq);
        if response.degraded {
            degraded += 1;
            let expected = model
                .classifier
                .fallback(request.features.initial_mcs, request.ba_overhead_ms);
            assert_eq!(response.action, expected);
            assert!(!response.gated);
        }
    }
    // The plan's rates (~12% spike-miss + ~4% drop) must actually bite.
    assert!(degraded > 100, "only {degraded} degraded decisions");
}

#[test]
fn chaos_digest_is_shard_count_invariant() {
    let model = tiny_model(1);
    let requests = load(4_000, 0xD16);
    let faults = chaos_plan();

    let digests: Vec<u64> = [1usize, 3, 7]
        .iter()
        .map(|&shards| {
            let cfg = ServeConfig {
                shards,
                faults: Some(faults),
                ..ServeConfig::default()
            };
            let outcome = serve_all(&cfg, Arc::clone(&model), &requests);
            assert_eq!(outcome.responses.len(), requests.len());
            response_digest(&outcome.responses)
        })
        .collect();
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], digests[2]);

    // The stall is timing-only: the same plan minus the stall produces
    // the same decisions.
    let unstalled = ServeFaults {
        stall_shard: None,
        stall_ms: 0,
        ..faults
    };
    let cfg = ServeConfig {
        faults: Some(unstalled),
        ..ServeConfig::default()
    };
    let outcome = serve_all(&cfg, Arc::clone(&model), &requests);
    assert_eq!(digests[0], response_digest(&outcome.responses));
}

#[test]
fn quiet_plan_matches_no_plan() {
    let model = tiny_model(1);
    let requests = load(1_500, 0x0F1);
    let clean = serve_all(&ServeConfig::default(), Arc::clone(&model), &requests);
    let quiet = serve_all(
        &ServeConfig {
            faults: Some(ServeFaults::default()),
            ..ServeConfig::default()
        },
        Arc::clone(&model),
        &requests,
    );
    assert_eq!(
        response_digest(&clean.responses),
        response_digest(&quiet.responses)
    );
    assert!(quiet.responses.iter().all(|r| !r.degraded));
}

#[test]
fn misshapen_model_degrades_the_whole_stream_without_panicking() {
    let model = misshapen_model();
    let requests = load(600, 0xBAD);
    let ((outcome, expected_fallbacks), report) = obs::with_scope(|| {
        let out = serve_all(&ServeConfig::default(), Arc::clone(&model), &requests);
        let expected: Vec<_> = requests
            .iter()
            .map(|r| {
                model
                    .classifier
                    .fallback(r.features.initial_mcs, r.ba_overhead_ms)
            })
            .collect();
        (out, expected)
    });
    assert_eq!(outcome.responses.len(), requests.len());
    for ((request, response), expected) in requests
        .iter()
        .zip(&outcome.responses)
        .zip(&expected_fallbacks)
    {
        assert_eq!(response.action, *expected);
        if request.ack_missing {
            assert!(response.gated && !response.degraded);
        } else {
            assert!(response.degraded && !response.gated);
        }
    }
    assert!(report.counter("serve.model_error") >= 1);
    assert_eq!(
        report.counter("serve.degraded"),
        requests.iter().filter(|r| !r.ack_missing).count() as u64
    );
}
