//! Hot-swap correctness and replay determinism — the two contracts the
//! serving subsystem exists to uphold.

use libra::LibraClassifier;
use libra_dataset::FEATURE_NAMES;
use libra_obs as obs;
use libra_serve::{
    generate_requests, response_digest, serve_all, DecisionRequest, DecisionService, LoadConfig,
    ServeConfig, ServedModel,
};
use libra_util::rng::rng_from_seed;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deliberately tiny classifier — enough structure to serve, fast
/// enough to train in-test. `version` seeds the forest so v1 and v2
/// are genuinely different models.
fn tiny_model(version: u32) -> Arc<ServedModel> {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..60usize {
        let c = i % 3;
        let mut row = vec![0.0; FEATURE_NAMES.len()];
        row[0] = c as f64 * 8.0 + (i % 5) as f64 * 0.1;
        row[5] = 1.0 - c as f64 * 0.3;
        features.push(row);
        labels.push(c);
    }
    let names = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let data = libra_ml::Dataset::new(features, labels, 3, names);
    let mut rng = rng_from_seed(7 + version as u64);
    let clf = LibraClassifier::train(&data, &mut rng);
    Arc::new(ServedModel::new("tiny", version, clf))
}

fn load(requests: usize, seed: u64) -> Vec<DecisionRequest> {
    generate_requests(&LoadConfig {
        requests,
        stations: 32,
        seed,
    })
}

#[test]
fn replay_digest_is_shard_count_invariant() {
    let model = tiny_model(1);
    let requests = load(6_000, 0xD1);

    let one = serve_all(
        &ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
        Arc::clone(&model),
        &requests,
    );
    let five = serve_all(
        &ServeConfig {
            shards: 5,
            ..ServeConfig::default()
        },
        Arc::clone(&model),
        &requests,
    );

    assert_eq!(one.responses.len(), requests.len());
    assert_eq!(five.responses.len(), requests.len());
    assert_eq!(
        response_digest(&one.responses),
        response_digest(&five.responses)
    );
    // The digest shortcut is backed by full per-decision equality.
    for (a, b) in one.responses.iter().zip(&five.responses) {
        assert_eq!(
            (a.seq, a.station_id, a.action, a.model_version, a.gated),
            (b.seq, b.station_id, b.action, b.model_version, b.gated),
        );
    }
    // More shards, same rows: only the dispatch differs.
    assert!(five.batches >= one.batches);
}

#[test]
fn missing_ack_takes_the_fallback_rule() {
    let model = tiny_model(1);
    let mut requests = load(256, 0xFA);
    for (i, r) in requests.iter_mut().enumerate() {
        r.ack_missing = i % 2 == 0;
    }
    let outcome = serve_all(&ServeConfig::default(), Arc::clone(&model), &requests);
    for (request, response) in requests.iter().zip(&outcome.responses) {
        assert_eq!(request.seq, response.seq);
        assert_eq!(response.gated, request.ack_missing);
        if request.ack_missing {
            let expected = model
                .classifier
                .fallback(request.features.initial_mcs, request.ba_overhead_ms);
            assert_eq!(response.action, expected);
        }
    }
}

/// The deterministic hot-swap schedule: with one shard, `queue_depth =
/// max_batch = 8`, the 17th submit can only return after the worker
/// has dequeued 9 envelopes, and the 9th dequeue happens strictly
/// after batch 0 flushed — so batch 0 is *guaranteed* v1, and every
/// request submitted after `publish` returns is *guaranteed* v2.
#[test]
fn hot_swap_is_visible_and_never_tears_a_batch() {
    let requests = load(32, 0x5A);
    let service = DecisionService::start(
        &ServeConfig {
            shards: 1,
            max_batch: 8,
            queue_depth: 8,
            ..Default::default()
        },
        tiny_model(1),
    );
    for &request in &requests[..17] {
        service.submit(request);
    }
    let epoch = service.publish(tiny_model(2));
    assert_eq!(epoch, 2);
    for &request in &requests[17..] {
        service.submit(request);
    }
    let outcome = service.finish();

    assert_eq!(outcome.responses.len(), 32);
    let mut by_batch: BTreeMap<(u32, u64), Vec<u32>> = BTreeMap::new();
    for r in &outcome.responses {
        assert!(
            r.model_version == 1 || r.model_version == 2,
            "unattributable version {}",
            r.model_version
        );
        by_batch
            .entry((r.shard, r.batch))
            .or_default()
            .push(r.model_version);
        if r.batch == 0 {
            assert_eq!(r.model_version, 1, "pre-publish batch must be v1");
        }
        if r.seq >= 17 {
            assert_eq!(r.model_version, 2, "post-publish submit must be v2");
        }
    }
    for ((shard, batch), versions) in by_batch {
        assert!(
            versions.windows(2).all(|w| w[0] == w[1]),
            "torn batch {shard}/{batch}: {versions:?}"
        );
    }
}

/// Same contract under real concurrency: publish races the submission
/// stream across many shards; whatever the interleaving, versions stay
/// attributable and batches stay whole.
#[test]
fn concurrent_swap_keeps_batches_whole() {
    let requests = load(4_000, 0x5B);
    let service = DecisionService::start(
        &ServeConfig {
            shards: 4,
            max_batch: 32,
            queue_depth: 64,
            ..Default::default()
        },
        tiny_model(1),
    );
    for (i, &request) in requests.iter().enumerate() {
        if i == requests.len() / 2 {
            service.publish(tiny_model(2));
        }
        service.submit(request);
    }
    let outcome = service.finish();

    assert_eq!(outcome.responses.len(), requests.len());
    let mut by_batch: BTreeMap<(u32, u64), Vec<u32>> = BTreeMap::new();
    for r in &outcome.responses {
        assert!(r.model_version == 1 || r.model_version == 2);
        by_batch
            .entry((r.shard, r.batch))
            .or_default()
            .push(r.model_version);
    }
    for ((shard, batch), versions) in by_batch {
        assert!(
            versions.windows(2).all(|w| w[0] == w[1]),
            "torn batch {shard}/{batch}: {versions:?}"
        );
    }
}

#[test]
fn tracing_observes_without_changing_decisions() {
    let model = tiny_model(1);
    let requests = load(1_500, 0x0B);
    let cfg = ServeConfig {
        shards: 3,
        max_batch: 64,
        queue_depth: 256,
        ..Default::default()
    };

    let untraced = serve_all(&cfg, Arc::clone(&model), &requests);
    let (traced, report) = obs::with_scope(|| serve_all(&cfg, Arc::clone(&model), &requests));

    assert_eq!(
        response_digest(&untraced.responses),
        response_digest(&traced.responses),
        "tracing must not change decisions"
    );
    assert_eq!(report.counter("serve.decisions"), 1_500);
    let batch_hist = report.hist("serve.batch_rows").expect("batch histogram");
    assert_eq!(batch_hist.count, traced.batches);
    assert!(
        report.hist("serve.decision_ns").is_some(),
        "latency histogram missing"
    );
}
