//! Experiments E4–E10: dataset summaries (Tables 1–2), the PHY-metric
//! CDF study (Figs 4–9), the ML study (§6.2), Gini importances
//! (Table 3), and the 3-class model of §7.

use crate::context::{classifier, gt_params, main_dataset, table, testing_dataset, SUITE_SEED};
use libra_dataset::{
    generate, main_campaign_plan, testing_campaign_plan, Action, CampaignConfig, CampaignDataset,
    Impairment, Instruments, FEATURE_NAMES,
};
use libra_ml::{cross_validate, train_test_eval, ModelKind};
use libra_util::csvio::CsvWriter;
use libra_util::stats::EmpiricalCdf;
use libra_util::table::{fmt_f, TextTable};

/// Renders a Table 1 / Table 2 style summary.
pub fn render_summary(name: &str, ds: &CampaignDataset) -> String {
    let rows = ds.summary(&table(), &gt_params());
    let mut t = TextTable::new(["", "Total", "BA", "RA", "Positions"]);
    for r in &rows {
        t.row([
            r.name.clone(),
            r.total.to_string(),
            r.ba.to_string(),
            r.ra.to_string(),
            r.positions.to_string(),
        ]);
    }
    format!("{name}\n{}", t.render())
}

/// Table 1 — main dataset summary.
pub fn table1() -> String {
    render_summary("Table 1: Main/training dataset summary", main_dataset())
}

/// Table 2 — testing dataset summary.
pub fn table2() -> String {
    render_summary("Table 2: Testing dataset summary", testing_dataset())
}

/// The six metric figures of §6.1, in paper order.
pub const METRIC_FIGURES: [(&str, usize); 6] = [
    ("Fig 4: SNR Difference (dB)", 0),
    ("Fig 5: ToF Difference (ns)", 1),
    ("Fig 6: PDP Similarity", 3),
    ("Fig 7: CSI Similarity", 4),
    ("Fig 8: Codeword Delivery Ratio", 5),
    ("Fig 9: Initial MCS", 6),
];

/// Per-class CDF of one feature over one sub-dataset.
pub struct MetricCdf {
    /// Panel name ("Displacement", …, "Overall").
    pub panel: String,
    /// CDF of the metric over the BA-labelled entries.
    pub ba: EmpiricalCdf,
    /// CDF over the RA-labelled entries.
    pub ra: EmpiricalCdf,
}

/// Computes the four panels (three impairments + overall) of one metric
/// figure over the main dataset.
pub fn metric_cdfs(feature_idx: usize) -> Vec<MetricCdf> {
    let ds = main_dataset();
    let labels = ds.label(&table(), &gt_params());
    let mut panels = Vec::new();
    let mut grab = |panel: &str, filter: Option<Impairment>| {
        let mut ba = Vec::new();
        let mut ra = Vec::new();
        for (e, gt) in ds.entries.iter().zip(&labels) {
            if filter.map_or(true, |k| e.impairment == k) {
                let v = e.features.to_row()[feature_idx];
                match gt.label {
                    Action::Ba => ba.push(v),
                    Action::Ra => ra.push(v),
                }
            }
        }
        panels.push(MetricCdf {
            panel: panel.to_string(),
            ba: EmpiricalCdf::new(ba),
            ra: EmpiricalCdf::new(ra),
        });
    };
    grab("Displacement", Some(Impairment::Displacement));
    grab("Blockage", Some(Impairment::Blockage));
    grab("Interference", Some(Impairment::Interference));
    grab("Overall", None);
    panels
}

/// Renders one metric figure as quantile rows per panel and class.
pub fn render_metric_figure(title: &str, feature_idx: usize) -> String {
    let panels = metric_cdfs(feature_idx);
    let mut t = TextTable::new(["panel", "class", "n", "p10", "p25", "p50", "p75", "p90"]);
    for p in &panels {
        for (class, cdf) in [("BA", &p.ba), ("RA", &p.ra)] {
            t.row([
                p.panel.clone(),
                class.to_string(),
                cdf.len().to_string(),
                fmt_f(cdf.quantile(0.10), 2),
                fmt_f(cdf.quantile(0.25), 2),
                fmt_f(cdf.quantile(0.50), 2),
                fmt_f(cdf.quantile(0.75), 2),
                fmt_f(cdf.quantile(0.90), 2),
            ]);
        }
    }
    format!("{title}\n{}", t.render())
}

/// Exports the full CDF step series of one metric figure as CSV.
pub fn metric_figure_csv(feature_idx: usize) -> String {
    let panels = metric_cdfs(feature_idx);
    let mut w = CsvWriter::new();
    w.row(["panel", "class", "x", "cdf"]);
    for p in &panels {
        for (class, cdf) in [("BA", &p.ba), ("RA", &p.ra)] {
            for (x, y) in cdf.steps() {
                w.row([
                    p.panel.as_str(),
                    class,
                    &format!("{x:.4}"),
                    &format!("{y:.4}"),
                ]);
            }
        }
    }
    w.as_str().to_string()
}

/// §6.2 — repeated stratified 5-fold CV for all four models.
/// `repeats` trades fidelity for runtime (the paper uses 500).
pub fn cv_study(repeats: usize) -> String {
    let train = main_dataset().to_ml(&table(), &gt_params());
    let mut t = TextTable::new(["model", "accuracy", "weighted F1", "paper acc", "paper F1"]);
    let paper = [
        ("DT", 0.95, 0.95),
        ("RF", 0.98, 0.98),
        ("SVM", 0.91, 0.91),
        ("DNN", 0.95, 0.90),
    ];
    for (kind, (_, pa, pf)) in ModelKind::ALL.iter().zip(paper) {
        let res = cross_validate(*kind, &train, 5, repeats, SUITE_SEED ^ 0xCF);
        t.row([
            kind.name().to_string(),
            fmt_f(res.accuracy, 3),
            fmt_f(res.weighted_f1, 3),
            fmt_f(pa, 2),
            fmt_f(pf, 2),
        ]);
    }
    format!(
        "5-fold stratified cross validation (main dataset, {repeats} repeats)\n{}",
        t.render()
    )
}

/// Extension: the paper's four models plus k-NN and GBDT, evaluated
/// under both protocols (CV and cross-building) in one table.
pub fn extended_models_study(repeats: usize) -> String {
    let train = main_dataset().to_ml(&table(), &gt_params());
    let test = testing_dataset().to_ml(&table(), &gt_params());
    let mut t = TextTable::new([
        "model",
        "cv acc",
        "cv F1",
        "cross-building acc",
        "cross-building F1",
    ]);
    for kind in ModelKind::EXTENDED {
        let cv = cross_validate(kind, &train, 5, repeats, SUITE_SEED ^ 0xE1);
        let (acc, f1) = train_test_eval(kind, &train, &test, SUITE_SEED ^ 0xE2);
        t.row([
            kind.name().to_string(),
            fmt_f(cv.accuracy, 3),
            fmt_f(cv.weighted_f1, 3),
            fmt_f(acc, 3),
            fmt_f(f1, 3),
        ]);
    }
    format!(
        "Extended model comparison (paper's four + k-NN + GBDT)
{}",
        t.render()
    )
}

/// §6.2 — train on the main dataset, test on the held-out buildings.
pub fn crossbuilding_study() -> String {
    let train = main_dataset().to_ml(&table(), &gt_params());
    let test = testing_dataset().to_ml(&table(), &gt_params());
    let mut t = TextTable::new(["model", "accuracy", "weighted F1", "paper acc", "paper F1"]);
    let paper = [
        ("DT", 0.85, 0.85),
        ("RF", 0.88, 0.88),
        ("SVM", 0.88, 0.88),
        ("DNN", 0.83, 0.76),
    ];
    for (kind, (_, pa, pf)) in ModelKind::ALL.iter().zip(paper) {
        let (acc, f1) = train_test_eval(*kind, &train, &test, SUITE_SEED ^ 0xCB);
        t.row([
            kind.name().to_string(),
            fmt_f(acc, 3),
            fmt_f(f1, 3),
            fmt_f(pa, 2),
            fmt_f(pf, 2),
        ]);
    }
    format!(
        "Cross-building generalization (train: main, test: buildings 1–2)\n{}",
        t.render()
    )
}

/// Table 3 — Gini importances of the LiBRA random forest.
pub fn table3() -> String {
    let imp = classifier().feature_importances();
    let paper = [0.215, 0.08, 0.16, 0.06, 0.12, 0.125, 0.26];
    let mut t = TextTable::new(["feature", "importance", "paper"]);
    for ((name, v), p) in FEATURE_NAMES.iter().zip(imp).zip(paper) {
        t.row([name.to_string(), fmt_f(*v, 3), fmt_f(p, 3)]);
    }
    format!("Table 3: Gini importance\n{}", t.render())
}

/// §7 — the 3-class (BA/RA/NA) model: 5-fold CV on the augmented main
/// dataset and accuracy on the augmented testing dataset, plus the 40 ms
/// observation-window ablation.
pub fn threeclass_study(repeats: usize) -> String {
    let params = gt_params();
    let train3 = main_dataset().to_ml_3class(&table(), &params);
    let test3 = testing_dataset().to_ml_3class(&table(), &params);
    let cv = cross_validate(
        ModelKind::RandomForest,
        &train3,
        5,
        repeats,
        SUITE_SEED ^ 0x3C,
    );
    let (acc_test, _) =
        train_test_eval(ModelKind::RandomForest, &train3, &test3, SUITE_SEED ^ 0x3D);

    // 40 ms windows: 2 frames per window instead of 100 (1 s).
    let short = Instruments {
        trace_frames: 2,
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        instruments: short,
        ..CampaignConfig::default()
    };
    let main_short = generate(&main_campaign_plan(), &cfg);
    let test_short = generate(&testing_campaign_plan(), &cfg);
    let train3s = main_short.to_ml_3class(&table(), &params);
    let test3s = test_short.to_ml_3class(&table(), &params);
    let (acc_short, _) = train_test_eval(
        ModelKind::RandomForest,
        &train3s,
        &test3s,
        SUITE_SEED ^ 0x3E,
    );

    let mut t = TextTable::new(["setting", "accuracy", "paper"]);
    t.row([
        "RF 3-class, 5-fold CV (1 s windows)".to_string(),
        fmt_f(cv.accuracy, 3),
        "0.98".into(),
    ]);
    t.row([
        "RF 3-class, cross-building (1 s windows)".to_string(),
        fmt_f(acc_test, 3),
        "0.94".into(),
    ]);
    t.row([
        "RF 3-class, cross-building (40 ms windows)".to_string(),
        fmt_f(acc_short, 3),
        "~0.91 (−3 pp)".into(),
    ]);
    format!("3-class BA/RA/NA model (§7)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_cdfs_have_four_panels() {
        let panels = metric_cdfs(0);
        assert_eq!(panels.len(), 4);
        let overall = &panels[3];
        assert_eq!(
            overall.ba.len() + overall.ra.len(),
            main_dataset().entries.len()
        );
    }

    #[test]
    fn snr_drop_separates_displacement_classes() {
        // Fig 4a: big SNR drops are BA territory — the BA median drop
        // must exceed the RA median drop under displacement.
        let panels = metric_cdfs(0);
        let disp = &panels[0];
        assert!(
            disp.ba.quantile(0.5) > disp.ra.quantile(0.5),
            "BA median {} !> RA median {}",
            disp.ba.quantile(0.5),
            disp.ra.quantile(0.5)
        );
    }

    #[test]
    fn pdp_similarity_stays_high() {
        // Fig 6: 60 GHz channels are sparse → PDP similarity is high for
        // most entries (paper: ≥0.65 always; we assert the bulk).
        let panels = metric_cdfs(3);
        let overall = &panels[3];
        assert!(
            overall.ba.quantile(0.25) > 0.5,
            "q25 {}",
            overall.ba.quantile(0.25)
        );
    }

    #[test]
    fn table_renders() {
        let s = table1();
        assert!(s.contains("Displacement") && s.contains("Overall"));
    }

    #[test]
    fn figure_csv_parses() {
        let csv = metric_figure_csv(6);
        let rows = libra_util::csvio::parse_csv(&csv);
        assert!(rows.len() > 100);
        assert_eq!(rows[0], vec!["panel", "class", "x", "cdf"]);
    }
}
