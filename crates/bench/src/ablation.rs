//! Ablation studies for the design choices called out in DESIGN.md §5.
//!
//! These are not paper experiments — they quantify why the reproduction
//! (and the system it reproduces) is built the way it is:
//!
//! * [`ablation_isi`] — remove the ISI/delay-spread penalty from the PHY
//!   error model: SNR then fully determines the best MCS, and the
//!   classification problem loses the structure the paper observed.
//! * [`ablation_sidelobes`] — replace the imperfect beam patterns with
//!   clean single-lobe beams: the NLOS-beats-LOS cases disappear.
//! * [`ablation_fallback`] — replace LiBRA's missing-ACK fallback rule
//!   with always-RA or always-BA.
//! * [`ablation_probe`] — fixed vs adaptive upward-probe interval.
//! * [`ablation_alpha`] — how the ground-truth class balance moves with
//!   the utility weight α.

use crate::context::{classifier, gt_params, main_dataset, table, testing_dataset, SUITE_SEED};
use libra::prelude::*;
use libra::sim::run_policy_segment;
use libra::ScenarioType;
use libra::{LinkState, PolicyKind, SegmentData, SimConfig};
use libra_dataset::{generate, main_campaign_plan, Instruments};
use libra_mac::ProtocolParams;
use libra_phy::ErrorModel;
use libra_util::par::{par_map, par_map_index};
use libra_util::rng::{derive_seed_index, rng_from_seed};
use libra_util::table::{fmt_f, TextTable};

/// ISI ablation: class balance and RF accuracy with and without the
/// delay-spread penalty in the error model.
pub fn ablation_isi() -> String {
    let base = main_dataset();
    let no_isi_instruments = Instruments {
        model: ErrorModel::without_isi(),
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        instruments: no_isi_instruments,
        ..CampaignConfig::default()
    };
    let no_isi = generate(&main_campaign_plan(), &cfg);

    let mut t = TextTable::new(["variant", "BA", "RA", "RF 5-fold acc", "top feature"]);
    for (name, ds) in [
        ("with ISI penalty (paper-like)", base),
        ("without ISI penalty", &no_isi),
    ] {
        let rows = ds.summary(&table(), &gt_params());
        let overall = rows.last().expect("overall row");
        let ml = ds.to_ml(&table(), &gt_params());
        let cv = libra_ml::cross_validate(libra_ml::ModelKind::RandomForest, &ml, 5, 1, 11);
        // Importances of a fresh forest on this variant.
        let mut forest = libra_ml::RandomForest::new(libra_ml::ForestConfig::default());
        let mut rng = rng_from_seed(12);
        forest.fit(&ml, &mut rng);
        let imp = forest.feature_importances();
        let top = imp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, v)| format!("{} ({:.2})", libra_dataset::FEATURE_NAMES[i], v))
            .unwrap_or_default();
        t.row([
            name.to_string(),
            overall.ba.to_string(),
            overall.ra.to_string(),
            fmt_f(cv.accuracy, 3),
            top,
        ]);
    }
    format!(
        "Ablation: ISI/delay-spread penalty in the PHY error model\n{}",
        t.render()
    )
}

/// Side-lobe ablation: label balance with clean (single-lobe) beams.
pub fn ablation_sidelobes() -> String {
    use libra_arrays::{BeamPattern, Codebook};
    // Codebook with identical steering but no side lobes.
    let clean = Codebook::new(
        (0..25)
            .map(|i| {
                let steer = -60.0 + 5.0 * i as f64;
                let bw = 25.0 + 10.0 * (steer.abs() / 60.0);
                BeamPattern::with_side_lobes(steer, bw, vec![])
            })
            .collect(),
    );
    let instruments = Instruments {
        codebook: clean,
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        instruments,
        ..CampaignConfig::default()
    };
    let clean_ds = generate(&main_campaign_plan(), &cfg);

    let mut t = TextTable::new(["variant", "displacement BA %", "overall BA %"]);
    for (name, ds) in [
        ("imperfect side lobes (paper-like)", main_dataset()),
        ("clean beams", &clean_ds),
    ] {
        let rows = ds.summary(&table(), &gt_params());
        let disp = &rows[0];
        let overall = rows.last().expect("overall");
        t.row([
            name.to_string(),
            fmt_f(disp.ba as f64 / disp.total.max(1) as f64 * 100.0, 1),
            fmt_f(overall.ba as f64 / overall.total.max(1) as f64 * 100.0, 1),
        ]);
    }
    format!("Ablation: imperfect beam side lobes\n{}", t.render())
}

/// Fallback-rule ablation: LiBRA's missing-ACK rule vs always-RA /
/// always-BA fallbacks, measured as mean byte deficit vs Oracle-Data on
/// the testing dataset.
pub fn ablation_fallback() -> String {
    let ds = testing_dataset();
    let params = ProtocolParams::new(BaOverheadPreset::Directional7, 2.0);
    let sim = SimConfig::new(params);
    let base = classifier();

    let mut variants: Vec<(&str, libra::LibraClassifier)> = Vec::new();
    let mut paper = base.clone();
    variants.push(("paper rule (MCS<6 → BA, else by overhead)", paper.clone()));
    paper.fallback_mcs_threshold = 0;
    paper.fallback_ba_overhead_ms = f64::INFINITY;
    variants.push(("always BA on missing ACK", paper.clone()));
    paper.fallback_ba_overhead_ms = 0.0;
    variants.push(("always RA on missing ACK", paper));

    let mut t = TextTable::new(["fallback", "mean deficit MB", "p90 deficit MB"]);
    for (name, clf) in &variants {
        let deficits: Vec<f64> = par_map(&ds.entries, |_, entry| {
            let seg = SegmentData::from_entry(entry, 1000.0);
            let state = LinkState::at_mcs(entry.initial.best_mcs());
            let oracle = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
            let out = run_policy_segment(&seg, PolicyKind::Libra, Some(clf), state, &sim);
            ((oracle.bytes - out.bytes) / 1e6).max(0.0)
        });
        t.row([
            name.to_string(),
            fmt_f(libra_util::stats::mean(&deficits), 2),
            fmt_f(libra_util::stats::percentile(&deficits, 90.0), 2),
        ]);
    }
    format!(
        "Ablation: missing-ACK fallback rule (BA 250 ms, FAT 2 ms)\n{}",
        t.render()
    )
}

/// Probe-interval ablation: adaptive `T = T0·min(2^k, 25)` vs fixed `T0`
/// on mobility timelines.
pub fn ablation_probe(n_timelines: usize) -> String {
    let clf = classifier();
    let instruments = Instruments::default();
    let params = ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0);
    let tl_cfg = TimelineConfig::default();

    let mut t = TextTable::new(["probing", "mean bytes (MB)"]);
    // Adaptive backoff is the `t0_frames`-based default; "fixed" pins the
    // backoff by treating every probe as the first (t0 large enough that
    // the 2^k multiplier is inert — emulated by capping failed_probes
    // through a huge cdr_ori? Instead: compare t0 = 5 vs t0 = 1 with no
    // backoff effect is not directly expressible; we instead compare the
    // default against an aggressive prober (t0 = 1) and a lazy one
    // (t0 = 50).
    for (name, t0) in [
        ("adaptive, T0 = 5 (paper)", 5u32),
        ("aggressive, T0 = 1", 1),
        ("lazy, T0 = 50", 50),
    ] {
        let mut sim = SimConfig::new(params);
        sim.t0_frames = t0;
        let bytes: Vec<f64> = par_map_index(n_timelines, |i| {
            let mut rng = rng_from_seed(derive_seed_index(SUITE_SEED ^ 0xAB, i as u64));
            let tl = generate_timeline(ScenarioType::Mobility, &tl_cfg, &mut rng);
            let r = run_timeline(&tl, PolicyKind::Libra, Some(clf), &sim, &instruments);
            r.bytes / 1e6
        });
        t.row([name.to_string(), fmt_f(libra_util::stats::mean(&bytes), 1)]);
    }
    format!(
        "Ablation: upward-probe interval ({n_timelines} mobility timelines)\n{}",
        t.render()
    )
}

/// Confidence-gate extension: route low-confidence predictions through
/// the fallback rule instead of trusting the model. Sweeps the gate θ
/// on the single-impairment testing dataset at high BA overhead (where
/// mispredictions are most expensive).
pub fn ablation_confidence_gate() -> String {
    let ds = testing_dataset();
    let clf = classifier();
    let params = ProtocolParams::new(BaOverheadPreset::Directional7, 2.0);
    let mut t = TextTable::new(["gate θ", "mean deficit MB", "p90 deficit MB"]);
    for gate in [None, Some(0.5), Some(0.7), Some(0.9)] {
        let mut sim = SimConfig::new(params);
        sim.libra_confidence_gate = gate;
        let deficits: Vec<f64> = par_map(&ds.entries, |_, entry| {
            let seg = SegmentData::from_entry(entry, 1000.0);
            let state = LinkState::at_mcs(entry.initial.best_mcs());
            let oracle = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
            let out = run_policy_segment(&seg, PolicyKind::Libra, Some(clf), state, &sim);
            ((oracle.bytes - out.bytes) / 1e6).max(0.0)
        });
        t.row([
            gate.map_or("none (paper)".to_string(), |g| format!("{g:.1}")),
            fmt_f(libra_util::stats::mean(&deficits), 2),
            fmt_f(libra_util::stats::percentile(&deficits, 90.0), 2),
        ]);
    }
    format!(
        "Extension: confidence-gated LiBRA (BA 250 ms, FAT 2 ms)\n{}",
        t.render()
    )
}

/// History-window extension (§7 future work): does a classifier that
/// sees the last K observation windows beat single-window LiBRA on
/// pattern-heavy timelines (alternating blockage / interference)?
/// Trained on oracle-labelled timelines, evaluated on fresh ones.
pub fn ablation_history(n_train: usize, n_eval: usize) -> String {
    use libra::history::{
        collect_history_dataset, run_timeline_single_window, run_timeline_with_history,
        HistoryClassifier,
    };
    let instruments = Instruments::default();
    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
    let scenarios = [
        ScenarioType::Blockage,
        ScenarioType::Interference,
        ScenarioType::Mixed,
    ];
    let fallback = classifier();

    let mut t = TextTable::new(["variant", "mean bytes (MB)", "vs single-window"]);
    // Baseline: single-window LiBRA on the eval timelines.
    let eval_pairs: Vec<(ScenarioType, usize)> = (0..n_eval)
        .flat_map(|i| scenarios.iter().map(move |&sc| (sc, i)).collect::<Vec<_>>())
        .collect();
    let eval_timelines: Vec<_> = par_map(&eval_pairs, |_, &(sc, i)| {
        let mut rng = rng_from_seed(derive_seed_index(
            SUITE_SEED ^ 0x415,
            i as u64 * 31 + sc as u64,
        ));
        libra::generate_timeline(sc, &libra::TimelineConfig::default(), &mut rng)
    });
    let baseline: Vec<f64> = par_map(&eval_timelines, |_, tl| {
        run_timeline_single_window(tl, fallback, &sim, &instruments) / 1e6
    });
    let base_mean = libra_util::stats::mean(&baseline);
    t.row([
        "single window (LiBRA)".to_string(),
        fmt_f(base_mean, 1),
        "—".into(),
    ]);

    for window in [2usize, 3] {
        let data = collect_history_dataset(
            &scenarios,
            n_train,
            window,
            &sim,
            &instruments,
            SUITE_SEED ^ 0x416,
        );
        let mut rng = rng_from_seed(SUITE_SEED ^ 0x417);
        let hclf = HistoryClassifier::train(&data, window, &mut rng);
        let bytes: Vec<f64> = par_map(&eval_timelines, |_, tl| {
            run_timeline_with_history(tl, &hclf, fallback, &sim, &instruments) / 1e6
        });
        let mean = libra_util::stats::mean(&bytes);
        t.row([
            format!("history K = {window}"),
            fmt_f(mean, 1),
            format!("{:+.1}%", (mean - base_mean) / base_mean * 100.0),
        ]);
    }
    format!(
        "Extension: K-window history classification ({n_train} training timelines/scenario, \
         {n_eval} eval timelines/scenario)\n{}",
        t.render()
    )
}

/// Online-adaptation extension: deploy into an unseen building and keep
/// learning from outcomes. Reports the data ratio vs Oracle-Data over
/// consecutive deployment batches for the static model vs the online
/// learner (the learner should close part of the cross-building gap).
pub fn ablation_online(n_timelines: usize) -> String {
    use libra::online::{run_timeline_online, OnlineLibra};
    use libra::PolicyKind;
    let instruments = Instruments::default();
    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::Directional7, 2.0));
    // Deployment environment: the held-out open area of Building 2.
    let tl_cfg = libra::TimelineConfig {
        environment: Some(libra_channel::Environment::Building2OpenArea),
        ..Default::default()
    };
    let offline = main_dataset().to_ml_3class(&table(), &gt_params());
    let mut online = OnlineLibra::new(offline, 20, SUITE_SEED ^ 0x0A1);
    let static_clf = classifier();

    let timelines: Vec<libra::Timeline> = par_map_index(n_timelines, |i| {
        let mut rng = rng_from_seed(derive_seed_index(SUITE_SEED ^ 0x0A2, i as u64));
        generate_timeline(ScenarioType::Mixed, &tl_cfg, &mut rng)
    });

    // The oracle and static passes are stateless per timeline and run in
    // parallel; the online learner mutates as it goes, so its pass stays
    // sequential in deployment order.
    let reference: Vec<(f64, f64)> = par_map(&timelines, |_, tl| {
        let oracle = run_timeline(tl, PolicyKind::OracleData, None, &sim, &instruments).bytes;
        let stat = run_timeline(tl, PolicyKind::Libra, Some(static_clf), &sim, &instruments).bytes;
        (oracle, stat)
    });
    let mut rows: Vec<(f64, f64)> = Vec::new();
    for (tl, &(oracle, stat)) in timelines.iter().zip(&reference) {
        let onl = run_timeline_online(tl, &mut online, &sim, &instruments);
        if oracle > 0.0 {
            rows.push((stat / oracle, onl / oracle));
        }
    }

    let mut t = TextTable::new(["deployment batch", "static LiBRA", "online LiBRA"]);
    let half = rows.len() / 2;
    let mean_of = |xs: &[(f64, f64)], f: fn(&(f64, f64)) -> f64| {
        libra_util::stats::mean(&xs.iter().map(f).collect::<Vec<_>>())
    };
    t.row([
        format!("first half ({half} timelines)"),
        fmt_f(mean_of(&rows[..half], |r| r.0), 3),
        fmt_f(mean_of(&rows[..half], |r| r.1), 3),
    ]);
    t.row([
        format!("second half ({} timelines)", rows.len() - half),
        fmt_f(mean_of(&rows[half..], |r| r.0), 3),
        fmt_f(mean_of(&rows[half..], |r| r.1), 3),
    ]);
    format!(
        "Extension: online adaptation in an unseen building (data ratio vs Oracle-Data; \
         learner buffered {} outcome-labels, retrained {}×)\n{}",
        online.buffer_len(),
        online.retrain_count,
        t.render()
    )
}

/// α sweep: ground-truth class balance as the utility weight moves from
/// pure delay (α = 0) to pure throughput (α = 1), at two BA overheads.
pub fn ablation_alpha() -> String {
    let ds = main_dataset();
    let mut t = TextTable::new(["alpha", "BA overhead", "BA labels", "RA labels"]);
    for ba_ms in [0.5, 250.0] {
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let params = libra_dataset::GroundTruthParams {
                alpha,
                ba_ms,
                fat_ms: 2.0,
                ..Default::default()
            };
            let labels = ds.label(&table(), &params);
            let ba = labels
                .iter()
                .filter(|g| g.label == libra_dataset::Action::Ba)
                .count();
            t.row([
                fmt_f(alpha, 2),
                format!("{ba_ms} ms"),
                ba.to_string(),
                (labels.len() - ba).to_string(),
            ]);
        }
    }
    format!(
        "Ablation: utility weight α vs ground-truth class balance\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_with_expensive_ba_prefers_ra() {
        // With α = 0 (pure delay) and 250 ms BA, RA labels must dominate
        // compared to α = 1.
        let ds = main_dataset();
        let mk = |alpha| libra_dataset::GroundTruthParams {
            alpha,
            ba_ms: 250.0,
            fat_ms: 2.0,
            ..Default::default()
        };
        let ra_at = |alpha| {
            ds.label(&table(), &mk(alpha))
                .iter()
                .filter(|g| g.label == libra_dataset::Action::Ra)
                .count()
        };
        assert!(ra_at(0.0) > ra_at(1.0), "{} !> {}", ra_at(0.0), ra_at(1.0));
    }
}
