//! Scenario-fuzzing benchmark section: a bounded coverage-guided search
//! over `ScenarioSpec` space (see [`libra_fuzz`]), reported as both a
//! human-readable table of the hardest cases found and the
//! machine-readable `results/BENCH_fuzz.json` record (scenarios/sec,
//! mean/max regret, coverage buckets), mirroring the inference and
//! training microbenchmarks.

use libra_fuzz::{bench_json, default_classifier, run_fuzz, FuzzConfig};
use libra_obs as obs;
use libra_util::table::{fmt_f, TextTable};
use std::time::Instant;

/// Where the machine-readable benchmark record lands.
pub fn bench_path() -> std::path::PathBuf {
    libra_util::paths::results_root().join("BENCH_fuzz.json")
}

/// Hardest cases shown in the rendered summary table.
const SHOW: usize = 8;

/// Runs one bounded coverage-guided fuzz pass (`budget` candidates at
/// the default master seed) and writes `results/BENCH_fuzz.json`. The
/// search itself is deterministic in the seed; only the throughput
/// figure varies run to run.
pub fn fuzz_bench(budget: usize) -> String {
    let clf = default_classifier();
    let cfg = FuzzConfig {
        budget,
        ..FuzzConfig::default()
    };

    let t0 = Instant::now();
    let out = {
        let _span = obs::span("bench.fuzz.pass");
        run_fuzz(&cfg, clf)
    };
    let secs = t0.elapsed().as_secs_f64();

    let json = bench_json(&out.stats, out.corpus.len(), secs);
    let path = bench_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }

    let mut table = TextTable::new(["scenario", "env", "mean regret", "max regret", "buckets"]);
    for entry in out.corpus.iter().take(SHOW) {
        table.row([
            entry.spec.name.clone(),
            entry.spec.env.name().to_string(),
            fmt_f(entry.mean_regret, 4),
            fmt_f(entry.max_regret, 4),
            entry.coverage.len().to_string(),
        ]);
    }

    let sps = if secs > 0.0 {
        out.stats.evaluated as f64 / secs
    } else {
        0.0
    };
    format!(
        "Scenario fuzzing (seed {:#x}): {} candidates in {:.1} s ({:.1}/s), \
         {} coverage buckets, {} kept, corpus {}\nhardest cases:\n{}",
        cfg.seed,
        out.stats.evaluated,
        secs,
        sps,
        out.stats.coverage_buckets,
        out.stats.kept,
        out.corpus.len(),
        table.render()
    )
}
