//! Decision-service benchmark section: drives the sharded
//! `libra-serve` subsystem with the deterministic load generator and
//! reports sustained decisions/sec, the batch-size distribution, and
//! submit-to-decision latency percentiles — written both as a
//! human-readable table and as the machine-readable
//! `results/BENCH_serve.json` record (ROADMAP item 2).
//!
//! Three passes, each measuring what the others would distort:
//!
//! 1. **Throughput** — untraced, full stream: the hot path never
//!    touches a clock, so this is the honest decisions/sec figure.
//! 2. **Replay invariance** — a capped prefix served at 1 shard and at
//!    the benchmark shard count; the response digests must match
//!    bitwise (the subsystem's core correctness contract).
//! 3. **Latency** — traced, capped prefix: per-decision wall clocks
//!    and the batch-rows histogram come from the `obs` report.

use libra_fuzz::default_classifier;
use libra_obs as obs;
use libra_serve::{
    generate_requests, response_digest, serve_all, LoadConfig, ServeConfig, ServedModel,
};
use libra_util::table::{fmt_f, TextTable};
use std::sync::Arc;
use std::time::Instant;

/// Where the machine-readable benchmark record lands.
pub fn bench_path() -> std::path::PathBuf {
    libra_util::paths::results_root().join("BENCH_serve.json")
}

/// Load-generator seed for the benchmark stream.
const SEED: u64 = 0x5E27E;

/// Stations in the benchmark stream (spreads work across shards).
const STATIONS: u64 = 64;

/// Prefix length used by the traced latency pass and the replay
/// invariance check; both would only get slower, not more accurate,
/// on the full stream.
const CAPPED: usize = 20_000;

/// Runs the three benchmark passes over a `requests`-long generated
/// stream on `shards` shards and writes `results/BENCH_serve.json`.
pub fn serve_bench(requests: usize, shards: usize) -> String {
    let model = Arc::new(ServedModel::new(
        "bench-default",
        1,
        default_classifier().clone(),
    ));
    let cfg = ServeConfig {
        shards,
        ..Default::default()
    };
    let stream = generate_requests(&LoadConfig {
        requests,
        stations: STATIONS,
        seed: SEED,
    });

    // Pass 1: untraced throughput over the full stream.
    let t0 = Instant::now();
    let outcome = serve_all(&cfg, Arc::clone(&model), &stream);
    let secs = t0.elapsed().as_secs_f64();
    let digest = response_digest(&outcome.responses);
    let dps = if secs > 0.0 {
        outcome.responses.len() as f64 / secs
    } else {
        0.0
    };

    // Pass 2: replay invariance on a capped prefix — 1 shard vs the
    // benchmark shape must produce the same digest.
    let prefix = &stream[..CAPPED.min(stream.len())];
    let one = serve_all(
        &ServeConfig { shards: 1, ..cfg },
        Arc::clone(&model),
        prefix,
    );
    let many = serve_all(&cfg, Arc::clone(&model), prefix);
    let invariant = response_digest(&one.responses) == response_digest(&many.responses);

    // Pass 3: traced latency + batch-size distribution on the prefix.
    let (_, report) = obs::with_scope(|| serve_all(&cfg, Arc::clone(&model), prefix));
    let latency = report
        .hist("serve.decision_ns")
        .cloned()
        .unwrap_or_default();
    let batch_rows = report.hist("serve.batch_rows").cloned().unwrap_or_default();
    let fallbacks = report.counter("serve.fallback");

    let json = bench_json(
        requests,
        &cfg,
        dps,
        outcome.batches,
        digest,
        invariant,
        &latency,
        &batch_rows,
    );
    let path = bench_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }

    let mut table = TextTable::new(["metric", "value"]);
    table.row(["decisions/sec".into(), fmt_f(dps, 0)]);
    table.row(["batches".into(), outcome.batches.to_string()]);
    table.row(["batch rows (mean)".into(), fmt_f(batch_rows.mean(), 1)]);
    table.row([
        "batch rows (p50/max)".into(),
        format!("{}/{}", batch_rows.percentile(0.50), batch_rows.max),
    ]);
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        table.row([
            format!("decision latency {label}"),
            format!("{:.1} us", latency.percentile(q) as f64 / 1e3),
        ]);
    }
    table.row([
        "replay digest 1 vs N shards".to_string(),
        if invariant { "identical" } else { "MISMATCH" }.to_string(),
    ]);
    format!(
        "Decision service (seed {SEED:#x}): {} requests, {} stations, {} shard(s), \
         batch {}, {} fallback decisions\ndigest {digest:#018x}\n{}",
        requests,
        STATIONS,
        cfg.shards,
        cfg.max_batch,
        fallbacks,
        table.render()
    )
}

/// Hand-rendered machine-readable record (the workspace has no JSON
/// dependency by design).
#[allow(clippy::too_many_arguments)]
fn bench_json(
    requests: usize,
    cfg: &ServeConfig,
    dps: f64,
    batches: u64,
    digest: u64,
    invariant: bool,
    latency: &obs::Hist,
    batch_rows: &obs::Hist,
) -> String {
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"requests\": {requests},\n  \"shards\": {},\n  \
         \"max_batch\": {},\n  \"seed\": \"{SEED:#x}\",\n  \"decisions_per_sec\": {dps:.2},\n  \
         \"batches\": {batches},\n  \"digest\": \"{digest:#018x}\",\n  \
         \"replay_invariant\": {invariant},\n  \"latency_ns\": {{ \"p50\": {}, \"p95\": {}, \
         \"p99\": {}, \"mean\": {:.1}, \"samples\": {} }},\n  \"batch_rows\": {{ \"mean\": {:.2}, \
         \"p50\": {}, \"max\": {}, \"batches\": {} }}\n}}\n",
        cfg.shards,
        cfg.max_batch,
        latency.percentile(0.50),
        latency.percentile(0.95),
        latency.percentile(0.99),
        latency.mean(),
        latency.count,
        batch_rows.mean(),
        batch_rows.percentile(0.50),
        batch_rows.max,
        batch_rows.count,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed() {
        let cfg = ServeConfig::default();
        let json = bench_json(
            1000,
            &cfg,
            12345.6,
            16,
            0xdead_beef,
            true,
            &obs::Hist::default(),
            &obs::Hist::default(),
        );
        assert!(json.contains("\"bench\": \"serve\""));
        assert!(json.contains("\"decisions_per_sec\": 12345.60"));
        assert!(json.contains("\"digest\": \"0x00000000deadbeef\""));
        assert!(json.contains("\"replay_invariant\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
