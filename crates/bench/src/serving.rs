//! Inference-serving microbenchmark (`inferbench`): recursive trees vs
//! the flat and blocked engines of `libra-infer`.
//!
//! LiBRA consults its classifier every other frame (2×20 ms observation
//! windows, §7), so prediction latency is a deployment concern the paper
//! leaves implicit. This section measures batched prediction over the
//! full §5 main-campaign feature matrix with every engine — the
//! recursive forest, the flat struct-of-arrays walk, and the branchless
//! blocked kernel (plus its `f32`-quantized tables when opted in) —
//! asserts the exact paths are prediction-identical row by row (the
//! greppable `identity self-check` line carries the shared FNV digest),
//! and records per-engine per-row latency to `results/infer_bench.txt`
//! so successive runs can be compared.
//!
//! The timed 1k-row batch section runs **untraced** (outside any obs
//! scope) so every engine is measured on its clock-free hot path.

use crate::context::{classifier, gt_params, main_dataset, table, CLASSIFIER_SEED};
use libra_infer::{BlockedForest, EngineOpts, Exactness};
use libra_ml::{Classifier, ForestConfig, RandomForest};
use libra_obs as obs;
use libra_util::checksum::fnv1a64;
use libra_util::rng::rng_from_seed;
use libra_util::table::{fmt_f, TextTable};

/// Where the microbenchmark records its measurements.
pub fn report_path() -> std::path::PathBuf {
    libra_util::paths::results_root().join("infer_bench.txt")
}

/// The recursive forest the suite classifier was compiled from —
/// retrained from the suite seed, it is the exact pre-compilation model.
pub fn recursive_reference() -> RandomForest {
    let data = main_dataset().to_ml_3class(&table(), &gt_params());
    let mut forest = RandomForest::new(ForestConfig::default());
    let mut rng = rng_from_seed(CLASSIFIER_SEED);
    forest.fit(&data, &mut rng);
    forest
}

/// FNV-1a digest of a prediction vector (class indices as bytes) — the
/// value the `identity self-check` line pins across engines and ISAs.
fn prediction_digest(preds: &[usize]) -> u64 {
    let bytes: Vec<u8> = preds.iter().map(|&c| c as u8).collect();
    fnv1a64(&bytes)
}

/// Times `passes` full-matrix prediction passes, returning (total
/// seconds, predictions from the last pass, scope report). Timing flows
/// through the telemetry spine: each pass runs under a
/// `bench.serving.pass` span inside a collection scope, and the total
/// is read back from the scope report's wall histogram. The report also
/// carries whatever the engine recorded (per-row latency, batch sizes).
fn time_passes<F: FnMut() -> Vec<usize>>(
    passes: usize,
    mut run: F,
) -> (f64, Vec<usize>, obs::Report) {
    let mut preds = run(); // warm-up, untimed
    let ((), report) = obs::with_scope(|| {
        for _ in 0..passes {
            let _span = obs::span("bench.serving.pass");
            preds = run();
        }
    });
    (
        report.wall_nanos("bench.serving.pass") as f64 / 1e9,
        preds,
        report,
    )
}

/// Times `reps` untraced batch passes with the engine's clock-free hot
/// path, returning per-row nanoseconds.
fn time_untraced(reps: usize, rows: usize, mut run: impl FnMut(&mut Vec<usize>)) -> f64 {
    let mut out = Vec::new();
    run(&mut out); // warm-up, untimed
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        run(&mut out);
    }
    t0.elapsed().as_nanos() as f64 / (reps * rows) as f64
}

/// Runs the microbenchmark: `passes` timed prediction passes over the
/// full campaign feature matrix per engine, plus an untraced 1k-row
/// batch comparison. All engines read borrowed row slices straight out
/// of the columnar frame — no per-pass feature copies. Panics if the
/// exact engines ever disagree on a single row — speed without identity
/// is worthless. `eopts` echoes the serving selection into the report
/// and (with `--quantized`) adds the quantized tables to the matrix.
pub fn serving_bench(passes: usize, eopts: &EngineOpts) -> String {
    let data = main_dataset().to_ml_3class(&table(), &gt_params());
    let view = data.view();
    let recursive = recursive_reference();
    let engine = classifier().engine();
    let blocked = BlockedForest::compile(engine, Exactness::Exact);
    let quantized = eopts
        .quantized
        .then(|| BlockedForest::compile(engine, Exactness::Quantized));

    // Prediction identity on every row of the §5 campaign dataset:
    // classes per engine, and the per-class probability vectors bitwise.
    let reference = recursive.predict_view(&view);
    let flat_preds = engine.predict_view(&view);
    let blocked_preds = blocked.predict_view(&view);
    assert_eq!(
        reference, flat_preds,
        "flat engine diverged from the recursive forest on the campaign dataset"
    );
    assert_eq!(
        reference, blocked_preds,
        "blocked engine diverged from the recursive forest on the campaign dataset"
    );
    for row in data.rows() {
        let rp = recursive.predict_proba_one(row);
        let fp = engine.predict_proba_one(row);
        let bp = blocked.predict_proba_one(row);
        for ((a, b), c) in rp.iter().zip(&fp).zip(&bp) {
            assert_eq!(a.to_bits(), b.to_bits(), "flat probs diverged bitwise");
            assert_eq!(a.to_bits(), c.to_bits(), "blocked probs diverged bitwise");
        }
    }
    let digest = prediction_digest(&reference);
    let self_check = format!(
        "identity self-check: recursive/flat/blocked exact paths bitwise-identical on {} rows, digest {:#018x}",
        data.len(),
        digest
    );

    // Full-matrix passes (traced: the flat engine reports per-row wall
    // time, the blocked engine per-batch wall time).
    let (rec_s, rec_preds, _) = time_passes(passes, || recursive.predict_view(&view));
    let mut out = Vec::new();
    let (flat_s, flat_timed, flat_report) = time_passes(passes, || {
        engine.predict_batch_into(&view, &mut out);
        out.clone()
    });
    let (blocked_s, blocked_timed, _) = time_passes(passes, || {
        blocked.predict_batch_into(&view, &mut out);
        out.clone()
    });
    assert_eq!(
        rec_preds, flat_timed,
        "engines diverged during timing passes"
    );
    assert_eq!(
        rec_preds, blocked_timed,
        "engines diverged during timing passes"
    );

    let n = (data.len() * passes) as f64;
    let mut t = TextTable::new([
        "engine",
        "rows/pass",
        "passes",
        "total (s)",
        "Mrows/s",
        "ns/row",
    ]);
    let mut engines = vec![
        ("recursive", rec_s),
        ("flat", flat_s),
        ("blocked", blocked_s),
    ];
    let mut quant_note = String::new();
    if let Some(q) = &quantized {
        let (quant_s, quant_timed, _) = time_passes(passes, || {
            q.predict_batch_into(&view, &mut out);
            out.clone()
        });
        let diverged = quant_timed
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a != b)
            .count();
        quant_note = format!(
            "quantized (f32 thresholds) diverged on {diverged}/{} rows — allowed only near thresholds\n",
            data.len()
        );
        engines.push(("blocked+quantized", quant_s));
    }
    for (name, secs) in &engines {
        t.row([
            name.to_string(),
            data.len().to_string(),
            passes.to_string(),
            fmt_f(*secs, 3),
            fmt_f(n / secs / 1e6, 2),
            fmt_f(secs * 1e9 / n, 1),
        ]);
    }

    // Untraced 1k-row batch: every engine on its clock-free hot path.
    let k = data.len().min(1000);
    let sel: Vec<usize> = (0..k).collect();
    let batch = data.select(&sel);
    let reps = passes.max(1) * 8;
    let rec_ns = time_untraced(reps, k, |o| recursive.predict_batch_into(&batch, o));
    let flat_ns = time_untraced(reps, k, |o| engine.predict_batch_into(&batch, o));
    let blocked_ns = time_untraced(reps, k, |o| blocked.predict_batch_into(&batch, o));
    let mut batch_lines = format!(
        "1k-row batch ({k} rows, {reps} reps, untraced): recursive {rn} ns/row, flat {fn_} ns/row, blocked {bn} ns/row\nblocked vs flat: {sp}x\n",
        rn = fmt_f(rec_ns, 1),
        fn_ = fmt_f(flat_ns, 1),
        bn = fmt_f(blocked_ns, 1),
        sp = fmt_f(flat_ns / blocked_ns, 2),
    );
    if let Some(q) = &quantized {
        let quant_ns = time_untraced(reps, k, |o| q.predict_batch_into(&batch, o));
        batch_lines.push_str(&format!(
            "blocked+quantized: {} ns/row ({}x vs flat)\n",
            fmt_f(quant_ns, 1),
            fmt_f(flat_ns / quant_ns, 2)
        ));
    }

    let row_lat = flat_report
        .hist("infer.serve.row_ns")
        .map(|h| {
            format!(
                "flat per-row latency (traced): p50 ≤ {} ns, p99 ≤ {} ns over {} rows\n",
                h.percentile(0.50),
                h.percentile(0.99),
                h.count
            )
        })
        .unwrap_or_default();
    let report = format!(
        "Inference engines: {} trees, {} nodes, {} rows, block {}, simd {}\nselected serving engine: {}\n{}\n{}{}{}{}flat engine speedup: {:.2}x\n",
        engine.n_trees(),
        engine.n_nodes(),
        data.len(),
        libra_infer::BLOCK,
        libra_infer::simd_level(),
        eopts.label(),
        self_check,
        t.render(),
        row_lat,
        batch_lines,
        quant_note,
        rec_s / flat_s
    );

    let path = report_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, &report) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    report
}
