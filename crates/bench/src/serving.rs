//! Inference-serving microbenchmark: recursive trees vs the flattened
//! engine of `libra-infer`.
//!
//! LiBRA consults its classifier every other frame (2×20 ms observation
//! windows, §7), so prediction latency is a deployment concern the paper
//! leaves implicit. This section measures batched prediction over the
//! full §5 main-campaign feature matrix with both implementations,
//! asserts they are prediction-identical row by row, and records the
//! measured throughputs to `results/infer_bench.txt` so successive runs
//! can be compared.

use crate::context::{classifier, gt_params, main_dataset, table, CLASSIFIER_SEED};
use libra_ml::{Classifier, ForestConfig, RandomForest};
use libra_obs as obs;
use libra_util::rng::rng_from_seed;
use libra_util::table::{fmt_f, TextTable};

/// Where the microbenchmark records its measurements.
pub fn report_path() -> std::path::PathBuf {
    libra_util::paths::results_root().join("infer_bench.txt")
}

/// The recursive forest the suite classifier was compiled from —
/// retrained from the suite seed, it is the exact pre-compilation model.
pub fn recursive_reference() -> RandomForest {
    let data = main_dataset().to_ml_3class(&table(), &gt_params());
    let mut forest = RandomForest::new(ForestConfig::default());
    let mut rng = rng_from_seed(CLASSIFIER_SEED);
    forest.fit(&data, &mut rng);
    forest
}

/// Times `passes` full-matrix prediction passes, returning (total
/// seconds, predictions from the last pass, scope report). Timing flows
/// through the telemetry spine: each pass runs under a
/// `bench.serving.pass` span inside a collection scope, and the total
/// is read back from the scope report's wall histogram. The report also
/// carries whatever the engine recorded (per-row latency, batch sizes).
fn time_passes<F: FnMut() -> Vec<usize>>(
    passes: usize,
    mut run: F,
) -> (f64, Vec<usize>, obs::Report) {
    let mut preds = run(); // warm-up, untimed
    let ((), report) = obs::with_scope(|| {
        for _ in 0..passes {
            let _span = obs::span("bench.serving.pass");
            preds = run();
        }
    });
    (
        report.wall_nanos("bench.serving.pass") as f64 / 1e9,
        preds,
        report,
    )
}

/// Runs the microbenchmark: `passes` timed prediction passes over the
/// full campaign feature matrix per engine. Both engines read borrowed
/// row slices straight out of the columnar frame — no per-pass feature
/// copies. Panics if the two engines ever disagree on a single row —
/// speed without identity is worthless.
pub fn serving_bench(passes: usize) -> String {
    let data = main_dataset().to_ml_3class(&table(), &gt_params());
    let view = data.view();
    let recursive = recursive_reference();
    let engine = classifier().engine();

    // Prediction identity on every row of the §5 campaign dataset.
    let reference = recursive.predict_view(&view);
    let mut flat = Vec::new();
    engine.predict_batch_view(&view, &mut flat);
    assert_eq!(
        reference, flat,
        "flattened engine diverged from the recursive forest on the campaign dataset"
    );

    let (rec_s, rec_preds, _) = time_passes(passes, || recursive.predict_view(&view));
    let mut out = Vec::new();
    let (flat_s, flat_preds, flat_report) = time_passes(passes, || {
        engine.predict_batch_view(&view, &mut out);
        out.clone()
    });
    assert_eq!(
        rec_preds, flat_preds,
        "engines diverged during timing passes"
    );

    let n = (data.len() * passes) as f64;
    let mut t = TextTable::new(["engine", "rows/pass", "passes", "total (s)", "Mrows/s"]);
    for (name, secs) in [("recursive", rec_s), ("flat", flat_s)] {
        t.row([
            name.to_string(),
            data.len().to_string(),
            passes.to_string(),
            fmt_f(secs, 3),
            fmt_f(n / secs / 1e6, 2),
        ]);
    }
    let speedup = rec_s / flat_s;
    let row_lat = flat_report
        .hist("infer.serve.row_ns")
        .map(|h| {
            format!(
                "flat per-row latency (traced): p50 ≤ {} ns, p99 ≤ {} ns over {} rows\n",
                h.percentile(0.50),
                h.percentile(0.99),
                h.count
            )
        })
        .unwrap_or_default();
    let report = format!(
        "Inference serving: {} trees, {} nodes, {} rows\n{}{}flat engine speedup: {:.2}x\n",
        engine.n_trees(),
        engine.n_nodes(),
        data.len(),
        t.render(),
        row_lat,
        speedup
    );

    let path = report_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, &report) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    report
}
