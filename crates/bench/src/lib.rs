//! # libra-bench
//!
//! The experiment harness: code that regenerates **every table and
//! figure** of the paper's evaluation, plus the ablations of DESIGN.md.
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run --release -p libra-bench --bin experiments -- all
//! cargo run --release -p libra-bench --bin experiments -- table1 fig10 ...
//! ```
//!
//! Criterion benches (`cargo bench`) measure the performance of the
//! computational kernels each experiment leans on (ray tracing,
//! exhaustive sweeps, forest training/prediction, segment simulation).
//!
//! | module | experiments |
//! |---|---|
//! | [`motivation`] | E1–E3: Figs 1–3 (COTS study) |
//! | [`study`] | E4–E10: Tables 1–3, Figs 4–9, §6.2 ML study, §7 3-class model |
//! | [`evaluation`] | E11–E15: Figs 10–13, Table 4 |
//! | [`ablation`] | DESIGN.md §5 ablations |
//! | [`serving`] | inference microbenchmark: recursive vs flattened engine |
//! | [`trainbench`] | training microbenchmark: row-oriented vs columnar fits |
//! | [`fuzzbench`] | scenario fuzzing: bounded coverage-guided search + `BENCH_fuzz.json` |
//! | [`servebench`] | decision service: sharded throughput + latency + `BENCH_serve.json` |
//! | [`multisimbench`] | multi-station simulator: events/sec + regret + `BENCH_multisim.json` |
//! | [`chaosbench`] | guarded lifecycle drill: faults, degradation, rollback + `BENCH_chaos.json` |
//! | [`speedup`] | sequential-baseline bookkeeping behind per-section speedup reporting |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chaosbench;
pub mod context;
pub mod evaluation;
pub mod fuzzbench;
pub mod motivation;
pub mod multisimbench;
pub mod servebench;
pub mod serving;
pub mod speedup;
pub mod study;
pub mod trainbench;
