//! `experiments` — regenerates every table and figure of the paper.
//!
//! ```text
//! experiments all                 # the full suite (minutes)
//! experiments quick               # reduced repeats/timelines (~1 min)
//! experiments table1 fig10 ...    # individual artifacts
//! experiments --csv-dir out/ figs # also export CSV series
//! ```
//!
//! Artifact names: fig1 fig2 fig3 table1 table2 fig4 fig5 fig6 fig7 fig8
//! fig9 cv crossbuilding table3 threeclass extmodels fig10 fig11 fig12 fig13
//! table4 ablations.

use libra_bench::{ablation, context, evaluation, motivation, study};
use std::time::Instant;

struct Opts {
    csv_dir: Option<String>,
    cv_repeats: usize,
    timelines: usize,
    vr_timelines: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts =
        Opts { csv_dir: None, cv_repeats: 10, timelines: 50, vr_timelines: 50 };
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv-dir" => {
                opts.csv_dir = Some(it.next().expect("--csv-dir needs a path"));
            }
            "quick" => {
                opts.cv_repeats = 2;
                opts.timelines = 10;
                opts.vr_timelines = 10;
                wanted.push("all".into());
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: experiments [--csv-dir DIR] [all|quick|fig1..fig13|table1..table4|cv|crossbuilding|threeclass|ablations]"
        );
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let t0 = Instant::now();
    let section = |name: &str, body: &mut dyn FnMut() -> String| {
        if want(name) {
            let t = Instant::now();
            let out = body();
            println!("{out}");
            println!("[{name} took {:.1} s]\n", t.elapsed().as_secs_f64());
        }
    };

    // --- §3 motivation -------------------------------------------------
    section("fig1", &mut || {
        format!(
            "Fig 1 (static): heuristics flap even in the simplest case\n{}",
            motivation::render(&[motivation::fig1(context::SUITE_SEED)])
        )
    });
    section("fig2", &mut || {
        format!(
            "Fig 2 (blockage)\n{}",
            motivation::render(&[motivation::fig2(context::SUITE_SEED)])
        )
    });
    section("fig3", &mut || {
        format!(
            "Fig 3 (mobility): here BA genuinely helps\n{}",
            motivation::render(&[motivation::fig3(context::SUITE_SEED)])
        )
    });

    // --- §4–5 datasets --------------------------------------------------
    section("table1", &mut || study::table1());
    section("table2", &mut || study::table2());

    // --- §6.1 metric CDFs -----------------------------------------------
    for (name, (title, feature)) in ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]
        .iter()
        .zip(study::METRIC_FIGURES)
    {
        section(name, &mut || {
            if let Some(dir) = &opts.csv_dir {
                let csv = study::metric_figure_csv(feature);
                let path = format!("{dir}/{name}.csv");
                std::fs::create_dir_all(dir).expect("create csv dir");
                std::fs::write(&path, csv).expect("write csv");
            }
            study::render_metric_figure(title, feature)
        });
    }

    // --- §6.2 ML study ----------------------------------------------------
    section("cv", &mut || study::cv_study(opts.cv_repeats));
    section("crossbuilding", &mut || study::crossbuilding_study());
    section("table3", &mut || study::table3());
    section("threeclass", &mut || study::threeclass_study(opts.cv_repeats));
    section("extmodels", &mut || study::extended_models_study(opts.cv_repeats.min(3)));

    // --- §8 evaluation ----------------------------------------------------
    section("fig10", &mut || {
        if let Some(dir) = &opts.csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            for params in libra_mac::ProtocolParams::grid() {
                let csv = evaluation::fig10_csv(params, 1000.0);
                let path = format!(
                    "{dir}/fig10_{}_{:.0}ms.csv",
                    params.ba.label().replace(' ', ""),
                    params.fat_ms
                );
                std::fs::write(&path, csv).expect("write csv");
            }
        }
        evaluation::render_fig10()
    });
    section("fig11", &mut || evaluation::render_fig11());
    section("fig12", &mut || evaluation::render_fig12(opts.timelines));
    section("fig13", &mut || evaluation::render_fig13(opts.timelines));
    section("table4", &mut || evaluation::table4(opts.vr_timelines));

    // --- ablations ---------------------------------------------------------
    section("ablations", &mut || {
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}",
            ablation::ablation_isi(),
            ablation::ablation_sidelobes(),
            ablation::ablation_fallback(),
            ablation::ablation_probe(opts.timelines.min(20)),
            ablation::ablation_confidence_gate(),
            ablation::ablation_online(opts.timelines.min(24)),
            ablation::ablation_history(opts.timelines.min(15), opts.timelines.min(10)),
            ablation::ablation_alpha()
        )
    });

    eprintln!("total: {:.1} s", t0.elapsed().as_secs_f64());
}
