//! `experiments` — regenerates every table and figure of the paper.
//!
//! ```text
//! experiments all                 # the full suite (minutes)
//! experiments quick               # reduced repeats/timelines (~1 min)
//! experiments quick fig10         # reduced knobs, fig10 only
//! experiments table1 fig10 ...    # individual artifacts
//! experiments --csv-dir out/ figs # also export CSV series
//! experiments --threads 4 all     # explicit worker-thread count
//! experiments quick --trace       # also write results/trace.jsonl
//!                                 # and results/obs_summary.txt
//! ```
//!
//! Artifact names: fig1 fig2 fig3 table1 table2 fig4 fig5 fig6 fig7 fig8
//! fig9 cv crossbuilding table3 threeclass extmodels fig10 fig11 fig12 fig13
//! table4 ablations inferbench trainbench fuzz serve chaos multisim. The
//! microbenchmarks also record their measurements to
//! `results/infer_bench.txt`, `results/train_bench.txt`,
//! `results/BENCH_fuzz.json`, `results/BENCH_serve.json`,
//! `results/BENCH_chaos.json`, and `results/BENCH_multisim.json`.
//!
//! `--model NAME[@VER]` (or a file path) runs the evaluation against a
//! frozen model artifact from the registry instead of retraining the
//! suite classifier in-process; see `libractl train --save`.
//!
//! Parallelism: every section runs on the worker count from `--threads N`,
//! else `LIBRA_THREADS`, else the machine's available parallelism — with
//! bitwise-identical output at any setting. A sequential run
//! (`--threads 1`) records per-section wall-clock times to
//! `results/seq_baseline.txt`; later parallel runs report their speedup
//! against that baseline, or `speedup n/a` when no usable baseline entry
//! exists (missing file, stale format, zero/non-finite timings).

use libra_bench::speedup::{self, Baseline};
use libra_bench::{
    ablation, chaosbench, context, evaluation, fuzzbench, motivation, multisimbench, servebench,
    serving, study, trainbench,
};
use std::cell::RefCell;
use std::time::Instant;

/// Where a sequential run records per-section wall-clock seconds.
const BASELINE_PATH: &str = "results/seq_baseline.txt";

struct Opts {
    csv_dir: Option<String>,
    cv_repeats: usize,
    timelines: usize,
    vr_timelines: usize,
    bench_passes: usize,
    fuzz_budget: usize,
    serve_requests: usize,
    serve_shards: usize,
    chaos_requests: usize,
    multisim_aps: u32,
    multisim_stations: u32,
    multisim_duration_ms: f64,
}

fn load_baseline() -> Baseline {
    let Ok(text) = std::fs::read_to_string(BASELINE_PATH) else {
        return Baseline::new();
    };
    match Baseline::parse(&text) {
        Ok(baseline) => baseline,
        Err(speedup::Stale::MissingHeader) => {
            eprintln!(
                "note: {BASELINE_PATH} is stale (missing `{}` header); \
                 ignoring it — re-record with --threads 1",
                speedup::BASELINE_HEADER
            );
            Baseline::new()
        }
    }
}

fn store_baseline(baseline: &Baseline) {
    if baseline.is_empty() {
        return;
    }
    if let Some(dir) = std::path::Path::new(BASELINE_PATH).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(BASELINE_PATH, baseline.render()) {
        eprintln!("warning: could not write {BASELINE_PATH}: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        csv_dir: None,
        cv_repeats: 10,
        timelines: 50,
        vr_timelines: 50,
        bench_passes: 5,
        fuzz_budget: 48,
        serve_requests: 1_000_000,
        serve_shards: 4,
        chaos_requests: 2_000,
        multisim_aps: 16,
        multisim_stations: 64,
        multisim_duration_ms: 10_000.0,
    };
    let mut wanted: Vec<String> = Vec::new();
    let mut quick = false;
    let mut trace = false;
    let mut engine_kind = libra_infer::EngineKind::default();
    let mut engine_quantized = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv-dir" => {
                opts.csv_dir = Some(it.next().expect("--csv-dir needs a path"));
            }
            "--trace" => trace = true,
            "--engine" => {
                engine_kind = it
                    .next()
                    .expect("--engine needs recursive, flat, or blocked")
                    .parse()
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            "--quantized" => engine_quantized = true,
            "--model" => {
                context::set_model(&it.next().expect("--model needs a name[@version] or path"));
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs a positive integer");
                assert!(n > 0, "--threads needs a positive integer");
                libra_util::par::set_threads(n);
            }
            "quick" => {
                opts.cv_repeats = 2;
                opts.timelines = 10;
                opts.vr_timelines = 10;
                opts.bench_passes = 2;
                opts.fuzz_budget = 16;
                opts.serve_requests = 50_000;
                opts.chaos_requests = 600;
                opts.multisim_aps = 4;
                opts.multisim_stations = 32;
                opts.multisim_duration_ms = 3_000.0;
                quick = true;
            }
            other => wanted.push(other.to_string()),
        }
    }
    // Bare `quick` means the whole (reduced) suite; `quick fig10` means
    // only fig10 at the reduced knobs.
    if quick && wanted.is_empty() {
        wanted.push("all".into());
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: experiments [--csv-dir DIR] [--threads N] [--trace] \
             [--model NAME[@VER]|PATH] \
             [--engine recursive|flat|blocked] [--quantized] \
             [all|quick|fig1..fig13|table1..table4|cv|crossbuilding|threeclass|ablations\
             |inferbench|trainbench|fuzz|serve|chaos|multisim]"
        );
        std::process::exit(2);
    }
    let engine_opts = libra_infer::EngineOpts::new(engine_kind, engine_quantized)
        .unwrap_or_else(|e| panic!("{e}"));
    if trace {
        libra_obs::set_enabled(true);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let threads = libra_util::par::threads();
    eprintln!("workers: {threads}");
    let sequential = threads == 1;
    let baseline = RefCell::new(load_baseline());

    let t0 = Instant::now();
    let section = |name: &str, body: &mut dyn FnMut() -> String| {
        if want(name) {
            let t = Instant::now();
            let out = body();
            let secs = t.elapsed().as_secs_f64();
            println!("{out}");
            if sequential {
                println!("[{name} took {secs:.1} s]\n");
                baseline.borrow_mut().record(name, secs);
            } else {
                let base = baseline.borrow().get(name);
                println!("{}\n", speedup::report_line(name, secs, base));
            }
        }
    };

    // --- §3 motivation -------------------------------------------------
    section("fig1", &mut || {
        format!(
            "Fig 1 (static): heuristics flap even in the simplest case\n{}",
            motivation::render(&[motivation::fig1(context::SUITE_SEED)])
        )
    });
    section("fig2", &mut || {
        format!(
            "Fig 2 (blockage)\n{}",
            motivation::render(&[motivation::fig2(context::SUITE_SEED)])
        )
    });
    section("fig3", &mut || {
        format!(
            "Fig 3 (mobility): here BA genuinely helps\n{}",
            motivation::render(&[motivation::fig3(context::SUITE_SEED)])
        )
    });

    // --- §4–5 datasets --------------------------------------------------
    section("table1", &mut || study::table1());
    section("table2", &mut || study::table2());

    // --- §6.1 metric CDFs -----------------------------------------------
    for (name, (title, feature)) in ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]
        .iter()
        .zip(study::METRIC_FIGURES)
    {
        section(name, &mut || {
            if let Some(dir) = &opts.csv_dir {
                let csv = study::metric_figure_csv(feature);
                let path = format!("{dir}/{name}.csv");
                std::fs::create_dir_all(dir).expect("create csv dir");
                std::fs::write(&path, csv).expect("write csv");
            }
            study::render_metric_figure(title, feature)
        });
    }

    // --- §6.2 ML study ----------------------------------------------------
    section("cv", &mut || study::cv_study(opts.cv_repeats));
    section("crossbuilding", &mut || study::crossbuilding_study());
    section("table3", &mut || study::table3());
    section("threeclass", &mut || {
        study::threeclass_study(opts.cv_repeats)
    });
    section("extmodels", &mut || {
        study::extended_models_study(opts.cv_repeats.min(3))
    });

    // --- §8 evaluation ----------------------------------------------------
    section("fig10", &mut || {
        if let Some(dir) = &opts.csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            for params in libra_mac::ProtocolParams::grid() {
                let csv = evaluation::fig10_csv(params, 1000.0);
                let path = format!(
                    "{dir}/fig10_{}_{:.0}ms.csv",
                    params.ba.label().replace(' ', ""),
                    params.fat_ms
                );
                std::fs::write(&path, csv).expect("write csv");
            }
        }
        evaluation::render_fig10()
    });
    section("fig11", &mut || evaluation::render_fig11());
    section("fig12", &mut || evaluation::render_fig12(opts.timelines));
    section("fig13", &mut || evaluation::render_fig13(opts.timelines));
    section("table4", &mut || evaluation::table4(opts.vr_timelines));

    // --- ablations ---------------------------------------------------------
    section("ablations", &mut || {
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}",
            ablation::ablation_isi(),
            ablation::ablation_sidelobes(),
            ablation::ablation_fallback(),
            ablation::ablation_probe(opts.timelines.min(20)),
            ablation::ablation_confidence_gate(),
            ablation::ablation_online(opts.timelines.min(24)),
            ablation::ablation_history(opts.timelines.min(15), opts.timelines.min(10)),
            ablation::ablation_alpha()
        )
    });

    // --- serving ----------------------------------------------------------
    section("inferbench", &mut || {
        serving::serving_bench(opts.bench_passes, &engine_opts)
    });
    section("trainbench", &mut || {
        trainbench::train_bench(opts.bench_passes)
    });

    // --- scenario fuzzing ---------------------------------------------------
    section("fuzz", &mut || fuzzbench::fuzz_bench(opts.fuzz_budget));

    // --- decision service ---------------------------------------------------
    section("serve", &mut || {
        servebench::serve_bench(opts.serve_requests, opts.serve_shards)
    });

    // --- guarded model lifecycle --------------------------------------------
    section("chaos", &mut || {
        chaosbench::chaos_bench(opts.chaos_requests, opts.serve_shards)
    });

    // --- multi-station simulation -------------------------------------------
    section("multisim", &mut || {
        multisimbench::multisim_bench(
            opts.multisim_aps,
            opts.multisim_stations,
            opts.multisim_duration_ms,
        )
    });

    if sequential {
        store_baseline(&baseline.borrow());
    }
    if trace {
        libra_obs::set_enabled(false);
        let report = libra_obs::take_root_report();
        match libra_obs::write_trace_files(&report, &libra_util::paths::results_root()) {
            Ok((jsonl, summary)) => {
                eprintln!("trace: wrote {} and {}", jsonl.display(), summary.display())
            }
            Err(e) => eprintln!("warning: could not write trace files: {e}"),
        }
    }
    eprintln!("total: {:.1} s", t0.elapsed().as_secs_f64());
}
