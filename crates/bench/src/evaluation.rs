//! Experiments E11–E15: the LiBRA evaluation (paper §8).
//!
//! * [`fig10`] / [`fig11`] — single-impairment flows over the combined
//!   testing dataset: CDFs of bytes-delivered difference vs Oracle-Data
//!   and of recovery-delay difference vs Oracle-Delay, over the
//!   4 BA-overheads × 2 FATs grid and two flow durations.
//! * [`fig12`] / [`fig13`] — multi-impairment random timelines: data
//!   ratio vs Oracle-Data and mean-delay difference vs Oracle-Delay,
//!   as boxplots over 50 timelines × 4 scenario types.
//! * [`table4`] — the 8K/60FPS VR study.

use crate::context::{classifier, testing_dataset, SUITE_SEED};
use libra::prelude::*;
use libra::sim::run_policy_segment;
use libra::{LinkState, PolicyKind, SegmentData, SimConfig, TimelineResult};
use libra_mac::ProtocolParams;
use libra_util::par::{par_map, par_map_index};
use libra_util::rng::{derive_seed_index, rng_from_seed};
use libra_util::stats::{BoxplotSummary, EmpiricalCdf};
use libra_util::table::{fmt_f, TextTable};
use serde::{Deserialize, Serialize};

/// One cell of the single-impairment study: one parameter combo × flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleImpairmentCell {
    /// Protocol parameters.
    pub params: ProtocolParams,
    /// Flow duration, ms.
    pub flow_ms: f64,
    /// Per-algorithm byte deficits vs Oracle-Data, MB (one per entry).
    pub data_deficit_mb: Vec<(PolicyKind, Vec<f64>)>,
    /// Per-algorithm delay excess vs Oracle-Delay, ms.
    pub delay_excess_ms: Vec<(PolicyKind, Vec<f64>)>,
}

/// Runs one parameter/flow cell of §8.2 over the testing dataset.
pub fn single_impairment_cell(params: ProtocolParams, flow_ms: f64) -> SingleImpairmentCell {
    let ds = testing_dataset();
    let clf = classifier();
    let sim = SimConfig::new(params);

    let mut deficits: Vec<(PolicyKind, Vec<f64>)> = PolicyKind::HEURISTICS
        .iter()
        .map(|&p| (p, Vec::new()))
        .collect();
    let mut excesses: Vec<(PolicyKind, Vec<f64>)> = PolicyKind::HEURISTICS
        .iter()
        .map(|&p| (p, Vec::new()))
        .collect();

    // Entries are independent and RNG-free; evaluate them in parallel and
    // fold the per-entry rows back in entry order so the CDF inputs are
    // identical to a sequential pass.
    let per_entry: Vec<Vec<(f64, Option<f64>)>> = par_map(&ds.entries, |_, entry| {
        let seg = SegmentData::from_entry(entry, flow_ms);
        let state = LinkState::at_mcs(entry.initial.best_mcs());
        let oracle_data = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
        let oracle_delay = run_policy_segment(&seg, PolicyKind::OracleDelay, None, state, &sim);
        let od_delay = oracle_delay.recovery_delay_ms;
        PolicyKind::HEURISTICS
            .iter()
            .map(|&p| {
                let out = run_policy_segment(&seg, p, Some(clf), state, &sim);
                let deficit = ((oracle_data.bytes - out.bytes) / 1e6).max(0.0);
                let excess = match (out.recovery_delay_ms, od_delay) {
                    (Some(d), Some(od)) => Some((d - od).max(0.0)),
                    _ => None,
                };
                (deficit, excess)
            })
            .collect()
    });
    for row in per_entry {
        for (((_, dvec), (_, evec)), (deficit, excess)) in
            deficits.iter_mut().zip(excesses.iter_mut()).zip(row)
        {
            dvec.push(deficit);
            if let Some(e) = excess {
                evec.push(e);
            }
        }
    }

    SingleImpairmentCell {
        params,
        flow_ms,
        data_deficit_mb: deficits,
        delay_excess_ms: excesses,
    }
}

/// Renders Fig 10-style output: per algorithm, the fraction of entries
/// matching the oracle and the deficit quantiles.
pub fn render_fig10() -> String {
    let mut out =
        String::from("Fig 10: difference in bytes delivered vs Oracle-Data (single impairment)\n");
    let mut t = TextTable::new([
        "combo",
        "flow",
        "algorithm",
        "=oracle %",
        "<10MB %",
        "p50 MB",
        "p90 MB",
        "max MB",
    ]);
    for params in ProtocolParams::grid() {
        for flow_ms in [400.0, 1000.0] {
            let cell = single_impairment_cell(params, flow_ms);
            for (p, dvec) in &cell.data_deficit_mb {
                let cdf = EmpiricalCdf::new(dvec.iter().copied());
                t.row([
                    params.label(),
                    format!("{:.1} s", flow_ms / 1000.0),
                    p.label().to_string(),
                    fmt_f(cdf.eval(0.5) * 100.0, 0),
                    fmt_f(cdf.eval(10.0) * 100.0, 0),
                    fmt_f(cdf.quantile(0.5), 1),
                    fmt_f(cdf.quantile(0.9), 1),
                    fmt_f(cdf.quantile(1.0), 1),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out
}

/// Renders Fig 11-style output: recovery-delay excess vs Oracle-Delay.
pub fn render_fig11() -> String {
    let mut out =
        String::from("Fig 11: difference in recovery delay vs Oracle-Delay (single impairment)\n");
    let mut t = TextTable::new([
        "combo",
        "algorithm",
        "<=5ms %",
        "p50 ms",
        "p90 ms",
        "max ms",
    ]);
    for params in ProtocolParams::grid() {
        let cell = single_impairment_cell(params, 1000.0);
        for (p, evec) in &cell.delay_excess_ms {
            let cdf = EmpiricalCdf::new(evec.iter().copied());
            t.row([
                params.label(),
                p.label().to_string(),
                fmt_f(cdf.eval(5.0) * 100.0, 0),
                fmt_f(cdf.quantile(0.5), 1),
                fmt_f(cdf.quantile(0.9), 1),
                fmt_f(cdf.quantile(1.0), 1),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// CSV export of one cell's deficit CDFs (for external plotting).
pub fn fig10_csv(params: ProtocolParams, flow_ms: f64) -> String {
    let cell = single_impairment_cell(params, flow_ms);
    let mut w = libra_util::csvio::CsvWriter::new();
    w.row(["algorithm", "deficit_mb", "cdf"]);
    for (p, dvec) in &cell.data_deficit_mb {
        for (x, y) in EmpiricalCdf::new(dvec.iter().copied()).steps() {
            w.row([p.label(), &format!("{x:.3}"), &format!("{y:.4}")]);
        }
    }
    w.as_str().to_string()
}

// ---------------------------------------------------------------------
// Multi-impairment timelines (Figs 12–13).
// ---------------------------------------------------------------------

/// Results of one scenario-type × parameter-combo cell of §8.3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineCell {
    /// Scenario type.
    pub scenario: ScenarioType,
    /// Protocol parameters.
    pub params: ProtocolParams,
    /// Per algorithm: data ratio vs Oracle-Data, one value per timeline.
    pub data_ratio: Vec<(PolicyKind, Vec<f64>)>,
    /// Per algorithm: mean recovery-delay excess vs Oracle-Delay, ms.
    pub delay_excess_ms: Vec<(PolicyKind, Vec<f64>)>,
}

/// The §8.3 parameter combos shown in the paper (space limits reduced
/// Figs 12–13 to BA ∈ {0.5 ms, 250 ms} × FAT ∈ {2, 10} ms).
pub fn fig12_combos() -> Vec<ProtocolParams> {
    let mut v = Vec::new();
    for fat in [2.0, 10.0] {
        for ba in BaOverheadPreset::FIGURE12 {
            v.push(ProtocolParams::new(ba, fat));
        }
    }
    v
}

/// Runs one timeline cell: `n_timelines` random timelines of one type.
pub fn timeline_cell(
    scenario: ScenarioType,
    params: ProtocolParams,
    n_timelines: usize,
) -> TimelineCell {
    let clf = classifier();
    let sim = SimConfig::new(params);
    let instruments = libra_dataset::Instruments::default();
    let tl_cfg = TimelineConfig::default();

    let mut data_ratio: Vec<(PolicyKind, Vec<f64>)> = PolicyKind::HEURISTICS
        .iter()
        .map(|&p| (p, Vec::new()))
        .collect();
    let mut delay_excess: Vec<(PolicyKind, Vec<f64>)> = PolicyKind::HEURISTICS
        .iter()
        .map(|&p| (p, Vec::new()))
        .collect();

    // Each timeline owns its derived RNG stream, so timelines evaluate in
    // parallel and fold back in timeline order — boxplot inputs match a
    // sequential run exactly.
    let per_timeline: Vec<Vec<(Option<f64>, f64)>> = par_map_index(n_timelines, |i| {
        let mut rng = rng_from_seed(derive_seed_index(SUITE_SEED ^ 0x71, i as u64));
        let tl = generate_timeline(scenario, &tl_cfg, &mut rng);
        let od = run_timeline(&tl, PolicyKind::OracleData, None, &sim, &instruments);
        let odelay = run_timeline(&tl, PolicyKind::OracleDelay, None, &sim, &instruments);
        PolicyKind::HEURISTICS
            .iter()
            .map(|&p| {
                let r = run_timeline(&tl, p, Some(clf), &sim, &instruments);
                let ratio = (od.bytes > 0.0).then(|| (r.bytes / od.bytes).min(1.2));
                let excess =
                    (r.mean_recovery_delay_ms() - odelay.mean_recovery_delay_ms()).max(0.0);
                (ratio, excess)
            })
            .collect()
    });
    for row in per_timeline {
        for (((_, rvec), (_, evec)), (ratio, excess)) in
            data_ratio.iter_mut().zip(delay_excess.iter_mut()).zip(row)
        {
            if let Some(r) = ratio {
                rvec.push(r);
            }
            evec.push(excess);
        }
    }

    TimelineCell {
        scenario,
        params,
        data_ratio,
        delay_excess_ms: delay_excess,
    }
}

fn render_boxplot_rows(
    t: &mut TextTable,
    combo: &str,
    scenario: &str,
    series: &[(PolicyKind, Vec<f64>)],
    digits: usize,
) {
    for (p, xs) in series {
        if xs.is_empty() {
            continue;
        }
        let b = BoxplotSummary::new(xs);
        t.row([
            combo.to_string(),
            scenario.to_string(),
            p.label().to_string(),
            fmt_f(b.whisker_lo, digits),
            fmt_f(b.q1, digits),
            fmt_f(b.median, digits),
            fmt_f(b.q3, digits),
            fmt_f(b.whisker_hi, digits),
        ]);
    }
}

/// Fig 12 — ratio of data delivered vs Oracle-Data (boxplots).
pub fn render_fig12(n_timelines: usize) -> String {
    let mut t = TextTable::new([
        "combo",
        "scenario",
        "algorithm",
        "lo",
        "q1",
        "median",
        "q3",
        "hi",
    ]);
    for params in fig12_combos() {
        let mut all: Vec<(PolicyKind, Vec<f64>)> = PolicyKind::HEURISTICS
            .iter()
            .map(|&p| (p, Vec::new()))
            .collect();
        for scenario in ScenarioType::ALL {
            let cell = timeline_cell(scenario, params, n_timelines);
            render_boxplot_rows(
                &mut t,
                &params.label(),
                scenario.label(),
                &cell.data_ratio,
                3,
            );
            for ((_, acc), (_, xs)) in all.iter_mut().zip(&cell.data_ratio) {
                acc.extend_from_slice(xs);
            }
        }
        render_boxplot_rows(&mut t, &params.label(), "All", &all, 3);
    }
    format!(
        "Fig 12: ratio of bytes delivered vs Oracle-Data ({n_timelines} timelines per type)\n{}",
        t.render()
    )
}

/// Fig 13 — mean recovery-delay difference vs Oracle-Delay (boxplots).
pub fn render_fig13(n_timelines: usize) -> String {
    let mut t = TextTable::new([
        "combo",
        "scenario",
        "algorithm",
        "lo",
        "q1",
        "median",
        "q3",
        "hi",
    ]);
    for params in fig12_combos() {
        let mut all: Vec<(PolicyKind, Vec<f64>)> = PolicyKind::HEURISTICS
            .iter()
            .map(|&p| (p, Vec::new()))
            .collect();
        for scenario in ScenarioType::ALL {
            let cell = timeline_cell(scenario, params, n_timelines);
            render_boxplot_rows(
                &mut t,
                &params.label(),
                scenario.label(),
                &cell.delay_excess_ms,
                1,
            );
            for ((_, acc), (_, xs)) in all.iter_mut().zip(&cell.delay_excess_ms) {
                acc.extend_from_slice(xs);
            }
        }
        render_boxplot_rows(&mut t, &params.label(), "All", &all, 1);
    }
    format!(
        "Fig 13: mean recovery-delay difference vs Oracle-Delay, ms ({n_timelines} timelines per type)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// VR study (Table 4).
// ---------------------------------------------------------------------

/// Table 4 — average stall duration and number of stalls for 8K VR over
/// mobility timelines, with throughput scaled to COTS levels.
pub fn table4(n_timelines: usize) -> String {
    let clf = classifier();
    let instruments = libra_dataset::Instruments::default();
    // VR sessions are 30 s; build mobility timelines long enough to
    // carry the whole clip.
    // VR links run at the channel model's nominal power: the paper's
    // VR clients sit in COTS-typical range where the scaled 2.4 Gbps
    // peak is reachable — stalls should come from adaptation events,
    // not chronic starvation.
    let tl_cfg = TimelineConfig {
        n_segments: 16,
        min_segment_ms: 2000.0,
        max_segment_ms: 3000.0,
        tx_power_dbm: 6.0,
        ..Default::default()
    };
    let combos = [
        (BaOverheadPreset::QuasiOmni30, 2.0),
        (BaOverheadPreset::QuasiOmni30, 10.0),
        (BaOverheadPreset::Directional7, 2.0),
        (BaOverheadPreset::Directional7, 10.0),
    ];
    let policies = [
        PolicyKind::BaFirst,
        PolicyKind::RaFirst,
        PolicyKind::Libra,
        PolicyKind::OracleData,
        PolicyKind::OracleDelay,
    ];
    let mut t = TextTable::new([
        "BA overhead, FAT",
        "BA First",
        "RA First",
        "LiBRA",
        "Oracle-Data",
        "Oracle-Delay",
    ]);
    for (ba, fat) in combos {
        let params = ProtocolParams::new(ba, fat);
        let mut sim = SimConfig::new(params);
        sim.tput_scale = COTS_TPUT_SCALE;
        // Scale the working-MCS throughput threshold consistently.
        sim.min_tput_mbps *= COTS_TPUT_SCALE;
        let mut cells: Vec<String> = vec![params.label()];
        for policy in policies {
            // One derived stream per timeline index: timelines replay in
            // parallel and the stall stats fold back in index order.
            let stalls: Vec<Option<(f64, f64)>> = par_map_index(n_timelines, |i| {
                let mut rng = rng_from_seed(derive_seed_index(SUITE_SEED ^ 0x74B1E4, i as u64));
                let tl = generate_timeline(ScenarioType::Mobility, &tl_cfg, &mut rng);
                let trace = VrTrace::synthetic_8k(30.0, 1.2, &mut rng);
                let r: TimelineResult = run_timeline(&tl, policy, Some(clf), &sim, &instruments);
                let rep = play(&trace, &r.spans);
                rep.total_stall_ms
                    .is_finite()
                    .then_some((rep.mean_stall_ms, rep.n_stalls as f64))
            });
            let mut durs = Vec::new();
            let mut counts = Vec::new();
            for (d, c) in stalls.into_iter().flatten() {
                durs.push(d);
                counts.push(c);
            }
            cells.push(format!(
                "{}/{}",
                fmt_f(libra_util::stats::mean(&durs), 1),
                fmt_f(libra_util::stats::mean(&counts), 1)
            ));
        }
        t.row(cells);
    }
    format!(
        "Table 4: VR stall duration (ms)/number of stalls ({n_timelines} mobility timelines)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_impairment_cell_shapes() {
        let cell = single_impairment_cell(
            ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0),
            400.0,
        );
        let n = testing_dataset().entries.len();
        for (_, d) in &cell.data_deficit_mb {
            assert_eq!(d.len(), n);
            assert!(d.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn libra_close_to_oracle_in_most_cases() {
        // The headline claim: LiBRA delivers the same bytes as the
        // oracle in the vast majority of single-impairment cases.
        let cell = single_impairment_cell(
            ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0),
            1000.0,
        );
        let libra = cell
            .data_deficit_mb
            .iter()
            .find(|(p, _)| *p == PolicyKind::Libra)
            .map(|(_, d)| d)
            .unwrap();
        let near = libra.iter().filter(|&&d| d < 10.0).count() as f64 / libra.len() as f64;
        assert!(
            near > 0.6,
            "LiBRA within 10 MB of oracle only {:.0}%",
            near * 100.0
        );
    }

    #[test]
    fn timeline_cell_runs() {
        let cell = timeline_cell(
            ScenarioType::Blockage,
            ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0),
            3,
        );
        for (_, r) in &cell.data_ratio {
            assert_eq!(r.len(), 3);
            assert!(r.iter().all(|&x| x > 0.0 && x <= 1.2));
        }
    }
}
