//! Sequential-baseline bookkeeping for the `experiments` binary.
//!
//! A `--threads 1` run records per-section wall-clock seconds to
//! `results/seq_baseline.txt`; later parallel runs report each
//! section's speedup against that baseline. This module owns the file
//! format and the reporting rules so they are testable away from the
//! binary:
//!
//! - the file must start with the [`BASELINE_HEADER`] format marker —
//!   an older or hand-edited file is **stale** and ignored wholesale
//!   rather than risking nonsense speedups;
//! - zero, negative, or non-finite timings are dropped at parse time,
//!   so a later division can never produce `±inf` or `NaN`;
//! - a section with no usable baseline entry reports `speedup n/a`
//!   with a hint to re-record, never a made-up number.

use std::collections::BTreeMap;

/// Format marker heading the baseline file.
pub const BASELINE_HEADER: &str = "# seq-baseline v1";

/// Per-section sequential wall-clock seconds, keyed by section name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    entries: BTreeMap<String, f64>,
}

/// Why [`Baseline::parse`] rejected a file outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stale {
    /// The first line is not [`BASELINE_HEADER`] — an older format or
    /// a hand-edited file.
    MissingHeader,
}

impl Baseline {
    /// An empty baseline (every lookup reports `n/a`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses the baseline file text.
    ///
    /// Returns [`Stale`] when the header is missing; unparsable and
    /// non-positive entries are silently dropped (they could only
    /// yield `±inf`/`NaN` speedups downstream).
    pub fn parse(text: &str) -> Result<Self, Stale> {
        if text.lines().next().map(str::trim) != Some(BASELINE_HEADER) {
            return Err(Stale::MissingHeader);
        }
        let mut entries = BTreeMap::new();
        for line in text.lines().skip(1) {
            let mut parts = line.split_whitespace();
            if let (Some(name), Some(secs)) = (parts.next(), parts.next()) {
                if let Ok(s) = secs.parse::<f64>() {
                    if s.is_finite() && s > 0.0 {
                        entries.insert(name.to_string(), s);
                    }
                }
            }
        }
        Ok(Self { entries })
    }

    /// Renders the file text (header + `name seconds` lines).
    pub fn render(&self) -> String {
        let mut text = format!("{BASELINE_HEADER}\n");
        for (name, secs) in &self.entries {
            text.push_str(&format!("{name} {secs:.3}\n"));
        }
        text
    }

    /// The recorded sequential seconds for `name`, if usable.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.get(name).copied()
    }

    /// Records a section timing (a sequential run updating the file).
    pub fn record(&mut self, name: &str, secs: f64) {
        self.entries.insert(name.to_string(), secs);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The per-section timing line a parallel run prints: a speedup when a
/// usable baseline entry exists, `speedup n/a` otherwise.
///
/// `parse` only admits finite positive baselines, so the division here
/// cannot produce `±inf` or `NaN`; a zero *measured* time (a skipped
/// or sub-resolution section) also reports `n/a`.
pub fn report_line(name: &str, secs: f64, baseline: Option<f64>) -> String {
    match baseline {
        Some(b) if secs > 0.0 => {
            format!(
                "[{name} took {secs:.1} s — {:.1}x vs sequential baseline {b:.1} s]",
                b / secs
            )
        }
        _ => format!(
            "[{name} took {secs:.1} s — speedup n/a \
             (no sequential baseline; record one with --threads 1)]"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_header_is_stale() {
        assert_eq!(Baseline::parse("fig1 2.0\n"), Err(Stale::MissingHeader));
        assert_eq!(Baseline::parse(""), Err(Stale::MissingHeader));
        // Surrounding whitespace on the header line is tolerated.
        assert!(Baseline::parse("  # seq-baseline v1  \nfig1 2.0\n").is_ok());
    }

    #[test]
    fn unusable_entries_are_dropped() {
        let text = format!(
            "{BASELINE_HEADER}\nfig1 2.5\nfig2 0.0\nfig3 -1.0\nfig4 inf\nfig5 NaN\nfig6 junk\n"
        );
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.get("fig1"), Some(2.5));
        for dropped in ["fig2", "fig3", "fig4", "fig5", "fig6"] {
            assert_eq!(b.get(dropped), None, "{dropped} should be dropped");
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut b = Baseline::new();
        assert!(b.is_empty());
        b.record("serve", 12.345);
        b.record("fig10", 0.5);
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again, b);
        assert!(again.render().starts_with(BASELINE_HEADER));
    }

    #[test]
    fn report_line_with_baseline_shows_speedup() {
        let line = report_line("fig10", 2.0, Some(8.0));
        assert!(line.contains("4.0x vs sequential baseline 8.0 s"), "{line}");
        assert!(!line.contains("n/a"), "{line}");
    }

    #[test]
    fn report_line_without_baseline_is_na() {
        // The regression this module pins: a missing baseline entry
        // must say `n/a`, not divide by a default or panic.
        for (secs, base) in [(2.0, None), (0.0, Some(8.0)), (0.0, None)] {
            let line = report_line("fuzz", secs, base);
            assert!(line.contains("speedup n/a"), "{line}");
            assert!(line.contains("--threads 1"), "{line}");
        }
    }
}
