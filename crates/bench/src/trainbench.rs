//! Training-throughput microbenchmark: row-oriented training (the frozen
//! pre-columnar implementations) vs the columnar [`libra_ml`] frame path.
//!
//! The columnar refactor moved every split scan from `rows[i][f]` chasing
//! to contiguous per-feature columns. This section keeps the historical
//! row-oriented trainers alive verbatim — same arithmetic, same RNG draw
//! order — as both the *recorded baseline* for throughput comparisons and
//! the *bitwise referee*: before timing anything it refits every model
//! pair from one seed and panics unless predictions, Gini importances,
//! and (for GBDT) the dumped booster structure are exactly identical.
//! Measurements go to `results/train_bench.txt`, mirroring the inference
//! microbenchmark of [`crate::serving`].

use crate::context::{gt_params, main_dataset, table};
use libra_ml::{
    Classifier, Dataset, DecisionTree, DumpRegNode, ForestConfig, GbdtClassifier, GbdtConfig,
    Impurity, KnnClassifier, KnnConfig, RandomForest, TreeConfig,
};
use libra_obs as obs;
use libra_util::par::par_map_index;
use libra_util::rng::{derive_seed_index, rng_from_seed};
use libra_util::table::{fmt_f, TextTable};
use rand::seq::SliceRandom;
use rand::Rng;

/// Seed every benchmark fit derives from: both engines see the same draws.
pub const TRAIN_SEED: u64 = 0x5EED;

/// Where the microbenchmark records its measurements.
pub fn report_path() -> std::path::PathBuf {
    libra_util::paths::results_root().join("train_bench.txt")
}

/// The row-major training-set layout the pre-columnar trainers consumed:
/// one heap-allocated `Vec<f64>` per row.
#[derive(Debug, Clone)]
pub struct RowMatrix {
    /// Feature rows.
    pub rows: Vec<Vec<f64>>,
    /// Class label per row.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl RowMatrix {
    /// Materializes the row-oriented copy of a columnar frame.
    pub fn from_frame(frame: &Dataset) -> Self {
        Self {
            rows: frame.to_rows(),
            labels: frame.labels.clone(),
            n_classes: frame.n_classes,
        }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn n_features(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }
}

fn impurity_of(imp: Impurity, counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    match imp {
        Impurity::Gini => 1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>(),
        Impurity::Entropy => -counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>(),
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[derive(Debug, Clone)]
enum RowNode {
    Leaf {
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<RowNode>,
        right: Box<RowNode>,
    },
}

fn row_leaf(counts: &[usize], n: usize) -> RowNode {
    let n = n.max(1) as f64;
    RowNode::Leaf {
        probs: counts.iter().map(|&c| c as f64 / n).collect(),
    }
}

fn row_class_counts(data: &RowMatrix, idx: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[data.labels[i]] += 1;
    }
    counts
}

fn row_best_split_on(
    data: &RowMatrix,
    idx: &[usize],
    f: usize,
    impurity: Impurity,
    n_classes: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| {
        data.rows[a][f]
            .partial_cmp(&data.rows[b][f])
            .expect("no NaN features")
    });

    let n = order.len();
    let mut left_counts = vec![0usize; n_classes];
    let mut right_counts = vec![0usize; n_classes];
    for &i in &order {
        right_counts[data.labels[i]] += 1;
    }

    let mut best: Option<(f64, f64)> = None;
    for k in 0..n - 1 {
        let i = order[k];
        left_counts[data.labels[i]] += 1;
        right_counts[data.labels[i]] -= 1;
        let v = data.rows[i][f];
        let v_next = data.rows[order[k + 1]][f];
        if v == v_next {
            continue; // threshold must separate distinct values
        }
        let nl = k + 1;
        let nr = n - nl;
        let wi = (nl as f64 * impurity_of(impurity, &left_counts, nl)
            + nr as f64 * impurity_of(impurity, &right_counts, nr))
            / n as f64;
        let thr = if v.is_finite() && v_next.is_finite() {
            (v + v_next) / 2.0
        } else {
            v
        };
        if best.as_ref().map_or(true, |&(_, bw)| wi < bw) {
            best = Some((thr, wi));
        }
    }
    best
}

/// The frozen row-oriented CART trainer (pre-columnar `DecisionTree`).
#[derive(Debug, Clone)]
pub struct RowTree {
    config: TreeConfig,
    root: Option<RowNode>,
    n_classes: usize,
    importances: Vec<f64>,
}

impl RowTree {
    /// Creates an unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            root: None,
            n_classes: 0,
            importances: Vec::new(),
        }
    }

    /// Fits the tree over row-major storage; the RNG is consumed exactly
    /// as the columnar trainer consumes it.
    pub fn fit(&mut self, data: &RowMatrix, rng: &mut impl Rng) {
        assert!(!data.rows.is_empty(), "cannot fit on empty dataset");
        self.n_classes = data.n_classes;
        self.importances = vec![0.0; data.n_features()];
        let idx: Vec<usize> = (0..data.len()).collect();
        let total = data.len();
        self.root = Some(self.build(data, idx, 0, total, rng));
    }

    fn build(
        &mut self,
        data: &RowMatrix,
        idx: Vec<usize>,
        depth: usize,
        total: usize,
        rng: &mut impl Rng,
    ) -> RowNode {
        let counts = row_class_counts(data, &idx, self.n_classes);
        let node_impurity = impurity_of(self.config.impurity, &counts, idx.len());
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return row_leaf(&counts, idx.len());
        }

        let n_features = data.n_features();
        let mut feats: Vec<usize> = (0..n_features).collect();
        if let Some(k) = self.config.max_features {
            feats.shuffle(rng);
            feats.truncate(k.clamp(1, n_features));
        }

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in &feats {
            if let Some((thr, child_imp)) =
                row_best_split_on(data, &idx, f, self.config.impurity, self.n_classes)
            {
                if best.as_ref().map_or(true, |&(_, _, bi)| child_imp < bi) {
                    best = Some((f, thr, child_imp));
                }
            }
        }

        let Some((feature, threshold, child_impurity)) = best else {
            return row_leaf(&counts, idx.len());
        };
        self.importances[feature] +=
            (idx.len() as f64 / total as f64 * (node_impurity - child_impurity)).max(0.0);

        let (li, ri): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| data.rows[i][feature] <= threshold);
        let left = Box::new(self.build(data, li, depth + 1, total, rng));
        let right = Box::new(self.build(data, ri, depth + 1, total, rng));
        RowNode::Split {
            feature,
            threshold,
            left,
            right,
        }
    }

    /// Predicted class for one row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        let mut node = self.root.as_ref().expect("tree not fitted");
        loop {
            match node {
                RowNode::Leaf { probs } => return argmax(probs),
                RowNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Mean class-probability distribution at the reached leaf.
    fn proba_one(&self, row: &[f64]) -> Vec<f64> {
        let mut node = self.root.as_ref().expect("tree not fitted");
        loop {
            match node {
                RowNode::Leaf { probs } => return probs.clone(),
                RowNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Normalized Gini importances (matches the columnar trainer).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return self.importances.clone();
        }
        self.importances.iter().map(|&v| v / total).collect()
    }
}

/// The frozen row-oriented forest trainer (pre-columnar `RandomForest`):
/// every tree clones its bootstrap sample into fresh row vectors.
#[derive(Debug, Clone)]
pub struct RowForest {
    config: ForestConfig,
    trees: Vec<RowTree>,
    n_classes: usize,
    n_features: usize,
}

impl RowForest {
    /// Creates an unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
        }
    }

    /// Fits the forest with the historical cloned-subset bootstrap; seed
    /// derivation matches the columnar trainer draw for draw.
    pub fn fit(&mut self, data: &RowMatrix, rng: &mut impl Rng) {
        assert!(!data.rows.is_empty(), "cannot fit on empty dataset");
        self.n_classes = data.n_classes;
        self.n_features = data.n_features();
        let config = self.config;
        let mtry = config
            .max_features
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize)
            .clamp(1, data.n_features());
        let base_seed: u64 = rng.gen();
        self.trees = par_map_index(config.n_trees, |t| {
            let mut tree_rng = rng_from_seed(derive_seed_index(base_seed, t as u64));
            let idx: Vec<usize> = (0..data.len())
                .map(|_| tree_rng.gen_range(0..data.len()))
                .collect();
            // The historical per-tree materialized resample.
            let sample = RowMatrix {
                rows: idx.iter().map(|&i| data.rows[i].clone()).collect(),
                labels: idx.iter().map(|&i| data.labels[i]).collect(),
                n_classes: data.n_classes,
            };
            let mut tree = RowTree::new(TreeConfig {
                impurity: config.impurity,
                max_depth: config.max_depth,
                min_samples_split: config.min_samples_split,
                max_features: Some(mtry),
            });
            tree.fit(&sample, &mut tree_rng);
            tree
        });
    }

    /// Predicted class for one row (soft vote, as the columnar forest).
    pub fn predict_one(&self, row: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "forest not fitted");
        let mut probs = vec![0.0; self.n_classes];
        for tree in &self.trees {
            for (p, q) in probs.iter_mut().zip(tree.proba_one(row)) {
                *p += q;
            }
        }
        let n = self.trees.len() as f64;
        for p in &mut probs {
            *p /= n;
        }
        argmax(&probs)
    }

    /// Gini importances averaged over member trees.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (a, b) in imp.iter_mut().zip(tree.feature_importances()) {
                *a += b;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

#[derive(Debug, Clone)]
enum RowRegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<RowRegNode>,
        right: Box<RowRegNode>,
    },
}

impl RowRegNode {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            RowRegNode::Leaf { value } => *value,
            RowRegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }

    fn dump(&self, out: &mut Vec<DumpRegNode>) -> usize {
        match self {
            RowRegNode::Leaf { value } => {
                out.push(DumpRegNode::Leaf { value: *value });
                out.len() - 1
            }
            RowRegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let at = out.len();
                out.push(DumpRegNode::Split {
                    feature: *feature,
                    threshold: *threshold,
                    left: 0,
                    right: 0,
                });
                let li = left.dump(out);
                let ri = right.dump(out);
                if let DumpRegNode::Split { left, right, .. } = &mut out[at] {
                    *left = li;
                    *right = ri;
                }
                at
            }
        }
    }
}

fn reg_leaf_value(g: f64, h: f64, lambda: f64) -> f64 {
    g / (h + lambda)
}

fn reg_gain(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

fn row_build_reg_tree(
    x: &[Vec<f64>],
    g: &[f64],
    h: &[f64],
    idx: &[usize],
    depth: usize,
    cfg: &GbdtConfig,
) -> RowRegNode {
    let g_sum: f64 = idx.iter().map(|&i| g[i]).sum();
    let h_sum: f64 = idx.iter().map(|&i| h[i]).sum();
    if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_samples_leaf {
        return RowRegNode::Leaf {
            value: reg_leaf_value(g_sum, h_sum, cfg.lambda),
        };
    }

    let parent_gain = reg_gain(g_sum, h_sum, cfg.lambda);
    let n_features = x[0].len();
    let mut best: Option<(usize, f64, f64)> = None;

    for f in 0..n_features {
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("no NaN features"));
        let mut gl = 0.0;
        let mut hl = 0.0;
        for k in 0..order.len() - 1 {
            let i = order[k];
            gl += g[i];
            hl += h[i];
            let v = x[i][f];
            let v_next = x[order[k + 1]][f];
            if v == v_next {
                continue;
            }
            let nl = k + 1;
            let nr = order.len() - nl;
            if nl < cfg.min_samples_leaf || nr < cfg.min_samples_leaf {
                continue;
            }
            let improvement = reg_gain(gl, hl, cfg.lambda)
                + reg_gain(g_sum - gl, h_sum - hl, cfg.lambda)
                - parent_gain;
            if best
                .as_ref()
                .map_or(improvement > 1e-12, |&(_, _, b)| improvement > b)
            {
                let thr = if v.is_finite() && v_next.is_finite() {
                    (v + v_next) / 2.0
                } else {
                    v
                };
                best = Some((f, thr, improvement));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return RowRegNode::Leaf {
            value: reg_leaf_value(g_sum, h_sum, cfg.lambda),
        };
    };
    let (li, ri): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| x[i][feature] <= threshold);
    RowRegNode::Split {
        feature,
        threshold,
        left: Box::new(row_build_reg_tree(x, g, h, &li, depth + 1, cfg)),
        right: Box::new(row_build_reg_tree(x, g, h, &ri, depth + 1, cfg)),
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// The frozen row-oriented gradient-boosting trainer (pre-columnar
/// `GbdtClassifier`).
#[derive(Debug, Clone)]
pub struct RowGbdt {
    config: GbdtConfig,
    boosters: Vec<(f64, Vec<RowRegNode>)>,
}

impl RowGbdt {
    /// Creates an unfitted classifier.
    pub fn new(config: GbdtConfig) -> Self {
        Self {
            config,
            boosters: Vec::new(),
        }
    }

    /// Trains one-vs-rest boosters over row-major storage.
    pub fn fit(&mut self, data: &RowMatrix) {
        assert!(!data.rows.is_empty(), "cannot fit on empty dataset");
        let n = data.len();
        let idx: Vec<usize> = (0..n).collect();
        self.boosters = (0..data.n_classes)
            .map(|c| {
                let y: Vec<f64> = data
                    .labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { 0.0 })
                    .collect();
                let pos = y.iter().sum::<f64>().clamp(1e-6, n as f64 - 1e-6);
                let base = (pos / (n as f64 - pos)).ln();
                let mut scores = vec![base; n];
                let mut trees = Vec::with_capacity(self.config.n_rounds);
                for _ in 0..self.config.n_rounds {
                    let mut g = vec![0.0; n];
                    let mut h = vec![0.0; n];
                    for i in 0..n {
                        let p = sigmoid(scores[i]);
                        g[i] = y[i] - p;
                        h[i] = (p * (1.0 - p)).max(1e-9);
                    }
                    let tree = row_build_reg_tree(&data.rows, &g, &h, &idx, 0, &self.config);
                    for i in 0..n {
                        scores[i] += self.config.learning_rate * tree.predict(&data.rows[i]);
                    }
                    trees.push(tree);
                }
                (base, trees)
            })
            .collect();
    }

    /// Predicted class for one row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        assert!(!self.boosters.is_empty(), "GBDT not fitted");
        let scores: Vec<f64> = self
            .boosters
            .iter()
            .map(|(base, trees)| {
                base + self.config.learning_rate * trees.iter().map(|t| t.predict(row)).sum::<f64>()
            })
            .collect();
        argmax(&scores)
    }

    /// Flat export of every booster, comparable with
    /// [`GbdtClassifier::dump_boosters`].
    pub fn dump_boosters(&self) -> Vec<(f64, Vec<Vec<DumpRegNode>>)> {
        self.boosters
            .iter()
            .map(|(base, trees)| {
                let dumped = trees
                    .iter()
                    .map(|t| {
                        let mut out = Vec::new();
                        t.dump(&mut out);
                        out
                    })
                    .collect();
                (*base, dumped)
            })
            .collect()
    }
}

/// The frozen row-oriented k-NN (pre-columnar `KnnClassifier`): memorizes
/// a *second* scaled copy of every training row.
#[derive(Debug, Clone)]
pub struct RowKnn {
    config: KnnConfig,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<usize>,
    n_classes: usize,
    mean: Vec<f64>,
    sd: Vec<f64>,
}

impl RowKnn {
    /// Creates an unfitted classifier.
    pub fn new(config: KnnConfig) -> Self {
        assert!(config.k >= 1, "k must be at least 1");
        Self {
            config,
            train_x: Vec::new(),
            train_y: Vec::new(),
            n_classes: 0,
            mean: Vec::new(),
            sd: Vec::new(),
        }
    }

    /// "Fits" by standardizing and re-cloning the whole training set.
    pub fn fit(&mut self, data: &RowMatrix) {
        assert!(!data.rows.is_empty(), "cannot fit on empty dataset");
        let n = data.len().max(1) as f64;
        let d = data.n_features();
        let mut mean = vec![0.0; d];
        for row in &data.rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut sd = vec![0.0; d];
        for row in &data.rows {
            for ((s, m), &v) in sd.iter_mut().zip(&mean).zip(row) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut sd {
            *s = s.sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        self.train_x = data
            .rows
            .iter()
            .map(|row| scale_row(row, &mean, &sd))
            .collect();
        self.train_y = data.labels.clone();
        self.n_classes = data.n_classes;
        self.mean = mean;
        self.sd = sd;
    }

    /// Predicted class for one (unscaled) row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        assert!(!self.train_x.is_empty(), "k-NN not fitted");
        let q = scale_row(row, &self.mean, &self.sd);
        let mut dists: Vec<(f64, usize)> = self
            .train_x
            .iter()
            .zip(&self.train_y)
            .map(|(x, &y)| {
                let d2: f64 = x.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, y)
            })
            .collect();
        let k = self.config.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut votes = vec![0.0f64; self.n_classes];
        for &(d2, y) in &dists[..k] {
            let w = if self.config.distance_weighted {
                1.0 / (d2.sqrt() + 1e-9)
            } else {
                1.0
            };
            votes[y] += w;
        }
        argmax(&votes)
    }
}

fn scale_row(row: &[f64], mean: &[f64], sd: &[f64]) -> Vec<f64> {
    row.iter()
        .zip(mean.iter().zip(sd))
        .map(|(&v, (m, s))| (v - m) / s)
        .collect()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Refits every (row-reference, columnar) trainer pair from `seed` and
/// panics unless the fitted models are indistinguishable: identical
/// predictions on every training row, bitwise-identical Gini importances
/// for the tree models, and an identical dumped booster structure for
/// GBDT. This is the referee the throughput numbers stand on.
pub fn assert_columnar_matches_rows(frame: &Dataset, seed: u64) {
    let rows = RowMatrix::from_frame(frame);

    let mut row_tree = RowTree::new(TreeConfig::default());
    let mut rng = rng_from_seed(seed);
    row_tree.fit(&rows, &mut rng);
    let mut col_tree = DecisionTree::new(TreeConfig::default());
    let mut rng = rng_from_seed(seed);
    col_tree.fit(frame, &mut rng);
    let row_pred: Vec<usize> = rows.rows.iter().map(|r| row_tree.predict_one(r)).collect();
    assert_eq!(
        row_pred,
        col_tree.predict_view(&frame.view()),
        "DT predictions diverged"
    );
    assert_eq!(
        bits(&row_tree.feature_importances()),
        bits(&col_tree.feature_importances()),
        "DT Gini importances diverged"
    );

    let mut row_forest = RowForest::new(ForestConfig::default());
    let mut rng = rng_from_seed(seed);
    row_forest.fit(&rows, &mut rng);
    let mut col_forest = RandomForest::new(ForestConfig::default());
    let mut rng = rng_from_seed(seed);
    col_forest.fit(frame, &mut rng);
    let row_pred: Vec<usize> = rows
        .rows
        .iter()
        .map(|r| row_forest.predict_one(r))
        .collect();
    assert_eq!(
        row_pred,
        col_forest.predict_view(&frame.view()),
        "RF predictions diverged"
    );
    assert_eq!(
        bits(&row_forest.feature_importances()),
        bits(&col_forest.feature_importances()),
        "RF Gini importances diverged"
    );

    let mut row_gbdt = RowGbdt::new(GbdtConfig::default());
    row_gbdt.fit(&rows);
    let mut col_gbdt = GbdtClassifier::new(GbdtConfig::default());
    col_gbdt.fit(frame);
    let row_pred: Vec<usize> = rows.rows.iter().map(|r| row_gbdt.predict_one(r)).collect();
    assert_eq!(
        row_pred,
        col_gbdt.predict_view(&frame.view()),
        "GBDT predictions diverged"
    );
    assert_eq!(
        row_gbdt.dump_boosters(),
        col_gbdt.dump_boosters(),
        "GBDT booster structure diverged"
    );

    let mut row_knn = RowKnn::new(KnnConfig::default());
    row_knn.fit(&rows);
    let mut col_knn = KnnClassifier::new(KnnConfig::default());
    col_knn.fit(frame);
    let row_pred: Vec<usize> = rows.rows.iter().map(|r| row_knn.predict_one(r)).collect();
    assert_eq!(
        row_pred,
        col_knn.predict_view(&frame.view()),
        "k-NN predictions diverged"
    );
}

/// Times `passes` full fits, returning total seconds (one untimed
/// warm-up fit first). Timing flows through the telemetry spine: each
/// pass runs under a `bench.train.pass` span inside a collection scope,
/// and the total is read back from the scope report's wall histogram.
fn time_fits<F: FnMut()>(passes: usize, mut run: F) -> f64 {
    run();
    let ((), report) = obs::with_scope(|| {
        for _ in 0..passes {
            let _span = obs::span("bench.train.pass");
            run();
        }
    });
    report.wall_nanos("bench.train.pass") as f64 / 1e9
}

/// Runs the training microbenchmark: per model, `passes` timed fits of
/// the frozen row-oriented trainer and of the columnar trainer over the
/// full §5 main-campaign dataset, after the bitwise referee pass.
pub fn train_bench(passes: usize) -> String {
    let frame = main_dataset().to_ml_3class(&table(), &gt_params());
    assert_columnar_matches_rows(&frame, TRAIN_SEED);
    let rows = RowMatrix::from_frame(&frame);
    let n = frame.len();

    let mut measurements: Vec<(&str, f64, f64)> = Vec::new();

    let row_s = time_fits(passes, || {
        let mut rng = rng_from_seed(TRAIN_SEED);
        RowTree::new(TreeConfig::default()).fit(&rows, &mut rng);
    });
    let col_s = time_fits(passes, || {
        let mut rng = rng_from_seed(TRAIN_SEED);
        DecisionTree::new(TreeConfig::default()).fit(&frame, &mut rng);
    });
    measurements.push(("DT", row_s, col_s));

    let row_s = time_fits(passes, || {
        let mut rng = rng_from_seed(TRAIN_SEED);
        RowForest::new(ForestConfig::default()).fit(&rows, &mut rng);
    });
    let col_s = time_fits(passes, || {
        let mut rng = rng_from_seed(TRAIN_SEED);
        RandomForest::new(ForestConfig::default()).fit(&frame, &mut rng);
    });
    measurements.push(("RF", row_s, col_s));

    let row_s = time_fits(passes, || RowGbdt::new(GbdtConfig::default()).fit(&rows));
    let col_s = time_fits(passes, || {
        GbdtClassifier::new(GbdtConfig::default()).fit(&frame)
    });
    measurements.push(("GBDT", row_s, col_s));

    let row_s = time_fits(passes, || RowKnn::new(KnnConfig::default()).fit(&rows));
    let col_s = time_fits(passes, || {
        KnnClassifier::new(KnnConfig::default()).fit(&frame)
    });
    measurements.push(("kNN", row_s, col_s));

    let mut t = TextTable::new([
        "model",
        "rows/fit",
        "passes",
        "row (s)",
        "columnar (s)",
        "row krows/s",
        "col krows/s",
        "speedup",
    ]);
    for &(name, row_s, col_s) in &measurements {
        let fitted = (n * passes) as f64;
        t.row([
            name.to_string(),
            n.to_string(),
            passes.to_string(),
            fmt_f(row_s, 3),
            fmt_f(col_s, 3),
            fmt_f(fitted / row_s / 1e3, 1),
            fmt_f(fitted / col_s / 1e3, 1),
            fmt_f(row_s / col_s, 2),
        ]);
    }
    let report = format!(
        "Training throughput: {} rows, row-oriented baseline vs columnar\n{}",
        n,
        t.render()
    );

    let path = report_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, &report) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    report
}
