//! Experiments E1–E3: the COTS motivation study (paper §3, Figs 1–3).
//!
//! Each figure has three panels: (a) Tx sector selection over time on the
//! phone, (b) the same on the AP, (c) throughput with BA enabled vs the
//! best manually locked sector. The regenerated output reports, per
//! device: the number of BA triggers, the number of distinct sectors
//! visited, and the two throughputs — the quantities the paper reads off
//! the panels ("more than 100 times within a 60 s period", "6 different
//! sectors", "26 % throughput improvement", …).

use libra_mac::cots::{best_fixed_sector_run, run_cots, CotsConfig, CotsScenario, DeviceProfile};
use libra_util::table::{fmt_f, TextTable};
use serde::{Deserialize, Serialize};

/// Summary of one §3 figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MotivationResult {
    /// Scenario label ("static", "blockage", "mobility").
    pub scenario: String,
    /// BA triggers per device over the session.
    pub phone_ba_triggers: usize,
    /// Distinct sectors tried by the phone.
    pub phone_sectors: usize,
    /// BA triggers on the AP.
    pub ap_ba_triggers: usize,
    /// Distinct sectors tried by the AP.
    pub ap_sectors: usize,
    /// AP throughput with BA enabled, Mbps.
    pub tput_with_ba_mbps: f64,
    /// AP throughput locked to the best sector, Mbps.
    pub tput_best_fixed_mbps: f64,
    /// Sector-change events of the AP (time ms, sector id or 255).
    pub ap_sector_timeline: Vec<(f64, i64)>,
}

impl MotivationResult {
    /// Relative throughput change from enabling BA
    /// (negative = BA hurts, as in Figs 1c/2c; positive = BA helps, 3c).
    pub fn ba_gain_percent(&self) -> f64 {
        (self.tput_with_ba_mbps - self.tput_best_fixed_mbps) / self.tput_best_fixed_mbps * 100.0
    }
}

/// Throughput comparisons average 5 sessions, as in the paper ("averaged
/// over 5 experiments", Fig. 1c).
const THROUGHPUT_RUNS: u64 = 5;

fn run(scenario: CotsScenario, name: &str, duration_s: f64, seed: u64) -> MotivationResult {
    let phone_cfg = CotsConfig {
        profile: DeviceProfile::rog_phone(),
        ba_enabled: true,
        fixed_sector: 0,
        duration_s,
        seed,
    };
    let phone = run_cots(&scenario, &phone_cfg);
    let ap_cfg = CotsConfig {
        profile: DeviceProfile::talon_ap(),
        ba_enabled: true,
        fixed_sector: 0,
        duration_s,
        seed: seed ^ 0xA9,
    };
    let ap = run_cots(&scenario, &ap_cfg);

    let mut with_ba = Vec::new();
    let mut fixed_best = Vec::new();
    for r in 0..THROUGHPUT_RUNS {
        let cfg = CotsConfig {
            seed: seed.wrapping_add(r * 7919) ^ 0xA9,
            ..ap_cfg
        };
        with_ba.push(run_cots(&scenario, &cfg).mean_tput_mbps);
        let (_, fixed) = best_fixed_sector_run(
            &scenario,
            &DeviceProfile::talon_ap(),
            duration_s,
            seed.wrapping_add(r * 104_729) ^ 0xF1,
        );
        fixed_best.push(fixed.mean_tput_mbps);
    }

    MotivationResult {
        scenario: name.to_string(),
        phone_ba_triggers: phone.ba_trigger_count,
        phone_sectors: phone.distinct_sectors,
        ap_ba_triggers: ap.ba_trigger_count,
        ap_sectors: ap.distinct_sectors,
        tput_with_ba_mbps: libra_util::stats::mean(&with_ba),
        tput_best_fixed_mbps: libra_util::stats::mean(&fixed_best),
        ap_sector_timeline: ap
            .sector_timeline
            .iter()
            .map(|e| (e.t_ms, e.sector.map_or(255, |s| s as i64)))
            .collect(),
    }
}

/// Fig. 1 — static client at 30 ft (~9 m), 60 s.
pub fn fig1(seed: u64) -> MotivationResult {
    run(
        CotsScenario::Static { distance_m: 9.1 },
        "static",
        60.0,
        seed,
    )
}

/// Fig. 2 — human blockage on the LOS, 55 s.
pub fn fig2(seed: u64) -> MotivationResult {
    run(
        CotsScenario::Blockage { distance_m: 8.0 },
        "blockage",
        55.0,
        seed,
    )
}

/// Fig. 3 — walking away from the AP while facing it, 20 s.
pub fn fig3(seed: u64) -> MotivationResult {
    run(
        CotsScenario::Mobility {
            start_m: 2.0,
            speed_m_per_s: 1.2,
        },
        "mobility",
        20.0,
        seed,
    )
}

/// Renders the three results as the paper reads them.
pub fn render(results: &[MotivationResult]) -> String {
    let mut t = TextTable::new([
        "scenario",
        "phone BA/min",
        "phone sectors",
        "AP BA/min",
        "AP sectors",
        "Tput BA (Mbps)",
        "Tput fixed (Mbps)",
        "BA gain %",
    ]);
    for r in results {
        // Session lengths differ; report triggers per minute.
        let dur_min = r
            .ap_sector_timeline
            .last()
            .map(|e| e.0 / 60_000.0)
            .unwrap_or(1.0)
            .max(1.0 / 60.0);
        t.row([
            r.scenario.clone(),
            fmt_f(r.phone_ba_triggers as f64 / dur_min, 0),
            r.phone_sectors.to_string(),
            fmt_f(r.ap_ba_triggers as f64 / dur_min, 0),
            r.ap_sectors.to_string(),
            fmt_f(r.tput_with_ba_mbps, 0),
            fmt_f(r.tput_best_fixed_mbps, 0),
            fmt_f(r.ba_gain_percent(), 1),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_matches_paper() {
        let r = fig1(3);
        // Phone flaps much more than the AP; BA hurts in the static case.
        assert!(r.phone_ba_triggers > r.ap_ba_triggers);
        assert!(r.phone_sectors >= 3, "phone sectors {}", r.phone_sectors);
        assert!(
            r.tput_best_fixed_mbps > r.tput_with_ba_mbps,
            "locking the best sector should win when static"
        );
    }

    #[test]
    fn fig3_mobility_ba_helps() {
        let r = fig3(3);
        assert!(
            r.tput_with_ba_mbps > r.tput_best_fixed_mbps,
            "BA should track the moving client: {} !> {}",
            r.tput_with_ba_mbps,
            r.tput_best_fixed_mbps
        );
    }

    #[test]
    fn render_has_three_rows() {
        let rows = vec![fig1(1), fig2(1), fig3(1)];
        let s = render(&rows);
        assert_eq!(s.lines().count(), 5); // header + rule + 3 rows
    }
}
