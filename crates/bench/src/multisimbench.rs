//! Multi-station simulator benchmark section: drives the event-driven
//! §8 engine (`libra::multisim`) over an N-AP × M-station deployment
//! and reports engine throughput (events/sec, stations/sec), the
//! per-station application-throughput distribution, and LiBRA's
//! aggregate regret vs `Oracle-Data` — written both as a
//! human-readable table and as the machine-readable
//! `results/BENCH_multisim.json` record.
//!
//! Three passes:
//!
//! 1. **LiBRA** — the policy under study on the shared
//!    reduced-campaign classifier, timed: the honest events/sec and
//!    stations/sec figures come from here.
//! 2. **Oracle-Data** — the same deployment replayed under the
//!    data-oracle; aggregate regret is `1 − libra_bytes/oracle_bytes`.
//! 3. **Thread invariance** — the LiBRA pass rerun at a different
//!    worker count; the event digests must match bitwise (the
//!    engine's core determinism contract).

use libra::multisim::{run_multisim, MultiSimConfig, MultiSimOutcome};
use libra::sim::PolicyKind;
use libra_fuzz::default_classifier;
use libra_util::table::{fmt_f, TextTable};
use std::time::Instant;

/// Where the machine-readable benchmark record lands.
pub fn bench_path() -> std::path::PathBuf {
    libra_util::paths::results_root().join("BENCH_multisim.json")
}

/// Runs the three benchmark passes over an `n_aps` × `stations_per_ap`
/// deployment simulated for `duration_ms` and writes
/// `results/BENCH_multisim.json`.
pub fn multisim_bench(n_aps: u32, stations_per_ap: u32, duration_ms: f64) -> String {
    let mut cfg = MultiSimConfig::new(n_aps, stations_per_ap);
    cfg.duration_ms = duration_ms;
    cfg.policy = PolicyKind::Libra;
    let clf = default_classifier();

    // Pass 1: timed LiBRA run.
    let t0 = Instant::now();
    let libra_run = run_multisim(&cfg, Some(clf));
    let secs = t0.elapsed().as_secs_f64();
    let stations = cfg.n_stations();
    let (eps, sps) = if secs > 0.0 {
        (libra_run.events as f64 / secs, stations as f64 / secs)
    } else {
        (0.0, 0.0)
    };

    // Pass 2: the Oracle-Data ceiling on the identical deployment.
    let mut oracle_cfg = cfg.clone();
    oracle_cfg.policy = PolicyKind::OracleData;
    let oracle_run = run_multisim(&oracle_cfg, None);
    let regret = aggregate_regret(&libra_run, &oracle_run);

    // Pass 3: thread invariance — rerun at a different worker count
    // and require a bitwise-identical event digest. `set_threads` is
    // process-global, so the benchmark shape is restored afterwards.
    let current = libra_util::par::threads();
    let alternate = if current == 1 { 4 } else { 1 };
    libra_util::par::set_threads(alternate);
    let replay = run_multisim(&cfg, Some(clf));
    libra_util::par::set_threads(current);
    let invariant = replay.digest == libra_run.digest;

    let json = bench_json(&cfg, secs, eps, sps, regret, invariant, &libra_run);
    let path = bench_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }

    let mut table = TextTable::new(["metric", "value"]);
    table.row(["events".into(), libra_run.events.to_string()]);
    table.row(["events/sec".into(), fmt_f(eps, 0)]);
    table.row(["stations/sec".into(), fmt_f(sps, 1)]);
    for (label, p) in [("p5", 5.0), ("p50", 50.0), ("p95", 95.0)] {
        table.row([
            format!("station tput {label} (Mbps)"),
            fmt_f(libra_run.mbps_percentile(p), 1),
        ]);
    }
    table.row(["aggregate regret vs Oracle-Data".into(), fmt_f(regret, 4)]);
    table.row(["handoffs".into(), libra_run.total_handoffs().to_string()]);
    table.row([
        format!("replay digest {current} vs {alternate} thread(s)"),
        if invariant { "identical" } else { "MISMATCH" }.to_string(),
    ]);
    format!(
        "Multi-station sim (seed {:#x}): {n_aps} APs x {stations_per_ap} stations, \
         {duration_ms:.0} ms simulated in {secs:.1} s\ndigest {:#018x}\n{}",
        cfg.seed,
        libra_run.digest,
        table.render()
    )
}

/// Aggregate regret of a policy run vs its oracle ceiling:
/// `1 − policy_bytes/oracle_bytes`, clamped at zero (a policy can tie
/// the oracle on quiet deployments but not beat it meaningfully).
pub fn aggregate_regret(policy: &MultiSimOutcome, oracle: &MultiSimOutcome) -> f64 {
    if oracle.total_bytes > 0.0 {
        (1.0 - policy.total_bytes / oracle.total_bytes).max(0.0)
    } else {
        0.0
    }
}

/// Hand-rendered machine-readable record (the workspace has no JSON
/// dependency by design).
fn bench_json(
    cfg: &MultiSimConfig,
    secs: f64,
    eps: f64,
    sps: f64,
    regret: f64,
    invariant: bool,
    run: &MultiSimOutcome,
) -> String {
    format!(
        "{{\n  \"bench\": \"multisim\",\n  \"aps\": {},\n  \"stations_per_ap\": {},\n  \
         \"stations\": {},\n  \"duration_ms\": {:.1},\n  \"seed\": \"{:#x}\",\n  \
         \"wall_secs\": {secs:.3},\n  \"events\": {},\n  \"events_per_sec\": {eps:.1},\n  \
         \"stations_per_sec\": {sps:.2},\n  \"digest\": \"{:#018x}\",\n  \
         \"thread_invariant\": {invariant},\n  \"aggregate_regret\": {regret:.6},\n  \
         \"handoffs\": {},\n  \"total_bytes\": {:.1},\n  \"station_mbps\": {{ \"p5\": {:.3}, \
         \"p50\": {:.3}, \"p95\": {:.3} }}\n}}\n",
        cfg.n_aps,
        cfg.stations_per_ap,
        cfg.n_stations(),
        cfg.duration_ms,
        cfg.seed,
        run.events,
        run.digest,
        run.total_handoffs(),
        run.total_bytes,
        run.mbps_percentile(5.0),
        run.mbps_percentile(50.0),
        run.mbps_percentile(95.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed() {
        let cfg = MultiSimConfig::new(4, 16);
        let run = MultiSimOutcome {
            stations: Vec::new(),
            events: 4242,
            digest: 0xdead_beef,
            total_bytes: 1.5e9,
            duration_ms: cfg.duration_ms,
        };
        let json = bench_json(&cfg, 2.5, 1700.0, 25.6, 0.0321, true, &run);
        assert!(json.contains("\"bench\": \"multisim\""));
        assert!(json.contains("\"stations\": 64"));
        assert!(json.contains("\"events_per_sec\": 1700.0"));
        assert!(json.contains("\"digest\": \"0x00000000deadbeef\""));
        assert!(json.contains("\"thread_invariant\": true"));
        assert!(json.contains("\"aggregate_regret\": 0.032100"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn aggregate_regret_bounds() {
        let out = |bytes: f64| MultiSimOutcome {
            stations: Vec::new(),
            events: 0,
            digest: 0,
            total_bytes: bytes,
            duration_ms: 1000.0,
        };
        assert_eq!(aggregate_regret(&out(750.0), &out(1000.0)), 0.25);
        // A tie (or a lucky policy) never reports negative regret.
        assert_eq!(aggregate_regret(&out(1100.0), &out(1000.0)), 0.0);
        // An empty oracle run reports zero rather than NaN.
        assert_eq!(aggregate_regret(&out(0.0), &out(0.0)), 0.0);
    }
}
