//! Chaos-drill benchmark section: runs the deterministic guarded-
//! lifecycle storyline of `libra-guard` — fault injection, graceful
//! degradation to the §7 rule, drift detection, shadow evaluation, and
//! automatic rollback/promotion — and records the robustness headline
//! numbers to `results/BENCH_chaos.json`: fault counts, the degradation
//! rate under the storm, time-to-rollback in decisions, and the
//! thread/shard invariance of the end-to-end digest.
//!
//! Two passes:
//!
//! 1. **Timed drill** — the full storyline at the benchmark shard and
//!    worker count.
//! 2. **Invariance** — the identical drill at 1 shard and 1 worker (or
//!    4, when the benchmark itself is sequential); every round digest
//!    and lifecycle action must match bitwise.

use libra_guard::{run_chaos, ChaosConfig, ChaosOutcome, LifecycleAction};
use libra_infer::ModelRegistry;
use libra_util::table::TextTable;
use std::time::Instant;

/// Where the machine-readable benchmark record lands.
pub fn bench_path() -> std::path::PathBuf {
    libra_util::paths::results_root().join("BENCH_chaos.json")
}

fn action_label(action: &LifecycleAction) -> String {
    match action {
        LifecycleAction::Hold => "hold".into(),
        LifecycleAction::Promote { from, to } => format!("promote v{from} -> v{to}"),
        LifecycleAction::Rollback { from, to } => format!("rollback v{from} -> v{to}"),
    }
}

/// Runs the storyline once against a freshly wiped registry directory.
fn drill(cfg: &ChaosConfig, dir: &std::path::Path) -> ChaosOutcome {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create chaos registry dir");
    let registry = ModelRegistry::open(dir);
    run_chaos(cfg, &registry, "chaos").expect("chaos drill must survive its own fault plan")
}

/// Runs the chaos drill at `requests` per round on `shards` shards and
/// writes `results/BENCH_chaos.json`.
pub fn chaos_bench(requests: usize, shards: usize) -> String {
    let cfg = ChaosConfig {
        requests_per_round: requests,
        shards,
        ..ChaosConfig::default()
    };
    let dir = libra_util::paths::results_root().join("chaos_models");

    // Pass 1: the timed drill.
    let t0 = Instant::now();
    let outcome = drill(&cfg, &dir);
    let secs = t0.elapsed().as_secs_f64();

    // Pass 2: invariance — 1 shard at an alternate worker count must
    // reproduce every round digest and lifecycle action bitwise.
    // `set_threads` is process-global, so the shape is restored after.
    let current = libra_util::par::threads();
    let alternate = if current == 1 { 4 } else { 1 };
    libra_util::par::set_threads(alternate);
    let replay = drill(&ChaosConfig { shards: 1, ..cfg }, &dir);
    libra_util::par::set_threads(current);
    let invariant = replay.digest == outcome.digest
        && replay
            .rounds
            .iter()
            .zip(&outcome.rounds)
            .all(|(a, b)| a.digest == b.digest && a.action == b.action);

    let json = bench_json(&cfg, secs, &outcome, invariant);
    let path = bench_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }

    let degraded_per_mille = (outcome.degraded * 1000)
        .checked_div(outcome.decisions)
        .unwrap_or(0);
    let mut table = TextTable::new(["metric", "value"]);
    table.row(["decisions".into(), outcome.decisions.to_string()]);
    table.row([
        "degraded (fallback rule)".into(),
        format!("{} ({degraded_per_mille} per mille)", outcome.degraded),
    ]);
    table.row([
        "deadline misses".into(),
        outcome.deadline_misses.to_string(),
    ]);
    table.row(["dropped responses".into(), outcome.drops.to_string()]);
    table.row([
        "artifact faults".into(),
        outcome.artifact_faults.to_string(),
    ]);
    table.row([
        "time to rollback".into(),
        match outcome.decisions_to_rollback {
            Some(n) => format!("{n} decisions"),
            None => "no rollback".into(),
        },
    ]);
    table.row([
        "final LATEST".into(),
        format!("chaos@v{}", outcome.final_latest),
    ]);
    table.row([
        "digest 1 shard/alt threads".into(),
        if invariant { "identical" } else { "MISMATCH" }.to_string(),
    ]);
    let mut out = format!(
        "Chaos drill (seed {:#x}): {} rounds x {requests} requests on {shards} shard(s), \
         {:.1} s\ndigest {:#018x}\n{}",
        cfg.seed,
        outcome.rounds.len(),
        secs,
        outcome.digest,
        table.render()
    );
    for event in &outcome.events {
        if !matches!(event.action, LifecycleAction::Hold) {
            out.push_str(&format!(
                "round {}: {} ({})\n",
                event.round,
                action_label(&event.action),
                event.reason
            ));
        }
    }
    out
}

/// Hand-rendered machine-readable record (the workspace has no JSON
/// dependency by design).
fn bench_json(cfg: &ChaosConfig, secs: f64, outcome: &ChaosOutcome, invariant: bool) -> String {
    let degradation_rate = if outcome.decisions > 0 {
        outcome.degraded as f64 / outcome.decisions as f64
    } else {
        0.0
    };
    let fmt_opt = |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
    format!(
        "{{\n  \"bench\": \"chaos\",\n  \"seed\": \"{:#x}\",\n  \"rounds\": {},\n  \
         \"requests_per_round\": {},\n  \"shards\": {},\n  \"elapsed_s\": {secs:.2},\n  \
         \"decisions\": {},\n  \"degraded\": {},\n  \"degradation_rate\": {degradation_rate:.4},\n  \
         \"deadline_misses\": {},\n  \"drops\": {},\n  \"artifact_faults\": {},\n  \
         \"rollback_round\": {},\n  \"decisions_to_rollback\": {},\n  \"promote_round\": {},\n  \
         \"final_latest\": {},\n  \"digest\": \"{:#018x}\",\n  \"thread_invariant\": {invariant}\n}}\n",
        cfg.seed,
        outcome.rounds.len(),
        cfg.requests_per_round,
        cfg.shards,
        outcome.decisions,
        outcome.degraded,
        outcome.deadline_misses,
        outcome.drops,
        outcome.artifact_faults,
        fmt_opt(outcome.rollback_round),
        fmt_opt(outcome.decisions_to_rollback),
        fmt_opt(outcome.promote_round),
        outcome.final_latest,
        outcome.digest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed() {
        let cfg = ChaosConfig::default();
        let outcome = ChaosOutcome {
            digest: 0xdead_beef,
            decisions: 12_000,
            degraded: 1_776,
            deadline_misses: 800,
            drops: 600,
            artifact_faults: 2,
            rollback_round: Some(1),
            decisions_to_rollback: Some(4_000),
            promote_round: Some(4),
            final_latest: 3,
            rounds: Vec::new(),
            events: Vec::new(),
        };
        let json = bench_json(&cfg, 1.5, &outcome, true);
        assert!(json.contains("\"bench\": \"chaos\""));
        assert!(json.contains("\"degradation_rate\": 0.1480"));
        assert!(json.contains("\"decisions_to_rollback\": 4000"));
        assert!(json.contains("\"digest\": \"0x00000000deadbeef\""));
        assert!(json.contains("\"thread_invariant\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // A drill that never breaches renders `null`, not a number.
        let quiet = ChaosOutcome {
            rollback_round: None,
            decisions_to_rollback: None,
            promote_round: None,
            ..outcome
        };
        let json = bench_json(&cfg, 1.5, &quiet, true);
        assert!(json.contains("\"rollback_round\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn action_labels_are_grep_stable() {
        assert_eq!(
            action_label(&LifecycleAction::Rollback { from: 2, to: 1 }),
            "rollback v2 -> v1"
        );
        assert_eq!(
            action_label(&LifecycleAction::Promote { from: 1, to: 3 }),
            "promote v1 -> v3"
        );
        assert_eq!(action_label(&LifecycleAction::Hold), "hold");
    }
}
