//! Shared, lazily-built experiment context.
//!
//! Every experiment needs the generated datasets and the trained
//! classifier; building them takes about a second each in release mode,
//! so they are constructed once per process and shared.

use libra::LibraClassifier;
use libra_dataset::{
    generate, main_campaign_plan, testing_campaign_plan, CampaignConfig, CampaignDataset,
    GroundTruthParams,
};
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;
use std::sync::OnceLock;

/// Master seed of the whole experiment suite.
pub const SUITE_SEED: u64 = 0x11B2A;

static MAIN: OnceLock<CampaignDataset> = OnceLock::new();
static TESTING: OnceLock<CampaignDataset> = OnceLock::new();
static CLASSIFIER: OnceLock<LibraClassifier> = OnceLock::new();

/// The main (training) dataset — Table 1.
pub fn main_dataset() -> &'static CampaignDataset {
    MAIN.get_or_init(|| generate(&main_campaign_plan(), &CampaignConfig::default()))
}

/// The held-out testing dataset — Table 2.
pub fn testing_dataset() -> &'static CampaignDataset {
    TESTING.get_or_init(|| generate(&testing_campaign_plan(), &CampaignConfig::default()))
}

/// The X60 MCS table used throughout.
pub fn table() -> McsTable {
    McsTable::x60()
}

/// Ground-truth parameters with α = 1 (the labelling used for Tables 1–2
/// and the classifier training, per §5.2/§6.1 "we assume α = 1 for
/// simplicity").
pub fn gt_params() -> GroundTruthParams {
    GroundTruthParams::default()
}

/// LiBRA's 3-class classifier, trained once on the main dataset.
pub fn classifier() -> &'static LibraClassifier {
    CLASSIFIER.get_or_init(|| {
        let mut rng = rng_from_seed(SUITE_SEED ^ 0xC1A551F1E5);
        let data = main_dataset().to_ml_3class(&table(), &gt_params());
        LibraClassifier::train(&data, &mut rng)
    })
}
