//! Shared, lazily-built experiment context.
//!
//! Every experiment needs the generated datasets and the trained
//! classifier; building them takes about a second each in release mode,
//! so they are constructed once per process and shared.

use libra::LibraClassifier;
use libra_dataset::{
    generate, main_campaign_plan, testing_campaign_plan, CampaignConfig, CampaignDataset,
    GroundTruthParams,
};
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;
use std::sync::OnceLock;

/// Master seed of the whole experiment suite.
pub const SUITE_SEED: u64 = 0x11B2A;

/// Seed the suite classifier is trained from.
pub const CLASSIFIER_SEED: u64 = SUITE_SEED ^ 0xC1A5_51F1_E5;

static MAIN: OnceLock<CampaignDataset> = OnceLock::new();
static TESTING: OnceLock<CampaignDataset> = OnceLock::new();
static CLASSIFIER: OnceLock<LibraClassifier> = OnceLock::new();
static MODEL_SOURCE: OnceLock<String> = OnceLock::new();

/// The main (training) dataset — Table 1.
pub fn main_dataset() -> &'static CampaignDataset {
    MAIN.get_or_init(|| generate(&main_campaign_plan(), &CampaignConfig::default()))
}

/// The held-out testing dataset — Table 2.
pub fn testing_dataset() -> &'static CampaignDataset {
    TESTING.get_or_init(|| generate(&testing_campaign_plan(), &CampaignConfig::default()))
}

/// The X60 MCS table used throughout.
pub fn table() -> McsTable {
    McsTable::x60()
}

/// Ground-truth parameters with α = 1 (the labelling used for Tables 1–2
/// and the classifier training, per §5.2/§6.1 "we assume α = 1 for
/// simplicity").
pub fn gt_params() -> GroundTruthParams {
    GroundTruthParams::default()
}

/// Routes [`classifier`] to a frozen model artifact — a file path or a
/// registry `name[@version]` reference — instead of training in-process.
/// Must be called before the first `classifier()` use; later calls are
/// ignored (the suite classifier is built once per process).
pub fn set_model(reference: &str) {
    let _ = MODEL_SOURCE.set(reference.to_string());
}

fn model_reference() -> Option<String> {
    MODEL_SOURCE
        .get()
        .cloned()
        .or_else(|| std::env::var("LIBRA_MODEL").ok())
}

fn load_frozen(reference: &str) -> Result<LibraClassifier, libra_infer::Error> {
    let path = std::path::Path::new(reference);
    let artifact = if path.is_file() {
        libra_infer::ModelArtifact::read(path)?
    } else {
        let spec = libra_infer::ModelSpec::parse(reference)?;
        libra_infer::ModelRegistry::open_default().load(&spec)?.1
    };
    LibraClassifier::from_artifact(&artifact)
}

/// LiBRA's 3-class classifier: trained once on the main dataset, or —
/// when [`set_model`] / the `LIBRA_MODEL` environment variable names a
/// frozen artifact — loaded from the model store instead.
pub fn classifier() -> &'static LibraClassifier {
    CLASSIFIER.get_or_init(|| {
        if let Some(reference) = model_reference() {
            return load_frozen(&reference)
                .unwrap_or_else(|e| panic!("cannot load frozen model {reference:?}: {e}"));
        }
        let mut rng = rng_from_seed(CLASSIFIER_SEED);
        let data = main_dataset().to_ml_3class(&table(), &gt_params());
        LibraClassifier::train(&data, &mut rng)
    })
}

/// The suite classifier frozen as a registry-ready artifact, with
/// provenance stamped from the suite constants.
pub fn classifier_artifact() -> libra_infer::ModelArtifact {
    let rows = main_dataset().to_ml_3class(&table(), &gt_params()).len() as u64;
    classifier().to_artifact(
        "suite",
        CLASSIFIER_SEED,
        rows,
        "experiment-suite classifier (main campaign, 3-class)",
    )
}
