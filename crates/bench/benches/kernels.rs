//! Criterion micro-benchmarks of the computational kernels every
//! experiment leans on. Each group is named after the paper artifact it
//! underpins:
//!
//! * `raytrace`   — image-method path tracing (all experiments)
//! * `sweep`      — the 625-pair exhaustive SLS (dataset, Tables 1–2)
//! * `phy`        — error model + PDP/CSI extraction (Figs 4–9)
//! * `ml`         — forest training/prediction (§6.2, Table 3)
//! * `simulator`  — segment execution for all five policies (Figs 10–13)
//! * `vr`         — the VR playback model (Table 4)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use libra::sim::{run_policy_segment, ConfigData, LinkState, PolicyKind, SegmentData, SimConfig};
use libra::vr::{play, VrTrace};
use libra::RateSpan;
use libra_arrays::{BeamPattern, Codebook};
use libra_channel::{Environment, Point, Pose, Scene};
use libra_dataset::{Features, Instruments};
use libra_mac::sweep::exhaustive_sweep;
use libra_mac::{BaOverheadPreset, ProtocolParams};
use libra_ml::{Dataset, ForestConfig, RandomForest};
use libra_phy::metrics::PowerDelayProfile;
use libra_phy::{ErrorModel, McsTable};
use libra_util::rng::{rng_from_seed, standard_normal};

fn lobby_scene() -> Scene {
    let room = Environment::Lobby.room();
    Scene::new(
        room,
        Pose::new(Point::new(1.0, 7.0), 0.0),
        Pose::new(Point::new(11.0, 7.0), 180.0),
    )
}

fn bench_raytrace(c: &mut Criterion) {
    let scene = lobby_scene();
    c.bench_function("raytrace/lobby_paths", |b| b.iter(|| scene.rays()));
    let rays = scene.rays();
    let cb = Codebook::sibeam_25();
    c.bench_function("raytrace/beam_pair_response", |b| {
        b.iter(|| scene.response_with_rays(&rays, cb.beam(12), cb.beam(12)))
    });
}

fn bench_sweep(c: &mut Criterion) {
    let scene = lobby_scene();
    let rays = scene.rays();
    let cb = Codebook::sibeam_25();
    let mut rng = rng_from_seed(1);
    c.bench_function("sweep/exhaustive_625_pairs", |b| {
        b.iter(|| exhaustive_sweep(&scene, &rays, &cb, &cb, 0.5, &mut rng))
    });
}

fn bench_phy(c: &mut Criterion) {
    let scene = lobby_scene();
    let resp = scene.response(&BeamPattern::quasi_omni(), &BeamPattern::quasi_omni());
    let table = McsTable::x60();
    let model = ErrorModel::default();
    c.bench_function("phy/best_mcs", |b| b.iter(|| model.best_mcs(&table, &resp)));
    c.bench_function("phy/pdp_extraction", |b| {
        b.iter(|| PowerDelayProfile::from_response(&resp))
    });
    let pdp = PowerDelayProfile::from_response(&resp);
    c.bench_function("phy/csi_estimate_fft", |b| b.iter(|| pdp.csi_estimate()));
}

fn synth_dataset(n: usize) -> Dataset {
    let mut rng = rng_from_seed(2);
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let c = i % 2;
        features.push(vec![
            c as f64 * 8.0 + standard_normal(&mut rng) * 2.0,
            standard_normal(&mut rng) * 100.0,
            standard_normal(&mut rng),
            0.9 + standard_normal(&mut rng) * 0.05,
            0.8 + standard_normal(&mut rng) * 0.1,
            if c == 0 { 0.1 } else { 0.7 },
            (4 + i % 5) as f64,
        ]);
        labels.push(c);
    }
    Dataset::new(
        features,
        labels,
        2,
        libra_dataset::FEATURE_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

fn bench_ml(c: &mut Criterion) {
    let data = synth_dataset(700);
    c.bench_function("ml/forest_train_700x7", |b| {
        b.iter_batched(
            || rng_from_seed(3),
            |mut rng| {
                let mut rf = RandomForest::new(ForestConfig {
                    n_trees: 20,
                    ..Default::default()
                });
                rf.fit(&data, &mut rng);
                rf
            },
            BatchSize::SmallInput,
        )
    });
    let mut rf = RandomForest::new(ForestConfig::default());
    let mut rng = rng_from_seed(4);
    rf.fit(&data, &mut rng);
    let row = data.row(0).to_vec();
    c.bench_function("ml/forest_predict_one", |b| b.iter(|| rf.predict_one(&row)));
}

fn bench_simulator(c: &mut Criterion) {
    let seg = SegmentData {
        old: ConfigData {
            tput_mbps: vec![300.0, 850.0, 1400.0, 1950.0, 90.0, 0.0, 0.0, 0.0, 0.0].into(),
            cdr: vec![1.0, 1.0, 1.0, 0.97, 0.03, 0.0, 0.0, 0.0, 0.0].into(),
        },
        best: ConfigData {
            tput_mbps: vec![
                300.0, 850.0, 1400.0, 1950.0, 2500.0, 3000.0, 1500.0, 0.0, 0.0,
            ]
            .into(),
            cdr: vec![1.0, 1.0, 1.0, 1.0, 0.99, 0.95, 0.4, 0.0, 0.0].into(),
        },
        features: Features {
            snr_diff_db: 9.0,
            tof_diff_ns: 0.0,
            noise_diff_db: 0.2,
            pdp_similarity: 0.92,
            csi_similarity: 0.8,
            cdr: 0.03,
            initial_mcs: 6,
        },
        duration_ms: 1000.0,
    };
    let cfg = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
    let state = LinkState::at_mcs(6);
    c.bench_function("simulator/segment_1s_oracle_data", |b| {
        b.iter(|| run_policy_segment(&seg, PolicyKind::OracleData, None, state, &cfg))
    });
    c.bench_function("simulator/segment_1s_ba_first", |b| {
        b.iter(|| run_policy_segment(&seg, PolicyKind::BaFirst, None, state, &cfg))
    });
}

fn bench_timeline_measure(c: &mut Criterion) {
    let scene = lobby_scene();
    let instruments = Instruments::default();
    c.bench_function("timeline/expected_pair_measurement", |b| {
        b.iter(|| libra_dataset::measure::expected_pair_measurement(&scene, &instruments, (12, 12)))
    });
}

fn bench_vr(c: &mut Criterion) {
    let mut rng = rng_from_seed(5);
    let trace = VrTrace::synthetic_8k(30.0, 1.2, &mut rng);
    let spans: Vec<RateSpan> = (0..300)
        .map(|i| RateSpan {
            start_ms: i as f64 * 100.0,
            len_ms: 100.0,
            mbps: if i % 7 == 0 { 0.0 } else { 1800.0 },
        })
        .collect();
    c.bench_function("vr/play_30s_trace", |b| b.iter(|| play(&trace, &spans)));
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_raytrace, bench_sweep, bench_phy, bench_ml, bench_simulator,
              bench_timeline_measure, bench_vr
}
criterion_main!(kernels);
