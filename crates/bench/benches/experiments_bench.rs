//! Criterion benchmarks of the full experiment regenerators — one per
//! table/figure family of the paper. These measure the *end-to-end cost*
//! of reproducing each artifact (the `experiments` binary prints the
//! artifacts themselves).
//!
//! Datasets and classifiers are built once (shared `OnceLock` context),
//! so each bench isolates the per-artifact computation.

use criterion::{criterion_group, criterion_main, Criterion};
use libra_bench::{context, evaluation, motivation, study};
use libra_mac::{BaOverheadPreset, ProtocolParams};

fn bench_motivation(c: &mut Criterion) {
    c.bench_function("figs1-3/cots_static_10s", |b| {
        b.iter(|| {
            let cfg = libra_mac::CotsConfig {
                profile: libra_mac::DeviceProfile::talon_ap(),
                ba_enabled: true,
                fixed_sector: 0,
                duration_s: 10.0,
                seed: 1,
            };
            libra_mac::run_cots(&libra_mac::CotsScenario::Static { distance_m: 9.1 }, &cfg)
        })
    });
    let _ = motivation::fig1(1); // type-check linkage
}

fn bench_tables12(c: &mut Criterion) {
    // Force the one-time dataset generation outside the measurement.
    context::main_dataset();
    c.bench_function("tables1-2/summary_from_cached_dataset", |b| {
        b.iter(study::table1)
    });
}

fn bench_figs4_9(c: &mut Criterion) {
    context::main_dataset();
    c.bench_function("figs4-9/metric_cdfs_one_figure", |b| {
        b.iter(|| study::metric_cdfs(0))
    });
}

fn bench_table3(c: &mut Criterion) {
    context::classifier();
    c.bench_function("table3/importances", |b| b.iter(study::table3));
}

fn bench_figs10_11(c: &mut Criterion) {
    context::testing_dataset();
    context::classifier();
    let params = ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0);
    c.bench_function("figs10-11/one_cell_228_entries", |b| {
        b.iter(|| evaluation::single_impairment_cell(params, 400.0))
    });
}

fn bench_figs12_13(c: &mut Criterion) {
    context::classifier();
    let params = ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0);
    c.bench_function("figs12-13/one_timeline_cell", |b| {
        b.iter(|| evaluation::timeline_cell(libra::ScenarioType::Blockage, params, 2))
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_motivation, bench_tables12, bench_figs4_9, bench_table3,
              bench_figs10_11, bench_figs12_13
}
criterion_main!(experiments);
