//! Serving-path regressions for the model artifact store.
//!
//! Three contracts:
//! 1. The flattened engine is prediction-identical to the recursive
//!    forest on the **full §5 main-campaign dataset** — every row,
//!    bitwise-equal vote shares.
//! 2. Artifact bytes are a pure function of the training seed: training
//!    at 1 worker thread and at N threads freezes to **digest-equal**
//!    artifacts.
//! 3. An evaluation driven by a model reloaded from a frozen artifact
//!    reproduces the evaluation driven by the in-process model exactly.

use libra::sim::run_policy_segment;
use libra::{LibraClassifier, LinkState, PolicyKind, SegmentData, SimConfig};
use libra_bench::{context, serving};
use libra_dataset::{generate, main_campaign_plan, CampaignConfig, GroundTruthParams, Instruments};
use libra_infer::ModelArtifact;
use libra_mac::{BaOverheadPreset, ProtocolParams};
use libra_ml::Classifier;
use libra_phy::McsTable;
use libra_util::par::set_threads;
use libra_util::rng::rng_from_seed;

#[test]
fn flat_engine_is_prediction_identical_on_full_campaign() {
    let data = context::main_dataset().to_ml_3class(&context::table(), &context::gt_params());
    let recursive = serving::recursive_reference();
    let engine = context::classifier().engine();

    let rec = recursive.predict_view(&data.view());
    let mut flat = Vec::new();
    engine.predict_batch_into(&data.view(), &mut flat);
    assert_eq!(
        rec, flat,
        "class predictions diverged on the §5 campaign dataset"
    );

    // Vote shares, not just argmax, must be bitwise equal.
    for row in data.rows() {
        let rp = recursive.predict_proba_one(row);
        let fp = engine.predict_proba_one(row);
        for (a, b) in rp.iter().zip(fp.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "vote shares diverged");
        }
    }
}

/// A reduced campaign (the determinism-test slice) so training twice
/// stays test-sized.
fn small_3class() -> libra_ml::Dataset {
    let keep = [
        "lobby-back",
        "lobby-rot1",
        "lobby-blk0",
        "lobby-intf0",
        "lab-back",
        "conf-rot1",
    ];
    let plan: Vec<_> = main_campaign_plan()
        .into_iter()
        .filter(|s| keep.contains(&s.name.as_str()))
        .collect();
    assert_eq!(
        plan.len(),
        keep.len(),
        "campaign plan no longer contains the test scenarios"
    );
    let instruments = Instruments {
        trace_frames: 25,
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        seed: 0xD17E,
        instruments,
        repeats: 1,
    };
    generate(&plan, &cfg).to_ml_3class(&McsTable::x60(), &GroundTruthParams::default())
}

fn train_artifact(threads: usize) -> ModelArtifact {
    set_threads(threads);
    let data = small_3class();
    let mut rng = rng_from_seed(0x5EED);
    let clf = LibraClassifier::train(&data, &mut rng);
    set_threads(0);
    clf.to_artifact(
        "serving-test",
        0x5EED,
        data.len() as u64,
        "thread-invariance check",
    )
}

#[test]
fn artifacts_are_digest_equal_across_thread_counts() {
    let parallel_threads = std::env::var("LIBRA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);

    let seq = train_artifact(1);
    let par = train_artifact(parallel_threads);
    assert_eq!(
        seq.to_bytes().unwrap(),
        par.to_bytes().unwrap(),
        "artifact bytes differ between 1 and {parallel_threads} worker threads"
    );
    assert_eq!(seq.digest().unwrap(), par.digest().unwrap());
}

#[test]
fn frozen_artifact_reproduces_the_evaluation() {
    let keep = ["lobby-back", "lobby-blk0", "lobby-intf0"];
    let plan: Vec<_> = main_campaign_plan()
        .into_iter()
        .filter(|s| keep.contains(&s.name.as_str()))
        .collect();
    let instruments = Instruments {
        trace_frames: 25,
        ..Instruments::default()
    };
    let ds = generate(
        &plan,
        &CampaignConfig {
            seed: 0xD17E,
            instruments,
            repeats: 1,
        },
    );
    let data = ds.to_ml_3class(&McsTable::x60(), &GroundTruthParams::default());

    let mut rng = rng_from_seed(0xA57);
    let trained = LibraClassifier::train(&data, &mut rng);

    // Freeze to artifact bytes, thaw, and compare a §8-style evaluation.
    let artifact = trained.to_artifact("eval-repro", 0xA57, data.len() as u64, "");
    let bytes = artifact.to_bytes().expect("serialize");
    let thawed = LibraClassifier::from_artifact(&ModelArtifact::from_bytes(&bytes).expect("parse"))
        .expect("unpack");

    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
    for entry in &ds.entries {
        let seg = SegmentData::from_entry(entry, 400.0);
        let state = LinkState::at_mcs(entry.initial.best_mcs());
        for policy in [PolicyKind::Libra, PolicyKind::BaFirst, PolicyKind::RaFirst] {
            let a = run_policy_segment(&seg, policy, Some(&trained), state, &sim);
            let b = run_policy_segment(&seg, policy, Some(&thawed), state, &sim);
            assert_eq!(
                a.bytes.to_bits(),
                b.bytes.to_bits(),
                "frozen model changed the evaluation outcome for {entry_name} / {policy:?}",
                entry_name = entry.scenario
            );
        }
    }
}
