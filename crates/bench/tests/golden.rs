//! Golden-artifact smoke test: a Table 1-style summary of a reduced
//! campaign, compared byte-for-byte against a checked-in golden file —
//! and rendered at 1 and 4 worker threads to prove the stdout artifact
//! itself is thread-count invariant.
//!
//! Blessing: if `tests/golden/table1_small.txt` does not exist yet, the
//! test writes the current rendering there and passes; commit the file to
//! pin the artifact. Any later drift (a change to the channel model, the
//! labelling, the table renderer, …) then fails the comparison until the
//! golden is deliberately re-blessed by deleting it and re-running.

use libra_bench::study::render_summary;
use libra_dataset::{generate, main_campaign_plan, CampaignConfig, Instruments};
use libra_util::par::set_threads;

const GOLDEN_PATH: &str = "tests/golden/table1_small.txt";

fn render_small_table1() -> String {
    let keep = ["lobby-back", "lobby-rot1", "lobby-blk0", "lobby-intf0"];
    let plan: Vec<_> = main_campaign_plan()
        .into_iter()
        .filter(|s| keep.contains(&s.name.as_str()))
        .collect();
    assert_eq!(
        plan.len(),
        keep.len(),
        "campaign plan no longer contains the test scenarios"
    );
    let instruments = Instruments {
        trace_frames: 25,
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        seed: 0xD17E,
        instruments,
        repeats: 1,
    };
    let ds = generate(&plan, &cfg);
    render_summary("Table 1 (reduced golden campaign)", &ds)
}

#[test]
fn table1_smoke_matches_golden() {
    set_threads(1);
    let sequential = render_small_table1();
    set_threads(4);
    let parallel = render_small_table1();
    set_threads(0);
    assert_eq!(
        sequential, parallel,
        "summary text differs between 1 and 4 threads"
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    match std::fs::read_to_string(&path) {
        Ok(golden) => assert_eq!(
            sequential, golden,
            "rendered summary drifted from the golden file {GOLDEN_PATH}; \
             delete it and re-run to re-bless deliberately"
        ),
        Err(_) => {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
            std::fs::write(&path, &sequential).expect("write golden file");
            eprintln!("blessed new golden file {GOLDEN_PATH}; commit it to pin the artifact");
        }
    }
}
