//! Tier-1 determinism regression for the parallel execution layer.
//!
//! The suite's contract is that every artifact is *bitwise identical* at
//! any worker-thread count. This test exercises the three layers that
//! parallelised — campaign generation, classifier (forest) training, and
//! repeated cross-validation — on a reduced but structurally diverse
//! slice of the main campaign plan, and compares serialized digests
//! between a forced-sequential run (`--threads 1` equivalent) and a
//! multi-threaded run.
//!
//! The parallel thread count honours `LIBRA_THREADS` when it asks for 2+
//! workers (CI pins it), and defaults to 4 otherwise.

use libra::LibraClassifier;
use libra_dataset::{generate, main_campaign_plan, CampaignConfig, GroundTruthParams, Instruments};
use libra_phy::McsTable;
use libra_util::binser;
use libra_util::par::set_threads;
use libra_util::rng::rng_from_seed;

/// FNV-1a over a serialized artifact; collisions would need adversarial
/// inputs, far beyond what a regression digest has to resist.
fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generates the reduced campaign, trains the 3-class classifier, and
/// runs a small repeated CV, all at the given thread count; returns the
/// three serialized digests.
fn artifacts(threads: usize) -> (u64, u64, u64) {
    set_threads(threads);

    // One scenario of each structural kind — displacement, rotation,
    // blockage, interference — across three environments, so every label
    // class shows up while the run stays test-sized.
    let keep = [
        "lobby-back",
        "lobby-rot1",
        "lobby-blk0",
        "lobby-intf0",
        "lab-back",
        "conf-rot1",
    ];
    let plan: Vec<_> = main_campaign_plan()
        .into_iter()
        .filter(|s| keep.contains(&s.name.as_str()))
        .collect();
    assert_eq!(
        plan.len(),
        keep.len(),
        "campaign plan no longer contains the test scenarios"
    );

    let instruments = Instruments {
        trace_frames: 25,
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        seed: 0xD17E,
        instruments,
        repeats: 1,
    };
    let ds = generate(&plan, &cfg);
    let ds_digest = digest(&binser::to_bytes(&ds).expect("serialize dataset"));

    let table = McsTable::x60();
    let data = ds.to_ml_3class(&table, &GroundTruthParams::default());
    let mut rng = rng_from_seed(0x5EED);
    let clf = LibraClassifier::train(&data, &mut rng);
    let clf_digest = digest(&binser::to_bytes(&clf).expect("serialize classifier"));

    let cv = libra_ml::cross_validate(libra_ml::ModelKind::RandomForest, &data, 3, 2, 0xCF);
    let cv_digest = digest(&binser::to_bytes(&cv).expect("serialize cv result"));

    set_threads(0);
    (ds_digest, clf_digest, cv_digest)
}

#[test]
fn parallel_artifacts_match_sequential_bitwise() {
    let parallel_threads = std::env::var("LIBRA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);

    let (ds1, clf1, cv1) = artifacts(1);
    let (dsn, clfn, cvn) = artifacts(parallel_threads);

    assert_eq!(
        ds1, dsn,
        "campaign dataset differs at {parallel_threads} threads"
    );
    assert_eq!(
        clf1, clfn,
        "trained classifier differs at {parallel_threads} threads"
    );
    assert_eq!(
        cv1, cvn,
        "cross-validation result differs at {parallel_threads} threads"
    );
}
