//! Columnar-data-plane regressions: the refactor from row-major
//! `Vec<Vec<f64>>` datasets to one contiguous `FeatureFrame` must be
//! invisible to every number the suite reports.
//!
//! Three contracts:
//! 1. Every columnar trainer is **bitwise identical** to its frozen
//!    row-oriented reference (the pre-refactor implementations kept
//!    verbatim in `libra_bench::trainbench`): same predictions, same
//!    Gini importances, same GBDT booster structure, from the same seed.
//! 2. CV accuracies and RF importances on the reduced campaign are
//!    bitwise equal at 1 and N worker threads.
//! 3. Those numbers match a checked-in golden file. Blessing: if
//!    `tests/golden/columnar_cv.txt` does not exist yet, the test writes
//!    the current rendering and passes; commit the file to pin the
//!    pre-refactor numbers. Delete it to re-bless deliberately.

use libra_bench::trainbench::{assert_columnar_matches_rows, TRAIN_SEED};
use libra_dataset::{generate, main_campaign_plan, CampaignConfig, GroundTruthParams, Instruments};
use libra_ml::{cross_validate, ForestConfig, ModelKind, RandomForest};
use libra_phy::McsTable;
use libra_util::par::set_threads;
use libra_util::rng::rng_from_seed;

const GOLDEN_PATH: &str = "tests/golden/columnar_cv.txt";

/// The determinism-slice campaign: small enough to train every model
/// twice, rich enough to exercise all three classes.
fn small_3class() -> libra_ml::Dataset {
    let keep = [
        "lobby-back",
        "lobby-rot1",
        "lobby-blk0",
        "lobby-intf0",
        "lab-back",
        "conf-rot1",
    ];
    let plan: Vec<_> = main_campaign_plan()
        .into_iter()
        .filter(|s| keep.contains(&s.name.as_str()))
        .collect();
    assert_eq!(
        plan.len(),
        keep.len(),
        "campaign plan no longer contains the test scenarios"
    );
    let instruments = Instruments {
        trace_frames: 25,
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        seed: 0xD17E,
        instruments,
        repeats: 1,
    };
    generate(&plan, &cfg).to_ml_3class(&McsTable::x60(), &GroundTruthParams::default())
}

/// CV accuracies for the paper's four models plus the RF importances,
/// rendered as hex f64 bit patterns — any arithmetic drift flips bits.
fn render_cv_and_importances(data: &libra_ml::Dataset) -> String {
    let mut out = String::new();
    for kind in ModelKind::ALL {
        let cv = cross_validate(kind, data, 5, 2, 0xCF);
        out.push_str(&format!(
            "{} acc {:016x} f1 {:016x}\n",
            kind.name(),
            cv.accuracy.to_bits(),
            cv.weighted_f1.to_bits()
        ));
    }
    let mut rf = RandomForest::new(ForestConfig::default());
    let mut rng = rng_from_seed(TRAIN_SEED);
    rf.fit(data, &mut rng);
    for (i, imp) in rf.feature_importances().iter().enumerate() {
        out.push_str(&format!("rf_importance[{i}] {:016x}\n", imp.to_bits()));
    }
    out
}

#[test]
fn columnar_trainers_match_frozen_row_references() {
    let data = small_3class();
    assert_columnar_matches_rows(&data, TRAIN_SEED);
}

#[test]
fn cv_and_importances_are_thread_invariant_and_match_golden() {
    let data = small_3class();
    set_threads(1);
    let sequential = render_cv_and_importances(&data);
    set_threads(4);
    let parallel = render_cv_and_importances(&data);
    set_threads(0);
    assert_eq!(
        sequential, parallel,
        "CV accuracies or RF importances differ between 1 and 4 threads"
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    match std::fs::read_to_string(&path) {
        Ok(golden) => assert_eq!(
            sequential, golden,
            "CV/importance bits drifted from the golden file {GOLDEN_PATH}; \
             delete it and re-run to re-bless deliberately"
        ),
        Err(_) => {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
            std::fs::write(&path, &sequential).expect("write golden file");
            eprintln!("blessed new golden file {GOLDEN_PATH}; commit it to pin the numbers");
        }
    }
}
