//! Telemetry-spine regressions.
//!
//! Two contracts:
//! 1. Counters and value histograms are **bitwise identical** at any
//!    worker-thread count: `par_map` worker frames merge back in task
//!    index order, and wall-clock histograms stay out of the
//!    determinism digest.
//! 2. With tracing off, the serving path never touches the collector —
//!    the obs allocation ledger does not move across a prediction pass.

use libra::LibraClassifier;
use libra_dataset::{generate, main_campaign_plan, CampaignConfig, GroundTruthParams, Instruments};
use libra_ml::Classifier;
use libra_obs as obs;
use libra_phy::McsTable;
use libra_util::par::set_threads;
use libra_util::rng::rng_from_seed;
use std::sync::Mutex;

/// The collector (enable flag, scope depth, allocation ledger) is
/// process-global; serialize the tests that poke it.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// A reduced campaign (the determinism-test slice) so training twice
/// stays test-sized.
fn small_3class() -> libra_ml::Dataset {
    let keep = [
        "lobby-back",
        "lobby-rot1",
        "lobby-blk0",
        "lab-back",
        "conf-rot1",
    ];
    let plan: Vec<_> = main_campaign_plan()
        .into_iter()
        .filter(|s| keep.contains(&s.name.as_str()))
        .collect();
    assert_eq!(
        plan.len(),
        keep.len(),
        "campaign plan no longer contains the test scenarios"
    );
    let instruments = Instruments {
        trace_frames: 25,
        ..Instruments::default()
    };
    let cfg = CampaignConfig {
        seed: 0xD17E,
        instruments,
        repeats: 1,
    };
    generate(&plan, &cfg).to_ml_3class(&McsTable::x60(), &GroundTruthParams::default())
}

/// Trains and serves under a collection scope at the given worker
/// count, returning the scope report.
fn traced_workload(threads: usize) -> obs::Report {
    set_threads(threads);
    let data = small_3class();
    let ((), report) = obs::with_scope(|| {
        let mut rng = rng_from_seed(0x5EED);
        let clf = LibraClassifier::train(&data, &mut rng);
        let mut out = Vec::new();
        clf.predict_batch_into(&data.view(), &mut out);
        assert_eq!(out.len(), data.len());
    });
    set_threads(0);
    report
}

#[test]
fn counters_are_identical_across_thread_counts() {
    let _guard = TEST_LOCK.lock().unwrap();
    let parallel_threads = std::env::var("LIBRA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);

    let seq = traced_workload(1);
    let par = traced_workload(parallel_threads);

    // The workload actually exercised the instrumented paths: fit spans
    // (wall histograms) fired, and the structural counters moved.
    let fits = seq.hist("ml.tree.fit").expect("no tree-fit spans recorded");
    assert!(fits.count > 0, "no tree fits recorded");
    assert!(seq.counter("ml.tree.nodes") > 0, "no tree nodes recorded");
    assert_eq!(seq.counter("infer.serve.batches"), 1);

    // Span drops bump a same-named deterministic counter, so the fit
    // spans are comparable across thread counts too.
    for name in [
        "ml.tree.fit",
        "ml.forest.fit",
        "ml.tree.nodes",
        "ml.tree.split_scans",
        "infer.serve.batches",
    ] {
        assert_eq!(
            seq.counter(name),
            par.counter(name),
            "counter {name} differs between 1 and {parallel_threads} worker threads"
        );
    }
    assert_eq!(
        seq.determinism_digest(),
        par.determinism_digest(),
        "determinism digest differs between 1 and {parallel_threads} worker threads"
    );
}

#[test]
fn disabled_serving_path_touches_no_collector() {
    let _guard = TEST_LOCK.lock().unwrap();
    set_threads(1);
    let data = small_3class();
    let mut rng = rng_from_seed(0x5EED);
    let clf = LibraClassifier::train(&data, &mut rng);
    set_threads(0);

    let view = data.view();
    let mut out = Vec::new();
    clf.predict_batch_into(&view, &mut out); // warm-up (output capacity)
    assert!(!obs::enabled(), "tracing unexpectedly on in this process");

    let before = obs::alloc_count();
    for _ in 0..3 {
        clf.predict_batch_into(&view, &mut out);
    }
    assert_eq!(
        obs::alloc_count(),
        before,
        "serving path touched the collector while tracing was off"
    );
    assert_eq!(out.len(), data.len());
}
