//! Dataset entries and the labelled campaign dataset.
//!
//! A [`DatasetEntry`] keeps the *raw measurements* of its (initial, new)
//! state pair rather than a baked label: the ground truth of §5.2 depends
//! on α and the protocol overheads, so labels are derived on demand via
//! [`CampaignDataset::label`]. The same raw entries also feed the
//! trace-based simulation of §8 (a policy replaying an entry needs the
//! full per-MCS throughput vectors for both beam pairs).

use crate::features::{Features, FEATURE_NAMES};
use crate::ground_truth::{ground_truth, Action, GroundTruth, GroundTruthParams};
use crate::measure::PairMeasurement;
use libra_channel::Environment;
use libra_phy::McsTable;
use libra_util::csvio::CsvWriter;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The three link-impairment categories of the campaign (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Impairment {
    /// Linear and/or angular displacement.
    Displacement,
    /// Human blockage.
    Blockage,
    /// Hidden-terminal interference.
    Interference,
}

impl Impairment {
    /// All three, in Table 1 order.
    pub const ALL: [Impairment; 3] = [
        Impairment::Displacement,
        Impairment::Blockage,
        Impairment::Interference,
    ];

    /// Row label used in Tables 1–2.
    pub fn name(self) -> &'static str {
        match self {
            Impairment::Displacement => "Displacement",
            Impairment::Blockage => "Blockage",
            Impairment::Interference => "Interference",
        }
    }
}

/// One labelled-on-demand dataset entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Environment the entry was collected in.
    pub env: Environment,
    /// Impairment category.
    pub impairment: Impairment,
    /// Scenario name (provenance).
    pub scenario: String,
    /// Measurement-position key (for the positions columns).
    pub position_key: String,
    /// Extracted ML features.
    pub features: Features,
    /// Initial-state measurement (initial pair).
    pub initial: PairMeasurement,
    /// New-state measurement with the initial pair (RA option).
    pub new_old_pair: PairMeasurement,
    /// New-state measurement with the new best pair (BA option).
    pub new_best_pair: PairMeasurement,
}

impl DatasetEntry {
    /// Ground truth under the given parameters.
    pub fn ground_truth(&self, table: &McsTable, params: &GroundTruthParams) -> GroundTruth {
        ground_truth(
            table,
            &self.initial,
            &self.new_old_pair,
            &self.new_best_pair,
            params,
        )
    }
}

/// Per-impairment summary row (the shape of Tables 1–2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Impairment name (or "Overall").
    pub name: String,
    /// Entry count.
    pub total: usize,
    /// Entries labelled BA.
    pub ba: usize,
    /// Entries labelled RA.
    pub ra: usize,
    /// Distinct measurement positions.
    pub positions: usize,
}

/// The full output of a measurement campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignDataset {
    /// Impairment entries (labelled BA/RA on demand).
    pub entries: Vec<DatasetEntry>,
    /// No-adaptation twins (for the 3-class model of §7).
    pub na_entries: Vec<DatasetEntry>,
}

/// Feature-name column schema shared by every exported ML frame.
fn feature_schema() -> Vec<String> {
    FEATURE_NAMES.iter().map(|s| s.to_string()).collect()
}

impl CampaignDataset {
    /// Persists the full dataset (raw measurements included) to a binary
    /// file, so expensive campaigns can be generated once and reloaded.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), libra_util::binser::Error> {
        libra_util::binser::write_file(path, self)
    }

    /// Loads a dataset previously written by [`CampaignDataset::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, libra_util::binser::Error> {
        libra_util::binser::read_file(path)
    }

    /// Labels every impairment entry.
    pub fn label(&self, table: &McsTable, params: &GroundTruthParams) -> Vec<GroundTruth> {
        self.entries
            .iter()
            .map(|e| e.ground_truth(table, params))
            .collect()
    }

    /// Entries of one impairment (with indices into `entries`).
    pub fn by_impairment(&self, kind: Impairment) -> Vec<&DatasetEntry> {
        self.entries
            .iter()
            .filter(|e| e.impairment == kind)
            .collect()
    }

    /// The Table 1 / Table 2 summary: per impairment and overall.
    pub fn summary(&self, table: &McsTable, params: &GroundTruthParams) -> Vec<SummaryRow> {
        let labels = self.label(table, params);
        let mut rows = Vec::new();
        for kind in Impairment::ALL {
            let mut total = 0;
            let mut ba = 0;
            let mut positions: HashSet<&str> = HashSet::new();
            for (e, gt) in self.entries.iter().zip(&labels) {
                if e.impairment == kind {
                    total += 1;
                    if gt.label == Action::Ba {
                        ba += 1;
                    }
                    positions.insert(e.position_key.as_str());
                }
            }
            rows.push(SummaryRow {
                name: kind.name().to_string(),
                total,
                ba,
                ra: total - ba,
                positions: positions.len(),
            });
        }
        let all_positions: HashSet<&str> = self
            .entries
            .iter()
            .map(|e| e.position_key.as_str())
            .collect();
        let ba_total: usize = rows.iter().map(|r| r.ba).sum();
        let total: usize = rows.iter().map(|r| r.total).sum();
        rows.push(SummaryRow {
            name: "Overall".to_string(),
            total,
            ba: ba_total,
            ra: total - ba_total,
            positions: all_positions.len(),
        });
        rows
    }

    /// The 2-class ML dataset (BA = 0, RA = 1) under the given ground
    /// truth parameters. Rows are appended straight into the columnar
    /// [`libra_ml::Dataset`] frame — no intermediate `Vec<Vec<f64>>`.
    pub fn to_ml(&self, table: &McsTable, params: &GroundTruthParams) -> libra_ml::Dataset {
        let labels = self.label(table, params);
        let mut frame = libra_ml::Dataset::with_schema(2, feature_schema());
        for (e, gt) in self.entries.iter().zip(&labels) {
            frame.push_row(&e.features.to_row(), gt.label.class_index());
        }
        frame
    }

    /// Restricted 2-class dataset for one impairment type (the
    /// per-impairment CDFs of Figs 4–9).
    pub fn to_ml_impairment(
        &self,
        kind: Impairment,
        table: &McsTable,
        params: &GroundTruthParams,
    ) -> libra_ml::Dataset {
        let labels = self.label(table, params);
        let mut frame = libra_ml::Dataset::with_schema(2, feature_schema());
        for (e, gt) in self.entries.iter().zip(&labels) {
            if e.impairment == kind {
                frame.push_row(&e.features.to_row(), gt.label.class_index());
            }
        }
        frame
    }

    /// The 3-class ML dataset (BA = 0, RA = 1, NA = 2): impairment
    /// entries plus the no-adaptation twins (§7).
    pub fn to_ml_3class(&self, table: &McsTable, params: &GroundTruthParams) -> libra_ml::Dataset {
        let labels = self.label(table, params);
        let mut frame = libra_ml::Dataset::with_schema(3, feature_schema());
        for (e, gt) in self.entries.iter().zip(&labels) {
            frame.push_row(&e.features.to_row(), gt.label.class_index());
        }
        for e in &self.na_entries {
            frame.push_row(&e.features.to_row(), 2);
        }
        frame
    }

    /// Exports the labelled feature table as CSV (one row per entry).
    pub fn to_csv(&self, table: &McsTable, params: &GroundTruthParams) -> String {
        let labels = self.label(table, params);
        let mut w = CsvWriter::new();
        let mut header: Vec<String> = vec!["env".into(), "impairment".into(), "position".into()];
        header.extend(FEATURE_NAMES.iter().map(|s| s.to_string()));
        header.extend(
            [
                "label",
                "th_ra_mbps",
                "th_ba_mbps",
                "delay_ra_ms",
                "delay_ba_ms",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        w.row(header);
        for (e, gt) in self.entries.iter().zip(&labels) {
            let mut row: Vec<String> = vec![
                e.env.name().to_string(),
                e.impairment.name().to_string(),
                e.position_key.clone(),
            ];
            row.extend(e.features.to_row().iter().map(|v| format!("{v:.4}")));
            row.push(match gt.label {
                Action::Ba => "BA".to_string(),
                Action::Ra => "RA".to_string(),
            });
            row.push(format!("{:.1}", gt.th_ra_mbps));
            row.push(format!("{:.1}", gt.th_ba_mbps));
            row.push(format!("{:.2}", gt.delay_ra_ms));
            row.push(format!("{:.2}", gt.delay_ba_ms));
            w.row(row);
        }
        w.as_str().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Features;
    use libra_phy::metrics::{PowerDelayProfile, PDP_BINS};

    fn meas(tput: Vec<f64>, cdr: Vec<f64>) -> PairMeasurement {
        PairMeasurement {
            pair: (12, 12),
            snr_db: 20.0,
            noise_dbm: -74.0,
            tof_ns: 30.0,
            pdp: PowerDelayProfile::from_bins(vec![1e-6; PDP_BINS]),
            tput_mbps: tput.into(),
            cdr: cdr.into(),
        }
    }

    fn entry(kind: Impairment, ra_good: bool, pos: &str) -> DatasetEntry {
        let initial = meas(
            vec![
                300.0, 850.0, 1400.0, 1950.0, 2500.0, 3050.0, 3400.0, 2000.0, 100.0,
            ],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.94, 0.48, 0.02],
        );
        let (old_pair, best_pair) = if ra_good {
            (
                meas(
                    vec![
                        300.0, 850.0, 1400.0, 1950.0, 2400.0, 2800.0, 1000.0, 0.0, 0.0,
                    ],
                    vec![1.0, 1.0, 1.0, 1.0, 0.96, 0.92, 0.3, 0.0, 0.0],
                ),
                meas(
                    vec![300.0, 850.0, 1300.0, 1700.0, 1100.0, 300.0, 0.0, 0.0, 0.0],
                    vec![1.0, 1.0, 0.93, 0.87, 0.44, 0.1, 0.0, 0.0, 0.0],
                ),
            )
        } else {
            (
                meas(
                    vec![50.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                    vec![0.17, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                ),
                meas(
                    vec![300.0, 850.0, 1400.0, 1900.0, 1500.0, 200.0, 0.0, 0.0, 0.0],
                    vec![1.0, 1.0, 1.0, 0.97, 0.6, 0.07, 0.0, 0.0, 0.0],
                ),
            )
        };
        let features = Features::extract(&initial, &old_pair);
        DatasetEntry {
            env: Environment::Lobby,
            impairment: kind,
            scenario: "test".into(),
            position_key: pos.into(),
            features,
            initial,
            new_old_pair: old_pair,
            new_best_pair: best_pair,
        }
    }

    fn dataset() -> CampaignDataset {
        CampaignDataset {
            entries: vec![
                entry(Impairment::Displacement, true, "p0"),
                entry(Impairment::Displacement, false, "p1"),
                entry(Impairment::Blockage, false, "p2"),
                entry(Impairment::Interference, true, "p0"),
            ],
            na_entries: vec![entry(Impairment::Displacement, true, "p0")],
        }
    }

    #[test]
    fn summary_counts_and_positions() {
        let d = dataset();
        let rows = d.summary(&McsTable::x60(), &GroundTruthParams::default());
        assert_eq!(rows.len(), 4);
        let overall = &rows[3];
        assert_eq!(overall.total, 4);
        assert_eq!(overall.ba + overall.ra, 4);
        assert_eq!(overall.positions, 3); // p0 shared by two entries
    }

    #[test]
    fn labels_match_construction() {
        let d = dataset();
        let labels = d.label(&McsTable::x60(), &GroundTruthParams::default());
        assert_eq!(labels[0].label, Action::Ra);
        assert_eq!(labels[1].label, Action::Ba);
        assert_eq!(labels[2].label, Action::Ba);
    }

    #[test]
    fn to_ml_shapes() {
        let d = dataset();
        let ml = d.to_ml(&McsTable::x60(), &GroundTruthParams::default());
        assert_eq!(ml.len(), 4);
        assert_eq!(ml.n_features(), 7);
        assert_eq!(ml.n_classes, 2);
        let ml3 = d.to_ml_3class(&McsTable::x60(), &GroundTruthParams::default());
        assert_eq!(ml3.len(), 5);
        assert_eq!(ml3.n_classes, 3);
        assert_eq!(ml3.labels[4], 2);
    }

    #[test]
    fn to_ml_impairment_filters() {
        let d = dataset();
        let ml = d.to_ml_impairment(
            Impairment::Displacement,
            &McsTable::x60(),
            &GroundTruthParams::default(),
        );
        assert_eq!(ml.len(), 2);
    }

    #[test]
    fn save_load_roundtrip() {
        let d = dataset();
        let dir = std::env::temp_dir().join("libra-ds-test");
        let path = dir.join("campaign.bin");
        d.save(&path).expect("save");
        let back = CampaignDataset::load(&path).expect("load");
        assert_eq!(back.entries.len(), d.entries.len());
        assert_eq!(back.na_entries.len(), d.na_entries.len());
        for (a, b) in d.entries.iter().zip(&back.entries) {
            assert_eq!(a.features, b.features);
            assert_eq!(a.new_best_pair.tput_mbps, b.new_best_pair.tput_mbps);
            assert_eq!(a.env, b.env);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let d = dataset();
        let csv = d.to_csv(&McsTable::x60(), &GroundTruthParams::default());
        let rows = libra_util::csvio::parse_csv(&csv);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], "env");
        assert!(rows[1].iter().any(|c| c == "RA" || c == "BA"));
    }
}
