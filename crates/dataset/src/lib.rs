//! # libra-dataset
//!
//! The measurement-campaign emulation: everything the paper's §4–5
//! dataset pipeline does, over the simulated X60 substrate.
//!
//! * [`measure`] — the per-state collection procedure (exhaustive SLS →
//!   best pair → 1 s traces for all 9 MCSs).
//! * [`features`] — the seven PHY-layer features of §6.1 / Table 3.
//! * [`ground_truth`] — the §5.2 labelling rules: Th(RA), Th(BA),
//!   working-MCS thresholds, recovery delays, and the utility U(α).
//! * [`campaign`] — scenario plans per environment (displacement /
//!   blockage / interference; main + held-out buildings) and the
//!   generator.
//! * [`entry`] — labelled-on-demand dataset entries, Table 1/2
//!   summaries, and conversions to `libra_ml::Dataset` (2- and 3-class).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod entry;
pub mod features;
pub mod ground_truth;
pub mod measure;

pub use campaign::{
    generate, main_campaign_plan, testing_campaign_plan, CampaignConfig, NewStateSpec, ScenarioSpec,
};
pub use entry::{CampaignDataset, DatasetEntry, Impairment, SummaryRow};
pub use features::{Features, FEATURE_NAMES, N_FEATURES, TOF_INF_SENTINEL};
pub use ground_truth::{ground_truth, Action, Action3, GroundTruth, GroundTruthParams};
pub use measure::{measure_pair, measure_state, Instruments, PairMeasurement, StateMeasurement};
