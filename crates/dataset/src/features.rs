//! Feature extraction (paper §6.1): the seven PHY-layer metrics fed to
//! the ML models, in the order of Table 3.
//!
//! | # | feature | definition |
//! |---|---|---|
//! | 0 | SNR difference | `SNR(initial) − SNR(new)`, dB (positive = drop) |
//! | 1 | ToF difference | `ToF(initial) − ToF(new)`, ns; the sentinel `TOF_INF_SENTINEL` when either end is unmeasurable ("X60 reports the ToF as infinity in cases of extremely weak signal") |
//! | 2 | Noise level difference | `Noise(new) − Noise(initial)`, dB (positive = noisier) |
//! | 3 | PDP similarity | Pearson correlation of the two PDPs |
//! | 4 | CSI similarity | Pearson correlation of the two FFT-of-PDP estimates |
//! | 5 | CDR | mean CDR at the new state, initial pair, initial MCS |
//! | 6 | Initial MCS | best MCS at the initial state |

use crate::measure::PairMeasurement;
use serde::{Deserialize, Serialize};

/// Number of features.
pub const N_FEATURES: usize = 7;

/// Sentinel replacing an infinite ToF difference (trees split around it;
/// standardization keeps it finite for SVM/DNN).
pub const TOF_INF_SENTINEL: f64 = 1_000.0;

/// Feature names in Table 3 order.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "SNR",
    "ToF",
    "Noise Level",
    "PDP",
    "CSI",
    "CDR",
    "Initial MCS",
];

/// The feature vector of one dataset entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Features {
    /// SNR drop from initial to new state, dB.
    pub snr_diff_db: f64,
    /// ToF difference (initial − new), ns, or `TOF_INF_SENTINEL`.
    pub tof_diff_ns: f64,
    /// Noise level rise from initial to new state, dB.
    pub noise_diff_db: f64,
    /// PDP Pearson similarity.
    pub pdp_similarity: f64,
    /// CSI (FFT-of-PDP) Pearson similarity.
    pub csi_similarity: f64,
    /// CDR at new state with the initial pair and MCS.
    pub cdr: f64,
    /// Best MCS at the initial state.
    pub initial_mcs: usize,
}

impl Features {
    /// The "nothing changed" observation: zero deltas, unit
    /// similarities, perfect delivery — what a healthy static link
    /// reports. Used to pre-fill observation-history buffers.
    pub fn no_change(initial_mcs: usize) -> Self {
        Self {
            snr_diff_db: 0.0,
            tof_diff_ns: 0.0,
            noise_diff_db: 0.0,
            pdp_similarity: 1.0,
            csi_similarity: 1.0,
            cdr: 1.0,
            initial_mcs,
        }
    }

    /// Extracts the features from the two measurements sharing the
    /// initial beam pair.
    pub fn extract(initial: &PairMeasurement, new_old_pair: &PairMeasurement) -> Self {
        let init_mcs = initial.best_mcs();
        let tof_diff = if initial.tof_ns.is_finite() && new_old_pair.tof_ns.is_finite() {
            initial.tof_ns - new_old_pair.tof_ns
        } else {
            TOF_INF_SENTINEL
        };
        let pdp_sim = sanitize_similarity(initial.pdp.similarity(&new_old_pair.pdp));
        let csi_sim = sanitize_similarity(initial.pdp.csi_similarity(&new_old_pair.pdp));
        Self {
            snr_diff_db: initial.snr_db - new_old_pair.snr_db,
            tof_diff_ns: tof_diff.clamp(-TOF_INF_SENTINEL, TOF_INF_SENTINEL),
            noise_diff_db: new_old_pair.noise_dbm - initial.noise_dbm,
            pdp_similarity: pdp_sim,
            csi_similarity: csi_sim,
            cdr: new_old_pair.cdr[init_mcs],
            initial_mcs: init_mcs,
        }
    }

    /// The row an ML model consumes (Table 3 order).
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            self.snr_diff_db,
            self.tof_diff_ns,
            self.noise_diff_db,
            self.pdp_similarity,
            self.csi_similarity,
            self.cdr,
            self.initial_mcs as f64,
        ]
    }
}

/// A Pearson similarity of a degenerate (e.g. all-zero) PDP is NaN;
/// treat it as zero similarity ("completely different").
fn sanitize_similarity(s: f64) -> f64 {
    if s.is_nan() {
        0.0
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_phy::metrics::{PowerDelayProfile, PDP_BINS};

    fn meas(snr: f64, noise: f64, tof: f64, peak_bin: usize) -> PairMeasurement {
        let mut bins = vec![1e-9; PDP_BINS];
        bins[peak_bin] = 1e-3;
        bins[peak_bin + 5] = 2e-4;
        PairMeasurement {
            pair: (12, 12),
            snr_db: snr,
            noise_dbm: noise,
            tof_ns: tof,
            pdp: PowerDelayProfile::from_bins(bins),
            tput_mbps: vec![
                300.0, 800.0, 1400.0, 1900.0, 2400.0, 2900.0, 3400.0, 2000.0, 100.0,
            ]
            .into(),
            cdr: vec![1.0, 1.0, 1.0, 1.0, 0.98, 0.95, 0.94, 0.45, 0.02].into(),
        }
    }

    #[test]
    fn diffs_have_expected_signs() {
        let init = meas(25.0, -74.0, 30.0, 0);
        let new = meas(15.0, -70.0, 36.0, 0);
        let f = Features::extract(&init, &new);
        assert!((f.snr_diff_db - 10.0).abs() < 1e-9, "drop positive");
        assert!((f.noise_diff_db - 4.0).abs() < 1e-9, "rise positive");
        assert!(
            (f.tof_diff_ns + 6.0).abs() < 1e-9,
            "backward motion negative"
        );
        assert_eq!(f.initial_mcs, 6);
        assert!((f.cdr - 0.94).abs() < 1e-9);
    }

    #[test]
    fn identical_states_have_unit_similarity() {
        let init = meas(25.0, -74.0, 30.0, 0);
        let f = Features::extract(&init, &init.clone());
        assert!((f.pdp_similarity - 1.0).abs() < 1e-9);
        assert!((f.csi_similarity - 1.0).abs() < 1e-9);
        assert_eq!(f.snr_diff_db, 0.0);
    }

    #[test]
    fn infinite_tof_maps_to_sentinel() {
        let init = meas(25.0, -74.0, 30.0, 0);
        let new = meas(-2.0, -74.0, f64::INFINITY, 3);
        let f = Features::extract(&init, &new);
        assert_eq!(f.tof_diff_ns, TOF_INF_SENTINEL);
    }

    #[test]
    fn row_matches_names() {
        let init = meas(25.0, -74.0, 30.0, 0);
        let f = Features::extract(&init, &init.clone());
        let row = f.to_row();
        assert_eq!(row.len(), N_FEATURES);
        assert_eq!(row.len(), FEATURE_NAMES.len());
        assert_eq!(row[6], 6.0);
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_multipath_lowers_similarity() {
        let init = meas(25.0, -74.0, 30.0, 0);
        let new = meas(20.0, -74.0, 45.0, 20);
        let f = Features::extract(&init, &new);
        assert!(f.pdp_similarity < 0.9, "pdp {}", f.pdp_similarity);
    }
}
