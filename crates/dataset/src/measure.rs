//! State measurement: what the X60 collection methodology logs at each
//! state (paper §5.1).
//!
//! At each *state* the methodology performs an exhaustive 25×25 SLS,
//! picks the best beam pair by SNR, then records 1 s PHY traces (SNR,
//! noise, PDP, CDR) and MAC throughput for **each of the 9 MCSs** with
//! that pair. For every *new* state it additionally records the same
//! traces for the beam pair that was best at the corresponding *initial*
//! state — searching the MCSs on the old pair emulates RA, and the new
//! SLS plus MCS search on the new pair emulates BA.

use libra_arrays::{BeamId, Codebook};
use libra_channel::Scene;
use libra_mac::sweep::exhaustive_sweep;
use libra_phy::metrics::PowerDelayProfile;
use libra_phy::trace::{
    generate_trace, trace_mean_cdr, trace_mean_noise_dbm, trace_mean_snr_db, trace_mean_tput_mbps,
};
use libra_phy::{ErrorModel, FrameConfig, McsTable, TraceJitter};
use libra_util::SharedSeries;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fixed measurement-campaign instruments.
#[derive(Debug, Clone)]
pub struct Instruments {
    /// MCS table (X60, 9 entries).
    pub table: McsTable,
    /// PHY error model.
    pub model: ErrorModel,
    /// Framing (X60: 10 ms frames).
    pub frame: FrameConfig,
    /// Tx/Rx codebook (both ends use the SiBeam 25-beam codebook).
    pub codebook: Codebook,
    /// Per-frame measurement jitter.
    pub jitter: TraceJitter,
    /// SNR measurement noise during sweeps, dB.
    pub sweep_noise_db: f64,
    /// Frames per 1 s trace (X60: 100).
    pub trace_frames: usize,
}

impl Default for Instruments {
    fn default() -> Self {
        Self {
            table: McsTable::x60(),
            model: ErrorModel::default(),
            frame: FrameConfig::x60(),
            codebook: Codebook::sibeam_25(),
            jitter: TraceJitter::default(),
            sweep_noise_db: 0.5,
            trace_frames: 100,
        }
    }
}

/// Everything measured for one beam pair at one state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairMeasurement {
    /// The beam pair measured.
    pub pair: (BeamId, BeamId),
    /// Mean SNR over the trace, dB.
    pub snr_db: f64,
    /// Mean noise level over the trace, dBm.
    pub noise_dbm: f64,
    /// Time of flight (offline measurement; `INFINITY` when too weak).
    pub tof_ns: f64,
    /// Logged power delay profile.
    pub pdp: PowerDelayProfile,
    /// Mean MAC throughput per MCS, Mbps (index = MCS). Shared handle:
    /// simulator `ConfigData` views alias this table instead of cloning.
    pub tput_mbps: SharedSeries,
    /// Mean CDR per MCS (index = MCS). Shared handle, like `tput_mbps`.
    pub cdr: SharedSeries,
}

impl PairMeasurement {
    /// The highest-throughput MCS at this pair.
    pub fn best_mcs(&self) -> usize {
        self.tput_mbps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

/// Measures one beam pair at one state: 1 s trace per MCS.
pub fn measure_pair(
    scene: &Scene,
    instruments: &Instruments,
    pair: (BeamId, BeamId),
    rng: &mut impl Rng,
) -> PairMeasurement {
    let rays = scene.rays();
    let tx_beam = instruments.codebook.beam(pair.0);
    let rx_beam = instruments.codebook.beam(pair.1);
    let resp = scene.response_with_rays(&rays, tx_beam, rx_beam);
    let pdp = PowerDelayProfile::from_response(&resp);

    let mut tput = Vec::with_capacity(instruments.table.len());
    let mut cdr = Vec::with_capacity(instruments.table.len());
    let mut snr_acc = Vec::new();
    let mut noise_acc = Vec::new();
    for entry in instruments.table.iter() {
        let trace = generate_trace(
            &instruments.table,
            &instruments.model,
            &instruments.frame,
            &resp,
            entry.index,
            instruments.trace_frames,
            &instruments.jitter,
            rng,
        );
        tput.push(trace_mean_tput_mbps(&trace));
        cdr.push(trace_mean_cdr(&trace));
        snr_acc.push(trace_mean_snr_db(&trace));
        noise_acc.push(trace_mean_noise_dbm(&trace));
    }

    PairMeasurement {
        pair,
        snr_db: libra_util::stats::mean(&snr_acc),
        noise_dbm: libra_util::stats::mean(&noise_acc),
        tof_ns: resp.tof_ns,
        pdp,
        tput_mbps: tput.into(),
        cdr: cdr.into(),
    }
}

/// Deterministic *expected* measurement of one beam pair: no trace
/// sampling, just the error model's expected CDR/throughput. Used by the
/// scene-based timeline simulator (§8.3), where jitter is unnecessary
/// and determinism keeps oracle branch-simulation exact.
pub fn expected_pair_measurement(
    scene: &Scene,
    instruments: &Instruments,
    pair: (BeamId, BeamId),
) -> PairMeasurement {
    let rays = scene.rays();
    let tx_beam = instruments.codebook.beam(pair.0);
    let rx_beam = instruments.codebook.beam(pair.1);
    let resp = scene.response_with_rays(&rays, tx_beam, rx_beam);
    let spread = resp.rms_delay_spread_ns();
    let pdp = PowerDelayProfile::from_response(&resp);
    let mut tput = Vec::with_capacity(instruments.table.len());
    let mut cdr = Vec::with_capacity(instruments.table.len());
    for entry in instruments.table.iter() {
        let c = instruments.model.cdr(entry, resp.snr_db, spread);
        cdr.push(c);
        tput.push(entry.rate_mbps * c);
    }
    PairMeasurement {
        pair,
        snr_db: resp.snr_db,
        noise_dbm: resp.effective_noise_dbm,
        tof_ns: resp.tof_ns,
        pdp,
        tput_mbps: tput.into(),
        cdr: cdr.into(),
    }
}

/// Noiseless exhaustive sweep: the truly best pair by expected SNR.
pub fn expected_best_pair(scene: &Scene, instruments: &Instruments) -> (BeamId, BeamId) {
    let rays = scene.rays();
    let mut best = (0, 0);
    let mut best_snr = f64::NEG_INFINITY;
    for (ti, tb) in instruments.codebook.iter() {
        for (ri, rb) in instruments.codebook.iter() {
            let metric = scene.response_with_rays(&rays, tb, rb).sweep_metric_db();
            if metric > best_snr {
                best_snr = metric;
                best = (ti, ri);
            }
        }
    }
    best
}

/// A fully measured state: SLS result plus traces for the state-best pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMeasurement {
    /// Best pair found by the exhaustive SLS (`None` on lock failure —
    /// the methodology then falls back to the strongest pair anyway,
    /// recorded here as the measured pair of `best`).
    pub locked: bool,
    /// Traces at the best pair.
    pub best: PairMeasurement,
}

/// Performs the full §5.1 procedure at one state: exhaustive SLS → pick
/// best pair → measure all MCSs with it.
pub fn measure_state(
    scene: &Scene,
    instruments: &Instruments,
    rng: &mut impl Rng,
) -> StateMeasurement {
    let rays = scene.rays();
    let sweep = exhaustive_sweep(
        scene,
        &rays,
        &instruments.codebook,
        &instruments.codebook,
        instruments.sweep_noise_db,
        rng,
    );
    let (pair, locked) = match sweep.best_pair {
        Some(p) => (p, true),
        None => {
            // Lock failure: fall back to the measured argmax so the state
            // still has data (its throughputs will be ~0).
            let mut best = (0usize, 0usize);
            let mut best_snr = f64::NEG_INFINITY;
            for (ti, row) in sweep.snr_db.iter().enumerate() {
                for (ri, &s) in row.iter().enumerate() {
                    if s > best_snr {
                        best_snr = s;
                        best = (ti, ri);
                    }
                }
            }
            (best, false)
        }
    };
    StateMeasurement {
        locked,
        best: measure_pair(scene, instruments, pair, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_channel::{Material, Point, Pose, Room};
    use libra_util::rng::rng_from_seed;

    fn scene(dist: f64) -> Scene {
        let room = Room::rectangular("t", 30.0, 3.0, [Material::Drywall; 4]);
        Scene::new(
            room,
            Pose::new(Point::new(1.0, 1.5), 0.0),
            Pose::new(Point::new(1.0 + dist, 1.5), 180.0),
        )
    }

    #[test]
    fn measure_state_produces_full_mcs_sweep() {
        let mut rng = rng_from_seed(1);
        let m = measure_state(&scene(8.0), &Instruments::default(), &mut rng);
        assert!(m.locked);
        assert_eq!(m.best.tput_mbps.len(), 9);
        assert_eq!(m.best.cdr.len(), 9);
        assert!(m.best.snr_db > 15.0);
        assert!(m.best.tof_ns.is_finite());
    }

    #[test]
    fn close_state_supports_high_mcs() {
        let mut rng = rng_from_seed(2);
        let m = measure_state(&scene(4.0), &Instruments::default(), &mut rng);
        assert!(m.best.best_mcs() >= 6, "best mcs {}", m.best.best_mcs());
    }

    #[test]
    fn far_state_supports_lower_mcs() {
        let mut rng = rng_from_seed(3);
        let near = measure_state(&scene(4.0), &Instruments::default(), &mut rng);
        let far = measure_state(&scene(26.0), &Instruments::default(), &mut rng);
        assert!(far.best.best_mcs() < near.best.best_mcs());
    }

    #[test]
    fn measure_pair_respects_requested_pair() {
        let mut rng = rng_from_seed(4);
        let m = measure_pair(&scene(8.0), &Instruments::default(), (3, 20), &mut rng);
        assert_eq!(m.pair, (3, 20));
        // Badly misaligned pair: much weaker than boresight.
        let good = measure_pair(&scene(8.0), &Instruments::default(), (12, 12), &mut rng);
        assert!(good.snr_db > m.snr_db + 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = rng_from_seed(9);
            measure_state(&scene(8.0), &Instruments::default(), &mut rng)
        };
        assert_eq!(run(), run());
    }
}
