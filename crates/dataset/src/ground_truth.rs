//! Ground-truth labelling (paper §5.2).
//!
//! Given the measurements at an initial state and at a new state, decide
//! which adaptation mechanism *should* be triggered:
//!
//! * `Th(RA)` — the highest throughput among all MCSs **≤ the initial
//!   MCS** using the **initial** beam pair at the new state (RA alone).
//! * `Th(BA)` — the highest throughput among all MCSs ≤ the initial MCS
//!   using the **new best** beam pair (BA, which is always followed by
//!   RA — the paper's "RA/BA subtleties").
//! * A *working MCS* satisfies `CDR > 10 %` **and** `Th > 150 Mbps`
//!   (50 % of the lowest MCS's PHY rate).
//! * Link recovery delay: RA probes one frame per MCS downward from the
//!   initial MCS; a failed full ladder falls back to BA + another
//!   ladder. `D_max = N_MCS·d_fr + d_BA + N_MCS·d_fr`.
//! * The utility `U = α·Th/Th_max + (1−α)·(1 − D/D_max)` (Eqn. 1)
//!   combines both; the winner under `U` is the label.

use crate::measure::PairMeasurement;
use libra_phy::McsTable;
use serde::{Deserialize, Serialize};

/// The two adaptation mechanisms (the 2-class label space of §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Beam adaptation first (followed by RA).
    Ba,
    /// Rate adaptation alone.
    Ra,
}

/// The 3-class label space of LiBRA (§7): BA, RA, or no adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action3 {
    /// Beam adaptation first.
    Ba,
    /// Rate adaptation alone.
    Ra,
    /// No adaptation needed.
    Na,
}

impl Action3 {
    /// Class index for ML datasets (BA=0, RA=1, NA=2 — matching the
    /// 2-class convention BA=0, RA=1).
    pub fn class_index(self) -> usize {
        match self {
            Action3::Ba => 0,
            Action3::Ra => 1,
            Action3::Na => 2,
        }
    }
}

impl Action {
    /// Class index for ML datasets (BA=0, RA=1).
    pub fn class_index(self) -> usize {
        match self {
            Action::Ba => 0,
            Action::Ra => 1,
        }
    }

    /// Widens to the 3-class space.
    pub fn as_action3(self) -> Action3 {
        match self {
            Action::Ba => Action3::Ba,
            Action::Ra => Action3::Ra,
        }
    }
}

/// Parameters the ground truth depends on: the optimization weight α and
/// the protocol overheads (§5.2: "selecting the best mechanism ...
/// depends on the specific RA/BA algorithms used, the MAC/PHY protocol
/// parameters ... as well as by the metric one wants to optimize").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthParams {
    /// Throughput-vs-delay weight α ∈ [0, 1]; α = 1 maximizes throughput.
    pub alpha: f64,
    /// Frame (aggregation) duration `d_fr`, ms.
    pub fat_ms: f64,
    /// BA (SLS) duration `d_BA`, ms.
    pub ba_ms: f64,
    /// Working-MCS CDR threshold (paper: 0.10).
    pub min_cdr: f64,
    /// Working-MCS throughput threshold, Mbps (paper: 150).
    pub min_tput_mbps: f64,
}

impl Default for GroundTruthParams {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            fat_ms: 10.0,
            ba_ms: 0.5,
            min_cdr: 0.10,
            min_tput_mbps: 150.0,
        }
    }
}

/// The labelled outcome for one (initial state, new state) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The winning action under `U`.
    pub label: Action,
    /// `Th(RA)`, Mbps.
    pub th_ra_mbps: f64,
    /// `Th(BA)`, Mbps.
    pub th_ba_mbps: f64,
    /// Link recovery delay when RA is triggered first, ms.
    pub delay_ra_ms: f64,
    /// Link recovery delay when BA is triggered first, ms.
    pub delay_ba_ms: f64,
    /// Utility of RA.
    pub u_ra: f64,
    /// Utility of BA.
    pub u_ba: f64,
}

/// True when MCS `m` is *working* at the given pair measurement.
pub fn is_working(meas: &PairMeasurement, m: usize, params: &GroundTruthParams) -> bool {
    meas.cdr[m] > params.min_cdr && meas.tput_mbps[m] > params.min_tput_mbps
}

/// `Th` over MCSs `0..=init_mcs` at a pair (the §5.2 definitions).
fn best_tput_upto(meas: &PairMeasurement, init_mcs: usize) -> f64 {
    meas.tput_mbps[..=init_mcs]
        .iter()
        .cloned()
        .fold(0.0, f64::max)
}

/// Frames spent probing downward from `init_mcs` until the first working
/// MCS, or `None` when the whole ladder fails. One frame per probe; the
/// count includes the probe that succeeds.
fn probes_to_working(
    meas: &PairMeasurement,
    init_mcs: usize,
    params: &GroundTruthParams,
) -> Option<usize> {
    for (k, m) in (0..=init_mcs).rev().enumerate() {
        if is_working(meas, m, params) {
            return Some(k + 1);
        }
    }
    None
}

/// Computes the full ground truth for a (initial, new) state pair.
///
/// `initial` is the measurement at the initial state (defines the initial
/// pair and MCS), `new_old_pair` the new-state measurement using the
/// initial pair, and `new_best_pair` the new-state measurement using the
/// new SLS winner.
pub fn ground_truth(
    table: &McsTable,
    initial: &PairMeasurement,
    new_old_pair: &PairMeasurement,
    new_best_pair: &PairMeasurement,
    params: &GroundTruthParams,
) -> GroundTruth {
    let init_mcs = initial.best_mcs();
    let th_ra = best_tput_upto(new_old_pair, init_mcs);
    let th_ba = best_tput_upto(new_best_pair, init_mcs);

    let n_mcs = table.len() as f64;
    let dmax = n_mcs * params.fat_ms + params.ba_ms + n_mcs * params.fat_ms;

    // RA first: ladder on the old pair; on failure BA + ladder on the new
    // pair; on double failure the full worst case.
    let ladder_len = (init_mcs + 1) as f64;
    let delay_ra = match probes_to_working(new_old_pair, init_mcs, params) {
        Some(k) => k as f64 * params.fat_ms,
        None => {
            ladder_len * params.fat_ms
                + params.ba_ms
                + match probes_to_working(new_best_pair, init_mcs, params) {
                    Some(k) => k as f64 * params.fat_ms,
                    None => ladder_len * params.fat_ms,
                }
        }
    };
    // BA first: SLS, then ladder on the new pair.
    let delay_ba = params.ba_ms
        + match probes_to_working(new_best_pair, init_mcs, params) {
            Some(k) => k as f64 * params.fat_ms,
            None => ladder_len * params.fat_ms,
        };

    let th_max = table.max_rate_mbps();
    let u = |th: f64, d: f64| {
        params.alpha * th / th_max + (1.0 - params.alpha) * (1.0 - (d / dmax).min(1.0))
    };
    let u_ra = u(th_ra, delay_ra);
    let u_ba = u(th_ba, delay_ba);

    GroundTruth {
        // Ties go to RA ("perform RA when Th(RA) ≥ Th(BA)").
        label: if u_ra >= u_ba { Action::Ra } else { Action::Ba },
        th_ra_mbps: th_ra,
        th_ba_mbps: th_ba,
        delay_ra_ms: delay_ra,
        delay_ba_ms: delay_ba,
        u_ra,
        u_ba,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_phy::metrics::{PowerDelayProfile, PDP_BINS};

    fn meas(pair: (usize, usize), tput: Vec<f64>, cdr: Vec<f64>) -> PairMeasurement {
        PairMeasurement {
            pair,
            snr_db: 20.0,
            noise_dbm: -74.0,
            tof_ns: 30.0,
            pdp: PowerDelayProfile::from_bins(vec![0.0; PDP_BINS]),
            tput_mbps: tput.into(),
            cdr: cdr.into(),
        }
    }

    fn table() -> McsTable {
        McsTable::x60()
    }

    /// Initial state: MCS 6 best (3600 Mbps·0.95).
    fn initial() -> PairMeasurement {
        let tput = vec![
            300.0, 850.0, 1400.0, 1950.0, 2500.0, 3050.0, 3420.0, 2100.0, 230.0,
        ];
        let cdr = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.95, 0.5, 0.05];
        meas((12, 12), tput, cdr)
    }

    #[test]
    fn ra_wins_when_old_pair_still_good() {
        // New state: old pair supports MCS 5 fine; new pair no better.
        let old_pair = meas(
            (12, 12),
            vec![
                300.0, 850.0, 1400.0, 1950.0, 2500.0, 2900.0, 1800.0, 420.0, 0.0,
            ],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 0.95, 0.5, 0.1, 0.0],
        );
        let best_pair = meas(
            (10, 12),
            vec![
                300.0, 850.0, 1400.0, 1950.0, 2400.0, 2750.0, 1700.0, 400.0, 0.0,
            ],
            vec![1.0, 1.0, 1.0, 1.0, 0.96, 0.9, 0.47, 0.1, 0.0],
        );
        let gt = ground_truth(
            &table(),
            &initial(),
            &old_pair,
            &best_pair,
            &GroundTruthParams::default(),
        );
        assert_eq!(gt.label, Action::Ra);
        assert!(gt.th_ra_mbps >= gt.th_ba_mbps);
    }

    #[test]
    fn ba_wins_when_old_pair_dead() {
        let old_pair = meas((12, 12), vec![0.0; 9], vec![0.0; 9]);
        let best_pair = meas(
            (4, 18),
            vec![300.0, 850.0, 1400.0, 1800.0, 1200.0, 200.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.92, 0.5, 0.06, 0.0, 0.0, 0.0],
        );
        let gt = ground_truth(
            &table(),
            &initial(),
            &old_pair,
            &best_pair,
            &GroundTruthParams::default(),
        );
        assert_eq!(gt.label, Action::Ba);
        assert_eq!(gt.th_ra_mbps, 0.0);
        assert!(gt.th_ba_mbps > 1000.0);
    }

    #[test]
    fn th_ba_capped_at_initial_mcs() {
        // New pair supports MCS 8 better than anything ≤ 6, but the §5.2
        // redefinition caps the search at the initial MCS.
        let old_pair = meas((12, 12), vec![0.0; 9], vec![0.0; 9]);
        let mut high = vec![0.0; 9];
        high[8] = 4700.0;
        high[6] = 3000.0;
        let mut cdr = vec![0.0; 9];
        cdr[8] = 0.99;
        cdr[6] = 0.85;
        let best_pair = meas((4, 18), high, cdr);
        let gt = ground_truth(
            &table(),
            &initial(),
            &old_pair,
            &best_pair,
            &GroundTruthParams::default(),
        );
        assert_eq!(gt.th_ba_mbps, 3000.0, "must not see MCS 8");
    }

    #[test]
    fn delay_ra_counts_probes() {
        // Old pair: first working MCS is 3 → probes 6,5,4,3 = 4 frames.
        let old_pair = meas(
            (12, 12),
            vec![300.0, 850.0, 1400.0, 1950.0, 90.0, 80.0, 50.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0, 0.04, 0.03, 0.01, 0.0, 0.0],
        );
        let best_pair = old_pair.clone();
        let p = GroundTruthParams {
            fat_ms: 2.0,
            ..Default::default()
        };
        let gt = ground_truth(&table(), &initial(), &old_pair, &best_pair, &p);
        assert_eq!(gt.delay_ra_ms, 8.0);
        // BA first: 0.5 + 4 probes × 2 ms = 8.5.
        assert_eq!(gt.delay_ba_ms, 8.5);
    }

    #[test]
    fn double_failure_hits_dmax() {
        let dead = meas((12, 12), vec![0.0; 9], vec![0.0; 9]);
        let p = GroundTruthParams {
            fat_ms: 10.0,
            ba_ms: 250.0,
            ..Default::default()
        };
        let gt = ground_truth(&table(), &initial(), &dead, &dead, &p);
        // Ladder from MCS 6 = 7 probes: 70 + 250 + 70 = 390.
        assert_eq!(gt.delay_ra_ms, 390.0);
        assert_eq!(gt.delay_ba_ms, 320.0);
    }

    #[test]
    fn alpha_zero_prefers_fast_recovery() {
        // RA recovers instantly at moderate tput; BA recovers slowly at
        // high tput. α=0 → RA; α=1 → BA.
        let old_pair = meas(
            (12, 12),
            vec![
                300.0, 850.0, 1400.0, 1900.0, 2300.0, 2600.0, 2000.0, 0.0, 0.0,
            ],
            vec![1.0, 1.0, 1.0, 0.97, 0.92, 0.85, 0.55, 0.0, 0.0],
        );
        let best_pair = meas(
            (3, 19),
            vec![
                300.0, 850.0, 1400.0, 1950.0, 2500.0, 3050.0, 3500.0, 0.0, 0.0,
            ],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.97, 0.0, 0.0],
        );
        let mut p = GroundTruthParams {
            ba_ms: 250.0,
            fat_ms: 2.0,
            alpha: 0.0,
            ..Default::default()
        };
        let gt0 = ground_truth(&table(), &initial(), &old_pair, &best_pair, &p);
        assert_eq!(gt0.label, Action::Ra);
        p.alpha = 1.0;
        let gt1 = ground_truth(&table(), &initial(), &old_pair, &best_pair, &p);
        assert_eq!(gt1.label, Action::Ba);
    }

    #[test]
    fn working_mcs_needs_both_conditions() {
        let p = GroundTruthParams::default();
        let m = meas(
            (0, 0),
            vec![160.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.6, 0.05, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        );
        assert!(is_working(&m, 0, &p)); // 160 Mbps, CDR 0.6
        assert!(!is_working(&m, 1, &p)); // CDR too low
        assert!(!is_working(&m, 2, &p)); // zero throughput
    }
}
