//! The measurement campaign: scenario plans per environment (paper §4.2,
//! Appendix A.2) and the generator that walks them to produce labelled
//! dataset entries.
//!
//! Structure mirrors the paper's collection methodology (§5.1): each
//! *scenario* fixes a Tx pose and an initial Rx state; every other state
//! (moved, rotated, blocked, interfered) is a *new state* yielding one
//! dataset entry per repeated 1 s trace (the paper logs three 1 s traces
//! per state — `CampaignConfig::repeats`).

use crate::entry::{CampaignDataset, DatasetEntry, Impairment};
use crate::features::Features;
use crate::measure::{measure_pair, measure_state, Instruments};
use libra_channel::{
    Blocker, BlockerPlacement, Environment, InterferenceLevel, Interferer, Point, Pose,
    ScenarioBounds, Scene,
};
use libra_util::par::par_map;
use libra_util::rng::{derive_seed, rng_from_seed};
use serde::{Deserialize, Serialize};

/// One new state within a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NewStateSpec {
    /// Impairment category of this state.
    pub kind: Impairment,
    /// Rx pose at the new state.
    pub rx: Pose,
    /// Blockers present.
    pub blockers: Vec<Blocker>,
    /// Interferers active.
    pub interferers: Vec<Interferer>,
    /// Key identifying the *measurement position* (for the positions
    /// column of Tables 1–2: rotations at one spot share a position).
    pub position_key: String,
}

/// A scenario: Tx + initial Rx state + its new states.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Environment this scenario lives in.
    pub env: Environment,
    /// Scenario name (unique within the campaign; seeds derive from it).
    pub name: String,
    /// Transmitter pose.
    pub tx: Pose,
    /// The initial Rx state.
    pub initial_rx: Pose,
    /// All new states.
    pub new_states: Vec<NewStateSpec>,
}

impl ScenarioSpec {
    fn initial_scene(&self) -> Scene {
        scene_with_power(self.env, self.tx, self.initial_rx)
    }

    fn new_scene(&self, st: &NewStateSpec) -> Scene {
        scene_with_power(self.env, self.tx, st.rx)
            .with_blockers(st.blockers.clone())
            .with_interferers(st.interferers.clone())
    }

    /// Visits every Rx pose of the scenario — the initial state and each
    /// new state — for in-place mutation (scenario search).
    pub fn for_each_rx_pose_mut(&mut self, mut f: impl FnMut(&mut Pose)) {
        f(&mut self.initial_rx);
        for st in &mut self.new_states {
            f(&mut st.rx);
        }
    }

    /// Visits every blocker of every new state for in-place mutation.
    pub fn for_each_blocker_mut(&mut self, mut f: impl FnMut(&mut Blocker)) {
        for st in &mut self.new_states {
            for b in &mut st.blockers {
                f(b);
            }
        }
    }

    /// Visits every interferer of every new state for in-place mutation.
    pub fn for_each_interferer_mut(&mut self, mut f: impl FnMut(&mut Interferer)) {
        for st in &mut self.new_states {
            for i in &mut st.interferers {
                f(i);
            }
        }
    }

    /// Checks the whole scenario against the physical bounds of
    /// [`libra_channel::bounds`]: node poses inside the room with wall
    /// clearance, minimum link separation at every state, blockers
    /// inside the room with human-range discs, interferers within reach,
    /// and entity counts bounded. Returns the first violation found.
    pub fn validate(&self, bounds: &ScenarioBounds) -> Result<(), String> {
        let room = self.env.room();
        if self.new_states.is_empty() {
            return Err(format!("{}: scenario has no new states", self.name));
        }
        if self.new_states.len() > bounds.max_states {
            return Err(format!(
                "{}: {} new states exceed the bound of {}",
                self.name,
                self.new_states.len(),
                bounds.max_states
            ));
        }
        if !bounds.pose_ok(&room, self.tx) {
            return Err(format!("{}: tx pose outside room bounds", self.name));
        }
        if !bounds.pose_ok(&room, self.initial_rx) {
            return Err(format!(
                "{}: initial rx pose outside room bounds",
                self.name
            ));
        }
        if !bounds.link_ok(self.tx.position, self.initial_rx.position) {
            return Err(format!("{}: initial link shorter than minimum", self.name));
        }
        for (si, st) in self.new_states.iter().enumerate() {
            if !bounds.pose_ok(&room, st.rx) {
                return Err(format!("{}[{si}]: rx pose outside room bounds", self.name));
            }
            if !bounds.link_ok(self.tx.position, st.rx.position) {
                return Err(format!("{}[{si}]: link shorter than minimum", self.name));
            }
            if st.blockers.len() > bounds.max_blockers {
                return Err(format!("{}[{si}]: too many blockers", self.name));
            }
            if st.interferers.len() > bounds.max_interferers {
                return Err(format!("{}[{si}]: too many interferers", self.name));
            }
            for b in &st.blockers {
                if !bounds.blocker_ok(&room, b) {
                    return Err(format!(
                        "{}[{si}]: blocker at ({:.2}, {:.2}) violates bounds",
                        self.name, b.position.x, b.position.y
                    ));
                }
            }
            for i in &st.interferers {
                if !bounds.interferer_ok(&room, i) {
                    return Err(format!(
                        "{}[{si}]: interferer at ({:.2}, {:.2}) violates bounds",
                        self.name, i.position.x, i.position.y
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Campaign Tx power, dBm. Lower than the channel-model default so that
/// initial-state best MCSs spread over the table's mid-range (Fig. 9
/// shows initial MCS 2–6, not pegged at the top).
pub const CAMPAIGN_TX_POWER_DBM: f64 = -2.0;

fn scene_with_power(env: Environment, tx: Pose, rx: Pose) -> Scene {
    let mut s = Scene::new(env.room(), tx, rx);
    s.tx_power_dbm = CAMPAIGN_TX_POWER_DBM;
    s
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every scenario derives its own stream.
    pub seed: u64,
    /// Measurement instruments.
    pub instruments: Instruments,
    /// Repeated 1 s traces per state (paper: 3).
    pub repeats: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0x11B2A,
            instruments: Instruments::default(),
            repeats: 3,
        }
    }
}

/// Runs the campaign over the given scenarios.
///
/// Scenarios execute in parallel: each derives an independent RNG stream
/// from its (unique) name, and the per-scenario results are concatenated
/// in plan order — the output is bitwise identical to a sequential walk
/// at any thread count.
pub fn generate(specs: &[ScenarioSpec], cfg: &CampaignConfig) -> CampaignDataset {
    let per_scenario = par_map(specs, |_, spec| generate_scenario(spec, cfg));
    let mut entries = Vec::new();
    let mut na_entries = Vec::new();
    for (e, na) in per_scenario {
        entries.extend(e);
        na_entries.extend(na);
    }
    CampaignDataset {
        entries,
        na_entries,
    }
}

/// Walks one scenario: the initial-state SLS, then every new state with
/// its repeated traces and the No-Adaptation twin. All randomness flows
/// from the scenario's own seed stream.
fn generate_scenario(
    spec: &ScenarioSpec,
    cfg: &CampaignConfig,
) -> (Vec<DatasetEntry>, Vec<DatasetEntry>) {
    let mut entries = Vec::new();
    let mut na_entries = Vec::new();
    let mut rng = rng_from_seed(derive_seed(cfg.seed, &spec.name));
    let initial_scene = spec.initial_scene();
    let init = measure_state(&initial_scene, &cfg.instruments, &mut rng);
    for (si, st) in spec.new_states.iter().enumerate() {
        let new_scene = spec.new_scene(st);
        // One SLS at the new state (as in §5.1), shared by repeats.
        let new_state = measure_state(&new_scene, &cfg.instruments, &mut rng);
        for _ in 0..cfg.repeats {
            let old_pair = measure_pair(&new_scene, &cfg.instruments, init.best.pair, &mut rng);
            // When the new SLS lands on the very pair already in use,
            // BA has nothing to offer: both options are the SAME
            // configuration, so they must share one measurement
            // (otherwise independent trace jitter would coin-flip the
            // Th(RA) ≥ Th(BA) tie that rightfully goes to RA).
            let best_pair = if new_state.best.pair == init.best.pair {
                old_pair.clone()
            } else {
                measure_pair(&new_scene, &cfg.instruments, new_state.best.pair, &mut rng)
            };
            let features = Features::extract(&init.best, &old_pair);
            entries.push(DatasetEntry {
                env: spec.env,
                impairment: st.kind,
                scenario: spec.name.clone(),
                position_key: st.position_key.clone(),
                features,
                initial: init.best.clone(),
                new_old_pair: old_pair,
                new_best_pair: best_pair,
            });
        }
        // One No-Adaptation twin per new state (§7): the state's own
        // best pair measured twice.
        let na_a = measure_pair(&new_scene, &cfg.instruments, new_state.best.pair, &mut rng);
        let na_b = measure_pair(&new_scene, &cfg.instruments, new_state.best.pair, &mut rng);
        let na_features = Features::extract(&na_a, &na_b);
        na_entries.push(DatasetEntry {
            env: spec.env,
            impairment: st.kind,
            scenario: format!("{}#na{}", spec.name, si),
            position_key: st.position_key.clone(),
            features: na_features,
            initial: na_a,
            new_old_pair: na_b.clone(),
            new_best_pair: na_b,
        });
    }
    (entries, na_entries)
}

// ---------------------------------------------------------------------
// Scenario plans.
// ---------------------------------------------------------------------

/// The rotation ladder of §4.2: "from 0° to −90° and from 0° to 90° in
/// steps of 15°" — twelve non-zero orientations.
pub const ROTATION_ANGLES_DEG: [f64; 12] = [
    -90.0, -75.0, -60.0, -45.0, -30.0, -15.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0,
];

fn displacement_states(positions: &[(Pose, &str)]) -> Vec<NewStateSpec> {
    positions
        .iter()
        .map(|(rx, key)| NewStateSpec {
            kind: Impairment::Displacement,
            rx: *rx,
            blockers: vec![],
            interferers: vec![],
            position_key: (*key).to_string(),
        })
        .collect()
}

fn rotation_states(site: Pose, key: &str) -> Vec<NewStateSpec> {
    ROTATION_ANGLES_DEG
        .iter()
        .map(|&a| NewStateSpec {
            kind: Impairment::Displacement,
            rx: site.rotated(a),
            blockers: vec![],
            interferers: vec![],
            position_key: key.to_string(),
        })
        .collect()
}

/// Blockage states at one link geometry: a subset of the three canonical
/// placements with varying lateral offsets (partial blockage).
fn blockage_states(
    tx: Point,
    rx: Pose,
    placements: &[BlockerPlacement],
    key: &str,
) -> Vec<NewStateSpec> {
    placements
        .iter()
        .enumerate()
        .map(|(i, &pl)| {
            let offset = [0.0, 0.1, 0.2][i % 3];
            NewStateSpec {
                kind: Impairment::Blockage,
                rx,
                blockers: vec![pl.blocker(tx, rx.position, offset)],
                interferers: vec![],
                position_key: key.to_string(),
            }
        })
        .collect()
}

/// Interference states at one link geometry: the three severities, with
/// the interferer bearing (relative to the Rx→Tx direction) cycling by
/// `variant` so some positions allow spatial filtering and others do not.
fn interference_states(tx: Point, rx: Pose, variant: usize, key: &str) -> Vec<NewStateSpec> {
    let bearing_rel_deg = [8.0, 25.0, 100.0][variant % 3];
    let toward_tx = rx.position.bearing_deg(tx);
    let bearing = toward_tx + bearing_rel_deg;
    let dist = 3.0;
    let pos = Point::new(
        rx.position.x + dist * bearing.to_radians().cos(),
        rx.position.y + dist * bearing.to_radians().sin(),
    );
    InterferenceLevel::ALL
        .iter()
        .map(|&lvl| NewStateSpec {
            kind: Impairment::Interference,
            rx,
            blockers: vec![],
            interferers: vec![Interferer::at_level(pos, lvl)],
            position_key: key.to_string(),
        })
        .collect()
}

/// A straight backward-displacement scenario down a corridor-like axis.
fn backward_scenario(
    env: Environment,
    name: &str,
    tx: Pose,
    y: f64,
    first_x: f64,
    step: f64,
    n_moves: usize,
) -> ScenarioSpec {
    let initial = Pose::new(Point::new(first_x, y), 180.0);
    let positions: Vec<(Pose, String)> = (1..=n_moves)
        .map(|k| {
            (
                Pose::new(Point::new(first_x + step * k as f64, y), 180.0),
                format!("{name}-p{k}"),
            )
        })
        .collect();
    let refs: Vec<(Pose, &str)> = positions.iter().map(|(p, k)| (*p, k.as_str())).collect();
    ScenarioSpec {
        env,
        name: name.to_string(),
        tx,
        initial_rx: initial,
        new_states: displacement_states(&refs),
    }
}

/// A rotation scenario at one site.
fn rotation_scenario(env: Environment, name: &str, tx: Pose, site: Pose) -> ScenarioSpec {
    ScenarioSpec {
        env,
        name: name.to_string(),
        tx,
        initial_rx: site,
        new_states: rotation_states(site, &format!("{name}-rot")),
    }
}

/// Blockage + interference scenarios at a set of link geometries.
fn impairment_scenarios(
    env: Environment,
    base: &str,
    tx: Pose,
    links: &[(Pose, usize)], // (rx, placement-count 2 or 3)
) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for (i, (rx, n_pl)) in links.iter().enumerate() {
        let name_b = format!("{base}-blk{i}");
        let placements = &BlockerPlacement::ALL[..*n_pl];
        specs.push(ScenarioSpec {
            env,
            name: name_b.clone(),
            tx,
            initial_rx: *rx,
            new_states: blockage_states(tx.position, *rx, placements, &format!("{base}-bpos{i}")),
        });
        let name_i = format!("{base}-intf{i}");
        specs.push(ScenarioSpec {
            env,
            name: name_i,
            tx,
            initial_rx: *rx,
            new_states: interference_states(tx.position, *rx, i, &format!("{base}-ipos{i}")),
        });
    }
    specs
}

/// The main (training) dataset scenario plan — Table 1's environments.
pub fn main_campaign_plan() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    let p = Point::new;

    // ---- Lobby (20 × 14 m, Tx1 on the west wall, Tx2 on the north). --
    let tx1 = Pose::new(p(1.0, 7.0), 0.0);
    specs.push(backward_scenario(
        Environment::Lobby,
        "lobby-back",
        tx1,
        7.0,
        3.0,
        2.0,
        7,
    ));
    // Lateral: Rx slides parallel to the wall while facing west.
    {
        let initial = Pose::new(p(9.0, 7.0), 180.0);
        let positions: Vec<(Pose, String)> = (1..=4)
            .map(|k| {
                (
                    Pose::new(p(9.0, 7.0 + 1.2 * k as f64), 180.0),
                    format!("lobby-lat-p{k}"),
                )
            })
            .collect();
        let refs: Vec<(Pose, &str)> = positions.iter().map(|(q, k)| (*q, k.as_str())).collect();
        specs.push(ScenarioSpec {
            env: Environment::Lobby,
            name: "lobby-lateral".into(),
            tx: tx1,
            initial_rx: initial,
            new_states: displacement_states(&refs),
        });
    }
    // Diagonal.
    {
        let initial = Pose::new(p(6.0, 7.0), 180.0);
        let positions: Vec<(Pose, String)> = (1..=3)
            .map(|k| {
                (
                    Pose::new(p(6.0 + 2.0 * k as f64, 7.0 + 1.5 * k as f64), 180.0),
                    format!("lobby-diag-p{k}"),
                )
            })
            .collect();
        let refs: Vec<(Pose, &str)> = positions.iter().map(|(q, k)| (*q, k.as_str())).collect();
        specs.push(ScenarioSpec {
            env: Environment::Lobby,
            name: "lobby-diagonal".into(),
            tx: tx1,
            initial_rx: initial,
            new_states: displacement_states(&refs),
        });
    }
    specs.push(rotation_scenario(
        Environment::Lobby,
        "lobby-rot1",
        tx1,
        Pose::new(p(9.0, 7.0), 180.0),
    ));
    specs.push(rotation_scenario(
        Environment::Lobby,
        "lobby-rot2",
        tx1,
        Pose::new(p(15.0, 7.0), 180.0),
    ));
    // Tx2 set: Tx on the north wall firing south.
    let tx2 = Pose::new(p(10.0, 13.0), -90.0);
    {
        let initial = Pose::new(p(10.0, 11.0), 90.0);
        let positions: Vec<(Pose, String)> = (1..=6)
            .map(|k| {
                let q = match k {
                    1 => p(10.0, 9.0),
                    2 => p(10.0, 7.0),
                    3 => p(10.0, 5.0),
                    4 => p(10.0, 3.0),
                    5 => p(12.5, 7.0),
                    _ => p(7.5, 7.0),
                };
                (Pose::new(q, 90.0), format!("lobby-tx2-p{k}"))
            })
            .collect();
        let refs: Vec<(Pose, &str)> = positions.iter().map(|(q, k)| (*q, k.as_str())).collect();
        specs.push(ScenarioSpec {
            env: Environment::Lobby,
            name: "lobby-tx2".into(),
            tx: tx2,
            initial_rx: initial,
            new_states: displacement_states(&refs),
        });
    }

    // ---- Lab (aisle between the cabinet rows at y ≈ 4.6). -----------
    let txl = Pose::new(p(1.0, 4.6), 0.0);
    specs.push(backward_scenario(
        Environment::Lab,
        "lab-back",
        txl,
        4.6,
        3.0,
        1.5,
        5,
    ));
    specs.push(rotation_scenario(
        Environment::Lab,
        "lab-rot1",
        txl,
        Pose::new(p(6.0, 4.6), 180.0),
    ));

    // ---- Conference room. --------------------------------------------
    let txc = Pose::new(p(0.8, 3.4), 0.0);
    {
        let initial = Pose::new(p(3.0, 3.4), 180.0);
        let around: Vec<(Point, f64)> = vec![
            (p(5.0, 2.2), 180.0),
            (p(7.0, 2.2), 180.0),
            (p(9.0, 3.4), 180.0),
            (p(7.0, 4.6), 180.0),
            (p(5.0, 4.6), 180.0),
            // Paper positions 4–7 face the same direction as the Tx —
            // only reflections connect them.
            (p(8.0, 3.4), 0.0),
            (p(9.0, 4.5), 0.0),
        ];
        let positions: Vec<(Pose, String)> = around
            .iter()
            .enumerate()
            .map(|(k, (q, o))| (Pose::new(*q, *o), format!("conf-p{k}")))
            .collect();
        let refs: Vec<(Pose, &str)> = positions.iter().map(|(q, k)| (*q, k.as_str())).collect();
        specs.push(ScenarioSpec {
            env: Environment::ConferenceRoom,
            name: "conf-table".into(),
            tx: txc,
            initial_rx: initial,
            new_states: displacement_states(&refs),
        });
    }
    specs.push(rotation_scenario(
        Environment::ConferenceRoom,
        "conf-rot1",
        txc,
        Pose::new(p(5.0, 2.2), 180.0),
    ));

    // ---- Corridors. ---------------------------------------------------
    for (env, name, rot_sites) in [
        (Environment::CorridorNarrow, "cor-narrow", vec![11.0]),
        (Environment::CorridorMedium, "cor-medium", vec![6.0, 16.0]),
        (Environment::CorridorWide, "cor-wide", vec![6.0, 16.0]),
    ] {
        let y = env.room().depth_m / 2.0;
        let tx = Pose::new(p(1.0, y), 0.0);
        let n_moves = if matches!(env, Environment::CorridorNarrow) {
            16
        } else {
            9
        };
        let step = if matches!(env, Environment::CorridorNarrow) {
            1.25
        } else {
            1.9
        };
        specs.push(backward_scenario(
            env,
            &format!("{name}-back"),
            tx,
            y,
            3.5,
            step,
            n_moves,
        ));
        for (i, x) in rot_sites.iter().enumerate() {
            specs.push(rotation_scenario(
                env,
                &format!("{name}-rot{i}"),
                tx,
                Pose::new(p(*x, y), 180.0),
            ));
        }
    }

    // ---- Blockage + interference (12 positions across environments). --
    let lobby_links: Vec<(Pose, usize)> = vec![
        (Pose::new(p(7.0, 7.0), 180.0), 3),
        (Pose::new(p(11.0, 7.0), 180.0), 2),
        (Pose::new(p(15.0, 7.0), 180.0), 2),
        (Pose::new(p(10.0, 9.0), 180.0), 2),
    ];
    specs.extend(impairment_scenarios(
        Environment::Lobby,
        "lobby",
        tx1,
        &lobby_links,
    ));
    let lab_links: Vec<(Pose, usize)> = vec![(Pose::new(p(8.0, 4.6), 180.0), 3)];
    specs.extend(impairment_scenarios(
        Environment::Lab,
        "lab",
        txl,
        &lab_links,
    ));
    let conf_links: Vec<(Pose, usize)> = vec![
        (Pose::new(p(6.0, 3.4), 180.0), 3),
        (Pose::new(p(9.0, 3.4), 180.0), 2),
    ];
    specs.extend(impairment_scenarios(
        Environment::ConferenceRoom,
        "conf",
        txc,
        &conf_links,
    ));
    for (env, name, xs) in [
        (Environment::CorridorNarrow, "corn", vec![9.0, 16.0]),
        (Environment::CorridorMedium, "corm", vec![9.0, 16.0]),
        (Environment::CorridorWide, "corw", vec![12.0]),
    ] {
        let y = env.room().depth_m / 2.0;
        let tx = Pose::new(p(1.0, y), 0.0);
        let links: Vec<(Pose, usize)> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (Pose::new(p(x, y), 180.0), if i == 0 { 2 } else { 3 }))
            .collect();
        specs.extend(impairment_scenarios(env, name, tx, &links));
    }

    specs
}

/// The testing dataset scenario plan — Table 2's held-out buildings.
pub fn testing_campaign_plan() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    let p = Point::new;

    // Building 1: long 2.5 m brick corridor.
    let y1 = 1.25;
    let txb1 = Pose::new(p(1.0, y1), 0.0);
    specs.push(backward_scenario(
        Environment::Building1Corridor,
        "b1-back",
        txb1,
        y1,
        3.5,
        1.9,
        14,
    ));
    specs.push(rotation_scenario(
        Environment::Building1Corridor,
        "b1-rot",
        txb1,
        Pose::new(p(10.0, y1), 180.0),
    ));

    // Building 2: wide open area.
    let txb2 = Pose::new(p(1.0, 11.0), 0.0);
    specs.push(backward_scenario(
        Environment::Building2OpenArea,
        "b2-back",
        txb2,
        11.0,
        3.0,
        2.2,
        8,
    ));
    {
        let initial = Pose::new(p(8.0, 11.0), 180.0);
        let positions: Vec<(Pose, String)> = (1..=8)
            .map(|k| {
                let q = if k <= 4 {
                    p(8.0, 11.0 + 1.5 * k as f64)
                } else {
                    p(8.0 + 2.0 * (k - 4) as f64, 11.0 + 1.5 * (k - 4) as f64)
                };
                (Pose::new(q, 180.0), format!("b2-ld-p{k}"))
            })
            .collect();
        let refs: Vec<(Pose, &str)> = positions.iter().map(|(q, k)| (*q, k.as_str())).collect();
        specs.push(ScenarioSpec {
            env: Environment::Building2OpenArea,
            name: "b2-latdiag".into(),
            tx: txb2,
            initial_rx: initial,
            new_states: displacement_states(&refs),
        });
    }
    specs.push(rotation_scenario(
        Environment::Building2OpenArea,
        "b2-rot",
        txb2,
        Pose::new(p(10.0, 11.0), 180.0),
    ));

    // Blockage + interference: 2 positions per building.
    let b1_links: Vec<(Pose, usize)> = vec![
        (Pose::new(p(8.0, y1), 180.0), 2),
        (Pose::new(p(14.0, y1), 180.0), 2),
    ];
    specs.extend(impairment_scenarios(
        Environment::Building1Corridor,
        "b1",
        txb1,
        &b1_links,
    ));
    let b2_links: Vec<(Pose, usize)> = vec![
        (Pose::new(p(9.0, 11.0), 180.0), 3),
        (Pose::new(p(13.0, 11.0), 180.0), 2),
    ];
    specs.extend(impairment_scenarios(
        Environment::Building2OpenArea,
        "b2",
        txb2,
        &b2_links,
    ));

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_plan_covers_all_environments() {
        let plan = main_campaign_plan();
        for env in Environment::MAIN {
            assert!(plan.iter().any(|s| s.env == env), "{} missing", env.name());
        }
    }

    #[test]
    fn main_plan_covers_all_impairments() {
        let plan = main_campaign_plan();
        let kinds: std::collections::HashSet<Impairment> = plan
            .iter()
            .flat_map(|s| s.new_states.iter().map(|n| n.kind))
            .collect();
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn main_plan_state_counts_near_paper() {
        let plan = main_campaign_plan();
        let count = |k: Impairment| -> usize {
            plan.iter()
                .flat_map(|s| s.new_states.iter())
                .filter(|n| n.kind == k)
                .count()
        };
        // With 3 repeats per state the paper's entry counts (479/81/108)
        // correspond to ~160/27/36 states.
        let d = count(Impairment::Displacement);
        let b = count(Impairment::Blockage);
        let i = count(Impairment::Interference);
        assert!((130..=190).contains(&d), "displacement states {d}");
        assert!((24..=34).contains(&b), "blockage states {b}");
        assert_eq!(i, 36, "interference states {i}");
    }

    #[test]
    fn scenario_names_unique() {
        let plan: Vec<_> = main_campaign_plan()
            .into_iter()
            .chain(testing_campaign_plan())
            .collect();
        let mut names: Vec<&str> = plan.iter().map(|s| s.name.as_str()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate scenario names");
    }

    #[test]
    fn rotation_scenarios_have_12_angles() {
        let plan = main_campaign_plan();
        let rot = plan.iter().find(|s| s.name == "lobby-rot1").unwrap();
        assert_eq!(rot.new_states.len(), 12);
        // All at the same position key (one measurement position).
        let keys: std::collections::HashSet<&str> = rot
            .new_states
            .iter()
            .map(|n| n.position_key.as_str())
            .collect();
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn interference_states_have_three_levels() {
        let tx = Point::new(1.0, 1.5);
        let rx = Pose::new(Point::new(10.0, 1.5), 180.0);
        let states = interference_states(tx, rx, 0, "k");
        assert_eq!(states.len(), 3);
        assert!(states.iter().all(|s| s.interferers.len() == 1));
    }

    #[test]
    fn campaign_plans_satisfy_physical_bounds() {
        // The hand-written plans are the reference points of the fuzz
        // search; they must pass the same validation the mutator
        // enforces on every candidate.
        let bounds = ScenarioBounds::default();
        for spec in main_campaign_plan()
            .iter()
            .chain(testing_campaign_plan().iter())
        {
            spec.validate(&bounds)
                .unwrap_or_else(|e| panic!("invalid plan scenario: {e}"));
        }
    }

    #[test]
    fn mutation_hooks_visit_every_entity() {
        let plan = main_campaign_plan();
        let spec = plan.iter().find(|s| s.name == "lobby-blk0").unwrap();
        let mut clone = spec.clone();
        let mut poses = 0;
        clone.for_each_rx_pose_mut(|_| poses += 1);
        assert_eq!(poses, 1 + spec.new_states.len());
        let mut blockers = 0;
        clone.for_each_blocker_mut(|b| {
            blockers += 1;
            b.attenuation_db += 1.0;
        });
        let expected: usize = spec.new_states.iter().map(|s| s.blockers.len()).sum();
        assert_eq!(blockers, expected);
        assert!(blockers > 0);
        // The mutation actually landed.
        assert!(
            (clone.new_states[0].blockers[0].attenuation_db
                - spec.new_states[0].blockers[0].attenuation_db
                - 1.0)
                .abs()
                < 1e-12
        );
        let mut interferers = 0;
        clone.for_each_interferer_mut(|_| interferers += 1);
        assert_eq!(interferers, 0);
    }

    #[test]
    fn validate_rejects_out_of_bounds_scenarios() {
        let bounds = ScenarioBounds::default();
        let plan = main_campaign_plan();
        let base = plan.iter().find(|s| s.name == "lobby-back").unwrap();

        let mut bad = base.clone();
        bad.new_states[0].rx.position = Point::new(-3.0, 7.0);
        assert!(bad.validate(&bounds).is_err());

        let mut bad = base.clone();
        bad.new_states.clear();
        assert!(bad.validate(&bounds).is_err());

        let mut bad = base.clone();
        bad.new_states[0]
            .blockers
            .push(Blocker::human_with_attenuation(Point::new(5.0, 7.0), 80.0));
        assert!(bad.validate(&bounds).is_err());

        assert!(base.validate(&bounds).is_ok());
    }

    #[test]
    fn rx_positions_inside_rooms() {
        for spec in main_campaign_plan()
            .iter()
            .chain(testing_campaign_plan().iter())
        {
            let room = spec.env.room();
            for st in &spec.new_states {
                let q = st.rx.position;
                assert!(
                    q.x > 0.0 && q.x < room.width_m && q.y > 0.0 && q.y < room.depth_m,
                    "{}: rx ({}, {}) outside {}x{}",
                    spec.name,
                    q.x,
                    q.y,
                    room.width_m,
                    room.depth_m
                );
            }
        }
    }
}
