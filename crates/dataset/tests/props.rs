//! Property-based tests for the ground-truth machinery.

use libra_dataset::ground_truth::{ground_truth, Action, GroundTruthParams};
use libra_dataset::measure::PairMeasurement;
use libra_dataset::Features;
use libra_phy::metrics::{PowerDelayProfile, PDP_BINS};
use libra_phy::{ErrorModel, McsTable};
use proptest::prelude::*;

/// Builds a physically-consistent measurement from an SNR (throughputs
/// and CDRs follow the error model).
fn meas_at(snr: f64, pair: (usize, usize), tof: f64) -> PairMeasurement {
    let table = McsTable::x60();
    let model = ErrorModel::default();
    let mut tput = Vec::new();
    let mut cdr = Vec::new();
    for e in table.iter() {
        let c = model.cdr(e, snr, 1.5);
        cdr.push(c);
        tput.push(e.rate_mbps * c);
    }
    let mut bins = vec![1e-9; PDP_BINS];
    bins[0] = libra_util::db::dbm_to_mw(snr - 74.0);
    bins[6] = bins[0] * 0.1;
    PairMeasurement {
        pair,
        snr_db: snr,
        noise_dbm: -74.0,
        tof_ns: tof,
        pdp: PowerDelayProfile::from_bins(bins),
        tput_mbps: tput.into(),
        cdr: cdr.into(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Utilities are bounded in [0, 1] for any α and overhead choices,
    /// and delays never exceed D_max.
    #[test]
    fn utility_and_delay_bounded(
        snr_init in 5.0f64..35.0,
        snr_old in -10.0f64..35.0,
        snr_best in -10.0f64..35.0,
        alpha in 0.0f64..1.0,
        fat in 1.0f64..12.0,
        ba in 0.5f64..260.0,
    ) {
        let table = McsTable::x60();
        let params = GroundTruthParams { alpha, fat_ms: fat, ba_ms: ba, ..Default::default() };
        let init = meas_at(snr_init, (12, 12), 30.0);
        let old = meas_at(snr_old, (12, 12), 34.0);
        let best = meas_at(snr_best, (10, 14), 40.0);
        let gt = ground_truth(&table, &init, &old, &best, &params);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&gt.u_ra), "u_ra {}", gt.u_ra);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&gt.u_ba), "u_ba {}", gt.u_ba);
        let dmax = 2.0 * 9.0 * fat + ba;
        prop_assert!(gt.delay_ra_ms <= dmax + 1e-9);
        prop_assert!(gt.delay_ba_ms <= dmax + 1e-9);
        prop_assert!(gt.th_ra_mbps <= table.max_rate_mbps() + 1e-9);
        prop_assert!(gt.th_ba_mbps <= table.max_rate_mbps() + 1e-9);
    }

    /// At α = 1 the label is exactly the throughput comparison with the
    /// RA-favouring tie rule.
    #[test]
    fn alpha_one_label_is_throughput_argmax(
        snr_init in 5.0f64..35.0,
        snr_old in -10.0f64..35.0,
        snr_best in -10.0f64..35.0,
    ) {
        let table = McsTable::x60();
        let params = GroundTruthParams::default(); // α = 1
        let init = meas_at(snr_init, (12, 12), 30.0);
        let old = meas_at(snr_old, (12, 12), 34.0);
        let best = meas_at(snr_best, (9, 15), 40.0);
        let gt = ground_truth(&table, &init, &old, &best, &params);
        if gt.th_ra_mbps >= gt.th_ba_mbps {
            prop_assert_eq!(gt.label, Action::Ra);
        } else {
            prop_assert_eq!(gt.label, Action::Ba);
        }
    }

    /// A strictly better best-pair SNR never *decreases* Th(BA).
    #[test]
    fn th_ba_monotone_in_best_snr(
        snr_init in 10.0f64..30.0,
        snr_best in -5.0f64..30.0,
        bump in 0.5f64..10.0,
    ) {
        let table = McsTable::x60();
        let params = GroundTruthParams::default();
        let init = meas_at(snr_init, (12, 12), 30.0);
        let old = meas_at(snr_init - 12.0, (12, 12), 34.0);
        let lo = ground_truth(&table, &init, &old, &meas_at(snr_best, (9, 15), 40.0), &params);
        let hi = ground_truth(
            &table,
            &init,
            &old,
            &meas_at(snr_best + bump, (9, 15), 40.0),
            &params,
        );
        prop_assert!(hi.th_ba_mbps >= lo.th_ba_mbps - 1e-9);
    }

    /// Features extracted from physically-consistent measurements are
    /// always finite (the ±∞ ToF path goes through the sentinel).
    #[test]
    fn features_always_finite(
        snr_a in -10.0f64..35.0,
        snr_b in -10.0f64..35.0,
        tof_a in prop::option::of(10.0f64..120.0),
        tof_b in prop::option::of(10.0f64..120.0),
    ) {
        let a = meas_at(snr_a, (12, 12), tof_a.unwrap_or(f64::INFINITY));
        let b = meas_at(snr_b, (12, 12), tof_b.unwrap_or(f64::INFINITY));
        let f = Features::extract(&a, &b);
        for v in f.to_row() {
            prop_assert!(v.is_finite(), "non-finite feature {v}");
        }
        prop_assert!((-1.0 - 1e9..=1e9).contains(&f.tof_diff_ns));
        prop_assert!((0.0..=1.0).contains(&f.cdr));
    }

    /// Increasing α never flips a label from BA to RA when BA is the
    /// throughput winner and the delay winner simultaneously.
    #[test]
    fn alpha_consistent_when_ba_dominates(alpha in 0.0f64..1.0) {
        let table = McsTable::x60();
        // Old pair dead (slow recovery AND zero throughput), best pair
        // strong and cheap to reach.
        let init = meas_at(25.0, (12, 12), 30.0);
        let old = meas_at(-8.0, (12, 12), 34.0);
        let best = meas_at(24.0, (9, 15), 40.0);
        let params = GroundTruthParams {
            alpha,
            ba_ms: 0.5,
            fat_ms: 10.0,
            ..Default::default()
        };
        let gt = ground_truth(&table, &init, &old, &best, &params);
        prop_assert_eq!(gt.label, Action::Ba, "alpha {}: {:?}", alpha, gt);
    }
}
