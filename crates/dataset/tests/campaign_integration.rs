//! End-to-end campaign generation: emergent class balance should follow
//! the paper's Table 1 trends (run in release mode; see also the
//! `experiments table1` binary).

use libra_dataset::*;
use libra_phy::McsTable;

fn summarize(name: &str, ds: &CampaignDataset) {
    let table = McsTable::x60();
    let params = GroundTruthParams::default();
    println!("== {name} ==");
    for row in ds.summary(&table, &params) {
        println!(
            "{:14} total {:4}  BA {:4}  RA {:4}  positions {:3}",
            row.name, row.total, row.ba, row.ra, row.positions
        );
    }
    println!("NA entries: {}", ds.na_entries.len());
}

#[test]
#[ignore = "slow; run explicitly with --ignored --nocapture in release"]
fn campaign_balance_smoke() {
    let cfg = CampaignConfig::default();
    let main = generate(&main_campaign_plan(), &cfg);
    summarize("main", &main);
    let test = generate(&testing_campaign_plan(), &cfg);
    summarize("testing", &test);
}

#[test]
#[ignore = "slow; run explicitly"]
fn ml_pipeline_smoke() {
    let cfg = CampaignConfig::default();
    let main = generate(&main_campaign_plan(), &cfg);
    let test = generate(&testing_campaign_plan(), &cfg);
    let table = McsTable::x60();
    let params = GroundTruthParams::default();
    let train = main.to_ml(&table, &params);
    let held = test.to_ml(&table, &params);
    for kind in libra_ml::ModelKind::ALL {
        let cv = libra_ml::cross_validate(kind, &train, 5, 2, 7);
        let (acc, f1) = libra_ml::train_test_eval(kind, &train, &held, 9);
        println!(
            "{:4}  cv acc {:.3} f1 {:.3}   cross-building acc {:.3} f1 {:.3}",
            kind.name(),
            cv.accuracy,
            cv.weighted_f1,
            acc,
            f1
        );
    }
    // 3-class
    let train3 = main.to_ml_3class(&table, &params);
    let cv3 = libra_ml::cross_validate(libra_ml::ModelKind::RandomForest, &train3, 5, 2, 7);
    println!("RF 3-class cv acc {:.3}", cv3.accuracy);
}
