//! Property-based tests for beam patterns and codebooks.

use libra_arrays::pattern::wrap_deg;
use libra_arrays::{BeamPattern, Codebook, SideLobe};
use proptest::prelude::*;

proptest! {
    #[test]
    fn wrap_deg_in_range(a in -1e4f64..1e4) {
        let w = wrap_deg(a);
        prop_assert!(w > -180.0 - 1e-9 && w <= 180.0 + 1e-9);
        // Wrapping is idempotent.
        prop_assert!((wrap_deg(w) - w).abs() < 1e-9);
    }

    #[test]
    fn wrap_deg_preserves_angle_mod_360(a in -1e4f64..1e4) {
        let w = wrap_deg(a);
        let diff = (a - w) / 360.0;
        prop_assert!((diff - diff.round()).abs() < 1e-6, "a={a} w={w}");
    }

    #[test]
    fn gain_periodic_in_angle(idx in 0usize..25, a in -180.0f64..180.0) {
        let b = BeamPattern::directional(idx, 10.0, 30.0);
        prop_assert!((b.gain_dbi(a) - b.gain_dbi(a + 360.0)).abs() < 1e-9);
        prop_assert!((b.gain_dbi(a) - b.gain_dbi(a - 720.0)).abs() < 1e-9);
    }

    #[test]
    fn boresight_is_global_maximum_without_side_lobes(
        steer in -60.0f64..60.0,
        bw in 20.0f64..50.0,
        a in -180.0f64..180.0,
    ) {
        let b = BeamPattern::with_side_lobes(steer, bw, vec![]);
        prop_assert!(b.gain_dbi(steer) >= b.gain_dbi(a) - 1e-9);
    }

    #[test]
    fn side_lobe_below_main_lobe(
        offset in 40.0f64..90.0,
        level in -16.0f64..-9.0,
        width in 12.0f64..20.0,
    ) {
        let sl = SideLobe { offset_deg: offset, rel_level_db: level, width_deg: width };
        let b = BeamPattern::with_side_lobes(0.0, 30.0, vec![sl]);
        prop_assert!(b.gain_dbi(offset) < b.gain_dbi(0.0));
    }

    #[test]
    fn mean_gain_between_floor_and_peak(idx in 0usize..25) {
        let b = BeamPattern::directional(idx, -60.0 + 5.0 * idx as f64, 30.0);
        let m = b.mean_gain_dbi();
        prop_assert!(m > -10.0 && m < b.peak_gain_dbi());
    }

    #[test]
    fn closest_beam_is_argmin_over_steering(angle in -90.0f64..90.0) {
        let cb = Codebook::sibeam_25();
        let picked = cb.closest_beam(angle);
        let d_picked = (cb.beam(picked).steer_deg() - angle).abs();
        for (_, b) in cb.iter() {
            prop_assert!(d_picked <= (b.steer_deg() - angle).abs() + 1e-9);
        }
    }

    #[test]
    fn steered_codebook_spans_requested_fan(n in 2usize..40) {
        let cb = Codebook::steered(n, -60.0, 60.0, 25.0, 35.0);
        prop_assert_eq!(cb.len(), n);
        prop_assert!((cb.beam(0).steer_deg() + 60.0).abs() < 1e-9);
        prop_assert!((cb.beam(n - 1).steer_deg() - 60.0).abs() < 1e-9);
        // Steering strictly increasing.
        let steers: Vec<f64> = cb.iter().map(|(_, b)| b.steer_deg()).collect();
        prop_assert!(steers.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cots_codebook_stays_in_field_of_view(n in 2usize..64) {
        let cb = Codebook::cots(n);
        for (_, b) in cb.iter() {
            prop_assert!(b.steer_deg().abs() <= 70.0, "steer {}", b.steer_deg());
            prop_assert!((25.0..=50.0).contains(&b.beamwidth_deg()));
        }
    }

    #[test]
    fn narrower_beam_never_lower_peak_gain(bw1 in 20.0f64..35.0, extra in 1.0f64..15.0) {
        let narrow = BeamPattern::with_side_lobes(0.0, bw1, vec![]);
        let wide = BeamPattern::with_side_lobes(0.0, bw1 + extra, vec![]);
        prop_assert!(narrow.peak_gain_dbi() > wide.peak_gain_dbi());
    }
}
