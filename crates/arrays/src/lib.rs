//! # libra-arrays
//!
//! Phased antenna array codebooks and beam patterns for 60 GHz WLAN
//! simulation.
//!
//! The X60 testbed used by the paper carries a SiBeam 24-element array
//! whose reference codebook defines **25 beam patterns spaced roughly 5°
//! apart in their main lobe, spanning −60°…60° in azimuth, with a 3 dB
//! beamwidth of 25°–35°** (paper §4.1). Crucially, the paper notes the
//! patterns "feature large side lobes in addition to the central main
//! lobe, similar to the beam patterns in COTS 60 GHz devices" — those
//! imperfect side lobes are what makes reflected (NLOS) paths sometimes
//! outperform the LOS path (paper §3, Fig. 3), so this crate models them
//! explicitly.
//!
//! A [`BeamPattern`] is a parametric directional gain function:
//! a Gaussian-shaped main lobe whose peak gain follows the elliptical-beam
//! aperture approximation, plus a small number of deterministic side lobes
//! and a back-lobe floor. A [`Codebook`] is an indexed set of patterns —
//! [`Codebook::sibeam_25`] reproduces the X60 array, and
//! [`Codebook::cots`] builds coarser sector sets like those in COTS
//! 802.11ad radios. [`BeamPattern::quasi_omni`] models the quasi-omni
//! reception mode used during sector sweeps (§2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pattern;

pub use pattern::{BeamPattern, SideLobe};

use serde::{Deserialize, Serialize};

/// Identifier of a beam (sector) within a codebook.
pub type BeamId = usize;

/// An indexed set of beam patterns steerable by the radio in real time
/// (electronic switching in < 1 µs on X60, so switching cost is ignored —
/// the cost of beam *training* is what matters and is modelled in
/// `libra-mac`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Codebook {
    beams: Vec<BeamPattern>,
}

impl Codebook {
    /// Builds a codebook from explicit patterns.
    pub fn new(beams: Vec<BeamPattern>) -> Self {
        assert!(!beams.is_empty(), "a codebook needs at least one beam");
        Self { beams }
    }

    /// The 25-beam SiBeam reference codebook of the X60 testbed:
    /// steering angles −60°…60° in 5° steps, 3 dB beamwidths varying
    /// smoothly between 25° and 35° across the codebook (edge beams are
    /// wider, as on real arrays), and per-beam deterministic side lobes.
    pub fn sibeam_25() -> Self {
        Self::steered(25, -60.0, 60.0, 25.0, 35.0)
    }

    /// A COTS-style sector codebook with `n` sectors.
    ///
    /// Measured COTS codebooks (e.g. the Talon AD7200 patterns
    /// characterised by Steinmetzer et al. [54]) are *irregular*: sector
    /// indices are not a neat angular fan — steering directions carry
    /// large offsets and beamwidths vary wildly. This is modelled with
    /// deterministic per-sector jitter: a ±9° steering perturbation and
    /// beamwidths between 25° and 50°. The irregularity is what makes a
    /// noisy sector sweep *costly* (picking a neighbouring index can
    /// lose several dB) — the mechanism behind the §3 sector-flapping
    /// throughput losses.
    pub fn cots(n: usize) -> Self {
        assert!(n >= 1);
        let beams = (0..n)
            .map(|i| {
                let frac = if n == 1 {
                    0.5
                } else {
                    i as f64 / (n - 1) as f64
                };
                let nominal = -60.0 + 120.0 * frac;
                let h = pattern::wrap_deg((i as f64 * 47.0).sin() * 360.0);
                let steer = nominal + 9.0 * (h / 180.0);
                let bw = 25.0 + 25.0 * (0.5 + 0.5 * (i as f64 * 1.7).cos());
                BeamPattern::directional(i, steer, bw)
            })
            .collect();
        Self::new(beams)
    }

    /// Generic steered codebook: `n` beams with steering angles evenly
    /// spaced over `[first_deg, last_deg]` and beamwidths interpolating
    /// from `bw_center_deg` at broadside to `bw_edge_deg` at the edges.
    pub fn steered(
        n: usize,
        first_deg: f64,
        last_deg: f64,
        bw_center_deg: f64,
        bw_edge_deg: f64,
    ) -> Self {
        assert!(n >= 1);
        let beams = (0..n)
            .map(|i| {
                let frac = if n == 1 {
                    0.5
                } else {
                    i as f64 / (n - 1) as f64
                };
                let steer = first_deg + (last_deg - first_deg) * frac;
                // Beams steered away from broadside broaden (cos-scan loss).
                let edge_frac = (steer.abs() / last_deg.abs().max(1.0)).min(1.0);
                let bw = bw_center_deg + (bw_edge_deg - bw_center_deg) * edge_frac;
                BeamPattern::directional(i, steer, bw)
            })
            .collect();
        Self::new(beams)
    }

    /// Number of beams in the codebook (the `N` of the O(N)/O(N²) beam
    /// training complexity discussion in §2).
    pub fn len(&self) -> usize {
        self.beams.len()
    }

    /// True when the codebook is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.beams.is_empty()
    }

    /// The pattern of beam `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn beam(&self, id: BeamId) -> &BeamPattern {
        &self.beams[id]
    }

    /// Iterator over `(id, pattern)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BeamId, &BeamPattern)> {
        self.beams.iter().enumerate()
    }

    /// The beam whose steering angle is closest to `angle_deg` — the beam
    /// an ideal geometry-aware oracle would pick for a LOS path at that
    /// bearing.
    pub fn closest_beam(&self, angle_deg: f64) -> BeamId {
        self.beams
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = (a.steer_deg() - angle_deg).abs();
                let db = (b.steer_deg() - angle_deg).abs();
                da.partial_cmp(&db).expect("angles are finite")
            })
            .map(|(i, _)| i)
            .expect("codebook is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibeam_has_25_beams_5_deg_apart() {
        let cb = Codebook::sibeam_25();
        assert_eq!(cb.len(), 25);
        for (i, b) in cb.iter() {
            let expect = -60.0 + 5.0 * i as f64;
            assert!((b.steer_deg() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sibeam_beamwidths_in_paper_range() {
        let cb = Codebook::sibeam_25();
        for (_, b) in cb.iter() {
            assert!(b.beamwidth_deg() >= 25.0 - 1e-9 && b.beamwidth_deg() <= 35.0 + 1e-9);
        }
    }

    #[test]
    fn edge_beams_are_wider_than_center() {
        let cb = Codebook::sibeam_25();
        assert!(cb.beam(0).beamwidth_deg() > cb.beam(12).beamwidth_deg());
    }

    #[test]
    fn closest_beam_picks_matching_steer() {
        let cb = Codebook::sibeam_25();
        assert_eq!(cb.closest_beam(0.0), 12);
        assert_eq!(cb.closest_beam(-60.0), 0);
        // 57° is 2° from the 55° beam (id 23) and 3° from the 60° beam.
        assert_eq!(cb.closest_beam(57.0), 23);
        assert_eq!(cb.closest_beam(100.0), 24);
    }

    #[test]
    fn cots_codebook_is_coarser() {
        let cb = Codebook::cots(8);
        assert_eq!(cb.len(), 8);
        assert!(cb.beam(4).beamwidth_deg() >= 35.0);
    }

    #[test]
    #[should_panic(expected = "at least one beam")]
    fn empty_codebook_rejected() {
        Codebook::new(vec![]);
    }
}
