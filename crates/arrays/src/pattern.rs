//! Parametric directional beam patterns.
//!
//! A pattern maps an azimuth angle (degrees, in the array's local frame,
//! 0° = broadside) to an antenna gain in dBi. The model is:
//!
//! * **Main lobe** — Gaussian in dB: `G(θ) = G_max − 3·(Δ/(bw/2))²` where
//!   `Δ` is the angular offset from the steering direction; at `Δ = bw/2`
//!   the gain is exactly 3 dB down, matching the definition of a 3 dB
//!   beamwidth.
//! * **Peak gain** — elliptical-beam aperture approximation
//!   `G_max = 10·log10(41253 / (bw_az · bw_el))` with a fixed 30°
//!   elevation beamwidth (the SiBeam array steers only in azimuth).
//! * **Side lobes** — two or three deterministic lobes per beam at offsets
//!   of 35°–95° from the main lobe and 9–16 dB below the peak, derived
//!   from the beam index with a fixed hash so patterns are reproducible.
//!   The paper stresses that real codebook patterns have "large side
//!   lobes"; these drive the NLOS-beats-LOS cases.
//! * **Floor** — a −10 dBi back-lobe floor (nothing is perfectly null).
//!
//! Gains from different lobes combine in the linear power domain.

use libra_util::db::{db_to_linear, linear_to_db};
use serde::{Deserialize, Serialize};

/// Solid angle of a sphere in square degrees (for aperture gain).
const SPHERE_SQ_DEG: f64 = 41_253.0;

/// Fixed elevation beamwidth of the azimuth-steered array, in degrees.
const ELEVATION_BW_DEG: f64 = 30.0;

/// Gain floor of the pattern (back lobes / leakage), in dBi.
const FLOOR_DBI: f64 = -10.0;

/// A secondary lobe of an imperfect beam pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SideLobe {
    /// Offset of the lobe peak from the main steering direction, degrees
    /// (signed).
    pub offset_deg: f64,
    /// Lobe peak level relative to the main-lobe peak, dB (negative).
    pub rel_level_db: f64,
    /// 3 dB width of the side lobe, degrees.
    pub width_deg: f64,
}

/// A directional (or quasi-omni) antenna gain pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BeamPattern {
    steer_deg: f64,
    beamwidth_deg: f64,
    peak_gain_dbi: f64,
    side_lobes: Vec<SideLobe>,
    /// Quasi-omni patterns skip the main-lobe shaping and return a nearly
    /// flat low gain.
    quasi_omni: bool,
    /// Lazily computed azimuth-mean gain (not part of identity).
    #[serde(skip)]
    mean_gain_cache: std::sync::OnceLock<f64>,
}

impl PartialEq for BeamPattern {
    fn eq(&self, other: &Self) -> bool {
        self.steer_deg == other.steer_deg
            && self.beamwidth_deg == other.beamwidth_deg
            && self.peak_gain_dbi == other.peak_gain_dbi
            && self.side_lobes == other.side_lobes
            && self.quasi_omni == other.quasi_omni
    }
}

impl BeamPattern {
    /// A directional pattern steered at `steer_deg` with the given 3 dB
    /// beamwidth. `index` seeds the deterministic side-lobe layout, so two
    /// beams with the same steering/width but different indices differ in
    /// their imperfections (as adjacent codebook entries do on hardware).
    pub fn directional(index: usize, steer_deg: f64, beamwidth_deg: f64) -> Self {
        assert!(beamwidth_deg > 0.0, "beamwidth must be positive");
        let peak_gain_dbi = 10.0 * (SPHERE_SQ_DEG / (beamwidth_deg * ELEVATION_BW_DEG)).log10();
        Self {
            steer_deg,
            beamwidth_deg,
            peak_gain_dbi,
            side_lobes: derive_side_lobes(index, steer_deg),
            quasi_omni: false,
            mean_gain_cache: std::sync::OnceLock::new(),
        }
    }

    /// A directional pattern with explicit side lobes (for tests and for
    /// building pathological codebooks).
    pub fn with_side_lobes(steer_deg: f64, beamwidth_deg: f64, side_lobes: Vec<SideLobe>) -> Self {
        assert!(beamwidth_deg > 0.0, "beamwidth must be positive");
        let peak_gain_dbi = 10.0 * (SPHERE_SQ_DEG / (beamwidth_deg * ELEVATION_BW_DEG)).log10();
        Self {
            steer_deg,
            beamwidth_deg,
            peak_gain_dbi,
            side_lobes,
            quasi_omni: false,
            mean_gain_cache: std::sync::OnceLock::new(),
        }
    }

    /// The quasi-omni pattern used during sector sweeps: ~2 dBi flat with
    /// a gentle cosine ripple (real quasi-omni modes are not perfectly
    /// flat, which adds realistic noise to SLS measurements).
    pub fn quasi_omni() -> Self {
        Self {
            steer_deg: 0.0,
            beamwidth_deg: 360.0,
            peak_gain_dbi: 2.0,
            side_lobes: Vec::new(),
            quasi_omni: true,
            mean_gain_cache: std::sync::OnceLock::new(),
        }
    }

    /// Steering direction of the main lobe, degrees.
    pub fn steer_deg(&self) -> f64 {
        self.steer_deg
    }

    /// 3 dB beamwidth of the main lobe, degrees.
    pub fn beamwidth_deg(&self) -> f64 {
        self.beamwidth_deg
    }

    /// Peak (boresight) gain, dBi.
    pub fn peak_gain_dbi(&self) -> f64 {
        self.peak_gain_dbi
    }

    /// The deterministic side lobes of this pattern.
    pub fn side_lobes(&self) -> &[SideLobe] {
        &self.side_lobes
    }

    /// True for the quasi-omni reception pattern.
    pub fn is_quasi_omni(&self) -> bool {
        self.quasi_omni
    }

    /// Mean gain over all azimuths (linear average expressed in dBi) —
    /// the effective gain toward a diffuse (angularly spread) source.
    /// Computed once and cached (the pattern is immutable).
    pub fn mean_gain_dbi(&self) -> f64 {
        *self.mean_gain_cache.get_or_init(|| {
            let n = 360;
            let total: f64 = (0..n)
                .map(|i| db_to_linear(self.gain_dbi(-180.0 + 360.0 * i as f64 / n as f64)))
                .sum();
            linear_to_db(total / n as f64)
        })
    }

    /// Antenna gain toward azimuth `angle_deg`, in dBi.
    ///
    /// Angles are wrapped to `(-180°, 180°]`. Contributions of the main
    /// lobe, each side lobe, and the back-lobe floor are summed in the
    /// linear power domain.
    pub fn gain_dbi(&self, angle_deg: f64) -> f64 {
        if self.quasi_omni {
            // Flat 2 dBi with ±1 dB ripple (4 periods over the circle).
            let ripple = (4.0 * angle_deg.to_radians()).cos();
            return self.peak_gain_dbi - 1.0 + ripple;
        }
        let delta = wrap_deg(angle_deg - self.steer_deg);
        let mut linear = db_to_linear(FLOOR_DBI);
        linear += db_to_linear(self.lobe_gain_db(delta, 0.0, 0.0, self.beamwidth_deg));
        for sl in &self.side_lobes {
            linear += db_to_linear(self.lobe_gain_db(
                delta,
                sl.offset_deg,
                sl.rel_level_db,
                sl.width_deg,
            ));
        }
        linear_to_db(linear)
    }

    /// Gain of one Gaussian lobe (in dB) at main-lobe offset `delta`.
    fn lobe_gain_db(&self, delta: f64, lobe_offset: f64, rel_level_db: f64, width: f64) -> f64 {
        let d = wrap_deg(delta - lobe_offset);
        let half = width / 2.0;
        let rolloff = 3.0 * (d / half) * (d / half);
        // Cap each lobe's rolloff at 40 dB below its own peak so the sum
        // stays numerically sane; the floor term dominates beyond that.
        self.peak_gain_dbi + rel_level_db - rolloff.min(40.0)
    }
}

/// Wraps an angle to `(-180°, 180°]`.
pub fn wrap_deg(angle: f64) -> f64 {
    let mut a = angle % 360.0;
    if a <= -180.0 {
        a += 360.0;
    } else if a > 180.0 {
        a -= 360.0;
    }
    a
}

/// Deterministic per-beam side-lobe layout.
///
/// Uses a small integer hash of the beam index so the "imperfections" are
/// stable across runs but vary across the codebook. Side lobes lean toward
/// the broadside-opposite direction, as grating lobes of steered arrays do.
fn derive_side_lobes(index: usize, steer_deg: f64) -> Vec<SideLobe> {
    let h = fxhash(index as u64);
    let n = 2 + (h % 2) as usize; // 2 or 3 side lobes
    let mut lobes = Vec::with_capacity(n);
    for k in 0..n {
        let hk = fxhash(h ^ ((k as u64 + 1) * 0x9e37_79b9));
        // Offset magnitude 35°..95°, on alternating sides but biased away
        // from the steering direction (grating-lobe-like).
        let mag = 35.0 + (hk % 61) as f64; // 35..95
        let side = if k % 2 == 0 {
            -steer_deg.signum_or_one()
        } else {
            steer_deg.signum_or_one()
        };
        let offset = side * mag;
        let level = -(9.0 + ((hk >> 8) % 8) as f64); // −9..−16 dB
        let width = 12.0 + ((hk >> 16) % 9) as f64; // 12°..20°
        lobes.push(SideLobe {
            offset_deg: offset,
            rel_level_db: level,
            width_deg: width,
        });
    }
    lobes
}

trait SignumOrOne {
    fn signum_or_one(self) -> f64;
}
impl SignumOrOne for f64 {
    fn signum_or_one(self) -> f64 {
        if self == 0.0 {
            1.0
        } else {
            self.signum()
        }
    }
}

fn fxhash(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_gain_is_peak_gain() {
        let b = BeamPattern::directional(0, 0.0, 30.0);
        // Side lobes are far away; boresight ≈ peak (within the floor's
        // negligible contribution).
        assert!((b.gain_dbi(0.0) - b.peak_gain_dbi()).abs() < 0.3);
    }

    #[test]
    fn peak_gain_matches_aperture_formula() {
        let b = BeamPattern::directional(0, 0.0, 30.0);
        let expect = 10.0 * (41_253.0f64 / (30.0 * 30.0)).log10(); // ≈ 16.6 dBi
        assert!((b.peak_gain_dbi() - expect).abs() < 1e-9);
        assert!(b.peak_gain_dbi() > 16.0 && b.peak_gain_dbi() < 17.0);
    }

    #[test]
    fn gain_is_3db_down_at_half_beamwidth() {
        let b = BeamPattern::with_side_lobes(0.0, 30.0, vec![]);
        let drop = b.gain_dbi(0.0) - b.gain_dbi(15.0);
        assert!((drop - 3.0).abs() < 0.2, "3 dB point off: {drop}");
    }

    #[test]
    fn narrower_beam_has_higher_gain() {
        let narrow = BeamPattern::directional(0, 0.0, 25.0);
        let wide = BeamPattern::directional(0, 0.0, 35.0);
        assert!(narrow.peak_gain_dbi() > wide.peak_gain_dbi());
    }

    #[test]
    fn steering_moves_the_main_lobe() {
        let b = BeamPattern::with_side_lobes(40.0, 30.0, vec![]);
        assert!(b.gain_dbi(40.0) > b.gain_dbi(0.0));
        assert!(b.gain_dbi(40.0) > b.gain_dbi(80.0));
    }

    #[test]
    fn side_lobe_creates_local_bump() {
        let sl = SideLobe {
            offset_deg: 60.0,
            rel_level_db: -10.0,
            width_deg: 15.0,
        };
        let b = BeamPattern::with_side_lobes(0.0, 30.0, vec![sl]);
        let at_lobe = b.gain_dbi(60.0);
        let beside_lobe = b.gain_dbi(40.0);
        assert!(
            at_lobe > beside_lobe,
            "side lobe bump missing: {at_lobe} vs {beside_lobe}"
        );
        assert!((b.gain_dbi(0.0) - at_lobe) > 8.0 && (b.gain_dbi(0.0) - at_lobe) < 12.0);
    }

    #[test]
    fn gain_never_below_floor() {
        let b = BeamPattern::directional(3, -55.0, 28.0);
        for i in -180..=180 {
            assert!(b.gain_dbi(i as f64) >= FLOOR_DBI - 1e-9);
        }
    }

    #[test]
    fn derived_side_lobes_are_deterministic() {
        let a = BeamPattern::directional(7, 10.0, 30.0);
        let b = BeamPattern::directional(7, 10.0, 30.0);
        assert_eq!(a.side_lobes(), b.side_lobes());
        let c = BeamPattern::directional(8, 10.0, 30.0);
        assert_ne!(a.side_lobes(), c.side_lobes());
    }

    #[test]
    fn derived_side_lobes_within_spec() {
        for idx in 0..25 {
            let b = BeamPattern::directional(idx, 0.0, 30.0);
            assert!(!b.side_lobes().is_empty());
            for sl in b.side_lobes() {
                assert!(sl.offset_deg.abs() >= 35.0 && sl.offset_deg.abs() <= 95.0);
                assert!(sl.rel_level_db <= -9.0 && sl.rel_level_db >= -16.0);
                assert!(sl.width_deg >= 12.0 && sl.width_deg <= 20.0);
            }
        }
    }

    #[test]
    fn quasi_omni_is_roughly_flat() {
        let q = BeamPattern::quasi_omni();
        assert!(q.is_quasi_omni());
        let gains: Vec<f64> = (-180..180).map(|a| q.gain_dbi(a as f64)).collect();
        let min = gains.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min <= 2.0 + 1e-9, "ripple too large: {}", max - min);
        assert!(max <= 3.0 && min >= 0.0);
    }

    #[test]
    fn wrap_deg_wraps() {
        assert_eq!(wrap_deg(190.0), -170.0);
        assert_eq!(wrap_deg(-190.0), 170.0);
        assert_eq!(wrap_deg(360.0), 0.0);
        assert_eq!(wrap_deg(180.0), 180.0);
        assert_eq!(wrap_deg(-180.0), 180.0);
    }
}
