//! Deterministic `ScenarioSpec` mutation under physical bounds.
//!
//! One mutation = 1..=`max_ops` randomly chosen operators applied in
//! sequence, each validated against [`ScenarioBounds`] before it is
//! accepted. An operator that cannot produce a valid spec within a few
//! attempts reverts to the pre-op spec and is skipped, so `mutate`
//! always returns a spec that passes [`ScenarioSpec::validate`] when its
//! input did.
//!
//! Determinism: the whole mutation is a pure function of `(spec, seed)`
//! — a single `SmallRng` stream drives every draw, so the same seed
//! reproduces the same mutant bitwise, which the property suite checks
//! through `binser` bytes.

use libra_channel::{
    Blocker, BlockerPlacement, Environment, Interferer, Point, Pose, ScenarioBounds,
};
use libra_dataset::{Impairment, NewStateSpec, ScenarioSpec};
use libra_util::rng::{rng_from_seed, standard_normal};
use rand::Rng;

/// The scenario mutator.
#[derive(Debug, Clone)]
pub struct Mutator {
    /// Physical bounds every mutant must satisfy.
    pub bounds: ScenarioBounds,
    /// Maximum operators applied per mutation.
    pub max_ops: usize,
    /// Cap on new-state growth via state cloning (tighter than the
    /// physical `bounds.max_states` to keep candidates cheap to score).
    pub max_states: usize,
    /// Attempts per operator before it is skipped.
    pub attempts: usize,
}

impl Default for Mutator {
    fn default() -> Self {
        Self {
            bounds: ScenarioBounds::default(),
            max_ops: 3,
            max_states: 8,
            attempts: 8,
        }
    }
}

/// Environments the mutator may swap a scenario into: the full main
/// catalogue plus the L-corridor extension. Swapping the environment is
/// how the search perturbs room *geometry and materials* — rooms are a
/// fixed catalogue, so geometry moves by re-homing the scenario (with
/// positions rescaled to the new bounding box) rather than by bending
/// walls.
const SWAP_ENVS: [Environment; 7] = [
    Environment::Lobby,
    Environment::Lab,
    Environment::ConferenceRoom,
    Environment::CorridorNarrow,
    Environment::CorridorMedium,
    Environment::CorridorWide,
    Environment::LCorridor,
];

const N_OPS: usize = 13;

impl Mutator {
    /// Mutates `spec` deterministically from `seed`. The returned spec
    /// keeps the input's name — callers rename candidates before
    /// scoring, since names seed the campaign generator.
    pub fn mutate(&self, spec: &ScenarioSpec, seed: u64) -> ScenarioSpec {
        let mut rng = rng_from_seed(seed);
        let mut out = spec.clone();
        let n_ops = 1 + rng.gen_range(0..self.max_ops.max(1));
        for _ in 0..n_ops {
            let op = rng.gen_range(0..N_OPS);
            self.apply_op(&mut out, op, &mut rng);
        }
        out
    }

    /// Applies one operator with retry-until-valid; reverts on failure.
    fn apply_op(&self, spec: &mut ScenarioSpec, op: usize, rng: &mut impl Rng) {
        for _ in 0..self.attempts {
            let mut cand = spec.clone();
            let changed = match op {
                0 => self.jiggle_rx(&mut cand, rng),
                1 => self.rotate_rx(&mut cand, rng),
                2 => self.jiggle_tx(&mut cand, rng),
                3 => self.perturb_blocker(&mut cand, rng),
                4 => self.add_blocker(&mut cand, rng),
                5 => self.drop_blocker(&mut cand, rng),
                6 => self.perturb_interferer(&mut cand, rng),
                7 => self.add_interferer(&mut cand, rng),
                8 => self.drop_interferer(&mut cand, rng),
                9 => self.clone_state(&mut cand, rng),
                10 => self.drop_state(&mut cand, rng),
                11 => self.swap_env(&mut cand, rng),
                _ => self.waypoint_path(&mut cand, rng),
            };
            if changed && cand.validate(&self.bounds).is_ok() {
                *spec = cand;
                return;
            }
        }
    }

    fn pick_state(spec: &ScenarioSpec, rng: &mut impl Rng) -> usize {
        rng.gen_range(0..spec.new_states.len())
    }

    /// Translates one Rx pose (a random new state, or the initial state)
    /// by a Gaussian step.
    fn jiggle_rx(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let dx = 0.5 * standard_normal(rng);
        let dy = 0.5 * standard_normal(rng);
        let n = spec.new_states.len();
        let which = rng.gen_range(0..=n);
        let pose = if which == n {
            &mut spec.initial_rx
        } else {
            &mut spec.new_states[which].rx
        };
        pose.position = pose.position.add(Point::new(dx, dy));
        true
    }

    /// Turns one new-state Rx by up to ±45°.
    fn rotate_rx(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let i = Self::pick_state(spec, rng);
        let delta = uniform(rng, -45.0, 45.0);
        spec.new_states[i].rx.orientation_deg += delta;
        true
    }

    /// Small Gaussian step of the Tx (APs move less than clients).
    fn jiggle_tx(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let dx = 0.3 * standard_normal(rng);
        let dy = 0.3 * standard_normal(rng);
        spec.tx.position = spec.tx.position.add(Point::new(dx, dy));
        true
    }

    /// Moves one blocker and tweaks its disc/attenuation within bounds.
    fn perturb_blocker(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let i = Self::pick_state(spec, rng);
        let st = &mut spec.new_states[i];
        if st.blockers.is_empty() {
            return false;
        }
        let bi = rng.gen_range(0..st.blockers.len());
        let b = &mut st.blockers[bi];
        b.position = b.position.add(Point::new(
            0.3 * standard_normal(rng),
            0.3 * standard_normal(rng),
        ));
        let (rlo, rhi) = self.bounds.blocker_radius_m;
        b.radius_m = (b.radius_m + 0.05 * standard_normal(rng)).clamp(rlo, rhi);
        let (alo, ahi) = self.bounds.blocker_attenuation_db;
        b.attenuation_db = (b.attenuation_db + 4.0 * standard_normal(rng)).clamp(alo, ahi);
        true
    }

    /// Drops a human on the Tx→Rx line of one state (one of the three
    /// canonical placements, with a random lateral offset).
    fn add_blocker(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let i = Self::pick_state(spec, rng);
        let tx = spec.tx.position;
        let st = &mut spec.new_states[i];
        if st.blockers.len() >= self.bounds.max_blockers {
            return false;
        }
        let placement = BlockerPlacement::ALL[rng.gen_range(0..3)];
        let lateral = uniform(rng, -0.3, 0.3);
        st.blockers
            .push(placement.blocker(tx, st.rx.position, lateral));
        true
    }

    fn drop_blocker(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let i = Self::pick_state(spec, rng);
        let st = &mut spec.new_states[i];
        if st.blockers.is_empty() {
            return false;
        }
        let j = rng.gen_range(0..st.blockers.len());
        st.blockers.remove(j);
        true
    }

    /// Moves one interferer and tweaks its EIRP/duty within bounds.
    fn perturb_interferer(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let i = Self::pick_state(spec, rng);
        let st = &mut spec.new_states[i];
        if st.interferers.is_empty() {
            return false;
        }
        let ii = rng.gen_range(0..st.interferers.len());
        let it = &mut st.interferers[ii];
        it.position = it
            .position
            .add(Point::new(standard_normal(rng), standard_normal(rng)));
        let (elo, ehi) = self.bounds.interferer_eirp_dbm;
        it.eirp_dbm = (it.eirp_dbm + 3.0 * standard_normal(rng)).clamp(elo, ehi);
        it.duty_cycle = uniform(rng, 0.25, 1.0);
        true
    }

    /// Adds a hidden terminal 2–5 m from one state's Rx at a random
    /// bearing.
    fn add_interferer(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let i = Self::pick_state(spec, rng);
        let st = &mut spec.new_states[i];
        if st.interferers.len() >= self.bounds.max_interferers {
            return false;
        }
        let bearing = uniform(rng, 0.0, std::f64::consts::TAU);
        let dist = uniform(rng, 2.0, 5.0);
        let (elo, ehi) = self.bounds.interferer_eirp_dbm;
        st.interferers.push(Interferer {
            position: st
                .rx
                .position
                .add(Point::new(dist * bearing.cos(), dist * bearing.sin())),
            eirp_dbm: uniform(rng, elo.max(0.0), ehi),
            duty_cycle: uniform(rng, 0.5, 1.0),
        });
        true
    }

    fn drop_interferer(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let i = Self::pick_state(spec, rng);
        let st = &mut spec.new_states[i];
        if st.interferers.is_empty() {
            return false;
        }
        let j = rng.gen_range(0..st.interferers.len());
        st.interferers.remove(j);
        true
    }

    /// Duplicates one state with a jiggled Rx — mobility grows by
    /// revisiting a hard region from a nearby pose.
    fn clone_state(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        if spec.new_states.len() >= self.max_states.min(self.bounds.max_states) {
            return false;
        }
        let i = Self::pick_state(spec, rng);
        let mut st: NewStateSpec = spec.new_states[i].clone();
        st.rx.position = st.rx.position.add(Point::new(
            0.4 * standard_normal(rng),
            0.4 * standard_normal(rng),
        ));
        st.position_key.push_str("-m");
        spec.new_states.push(st);
        true
    }

    /// Expands the straight hop into one state into a piecewise-linear
    /// **waypoint path**: 1..=3 intermediate Rx poses lerped between
    /// the preceding pose (the initial state for the first new state)
    /// and the target, each pushed laterally off the line by a small
    /// Gaussian jiggle. The intermediates inherit the target's
    /// blockers and interferers, so the impairment is *approached*
    /// through mobility rather than teleported into — the mutation the
    /// search uses to grow realistic walking paths.
    ///
    /// Growth is capped by `max_states` (and the physical
    /// `bounds.max_states`); a lerp that leaves the room — possible in
    /// the non-convex L-corridor — fails validation in `apply_op` and
    /// reverts like any other bad candidate.
    pub fn waypoint_path(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let cap = self.max_states.min(self.bounds.max_states);
        if spec.new_states.len() >= cap {
            return false;
        }
        let i = Self::pick_state(spec, rng);
        let k = (1 + rng.gen_range(0..3)).min(cap - spec.new_states.len());
        let from = if i == 0 {
            spec.initial_rx
        } else {
            spec.new_states[i - 1].rx
        };
        let to = spec.new_states[i].rx;
        let template = spec.new_states[i].clone();
        let mut waypoints = Vec::with_capacity(k);
        for j in 1..=k {
            let t = j as f64 / (k + 1) as f64;
            let mut st = template.clone();
            st.rx = Pose::new(
                Point::new(
                    from.position.x
                        + t * (to.position.x - from.position.x)
                        + 0.2 * standard_normal(rng),
                    from.position.y
                        + t * (to.position.y - from.position.y)
                        + 0.2 * standard_normal(rng),
                ),
                from.orientation_deg + t * (to.orientation_deg - from.orientation_deg),
            );
            st.kind = Impairment::Displacement;
            st.position_key = format!("{}-wp{j}", template.position_key);
            waypoints.push(st);
        }
        spec.new_states.splice(i..i, waypoints);
        true
    }

    fn drop_state(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        if spec.new_states.len() <= 1 {
            return false;
        }
        let i = Self::pick_state(spec, rng);
        spec.new_states.remove(i);
        true
    }

    /// Re-homes the scenario in a different room from the catalogue,
    /// rescaling every position to the new bounding box. This is the
    /// geometry/material mutation: wall lengths, shapes (the L-corridor)
    /// and materials (drywall vs metal vs brick) all change at once.
    fn swap_env(&self, spec: &mut ScenarioSpec, rng: &mut impl Rng) -> bool {
        let candidates: Vec<Environment> = SWAP_ENVS
            .iter()
            .copied()
            .filter(|&e| e != spec.env)
            .collect();
        let new_env = candidates[rng.gen_range(0..candidates.len())];
        let old = spec.env.room();
        let new = new_env.room();
        let sx = new.width_m / old.width_m;
        let sy = new.depth_m / old.depth_m;
        let rescale = |p: Point| Point::new(p.x * sx, p.y * sy);
        spec.env = new_env;
        spec.tx.position = rescale(spec.tx.position);
        spec.for_each_rx_pose_mut(|pose| pose.position = rescale(pose.position));
        spec.for_each_blocker_mut(|b: &mut Blocker| b.position = rescale(b.position));
        spec.for_each_interferer_mut(|i: &mut Interferer| i.position = rescale(i.position));
        true
    }
}

fn uniform(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_dataset::main_campaign_plan;
    use libra_util::binser;

    fn base() -> ScenarioSpec {
        main_campaign_plan()
            .into_iter()
            .find(|s| s.name == "lobby-blk0")
            .expect("lobby-blk0 in plan")
    }

    #[test]
    fn mutants_stay_valid() {
        let m = Mutator::default();
        let spec = base();
        for seed in 0..32u64 {
            let mutant = m.mutate(&spec, seed);
            mutant
                .validate(&m.bounds)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn same_seed_same_mutant() {
        let m = Mutator::default();
        let spec = base();
        let a = binser::to_bytes(&m.mutate(&spec, 7)).unwrap();
        let b = binser::to_bytes(&m.mutate(&spec, 7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn waypoint_path_inserts_bounded_displacement_states() {
        let m = Mutator::default();
        let spec = base();
        let mut rng = rng_from_seed(0x3A7);
        let mut grown = spec.clone();
        assert!(m.waypoint_path(&mut grown, &mut rng));
        let added = grown.new_states.len() - spec.new_states.len();
        assert!((1..=3).contains(&added), "added {added} waypoints");
        assert!(grown.new_states.len() <= m.max_states.min(m.bounds.max_states));
        let waypoints: Vec<_> = grown
            .new_states
            .iter()
            .filter(|s| s.position_key.contains("-wp"))
            .collect();
        assert_eq!(waypoints.len(), added);
        for wp in waypoints {
            assert_eq!(wp.kind, Impairment::Displacement);
        }
        // The target state itself survives the splice untouched.
        let keys = |s: &ScenarioSpec| {
            s.new_states
                .iter()
                .map(|st| st.position_key.clone())
                .collect::<Vec<_>>()
        };
        for key in keys(&spec) {
            assert!(keys(&grown).contains(&key), "lost original state {key}");
        }
    }

    #[test]
    fn waypoint_path_refuses_at_the_state_cap() {
        let mut m = Mutator::default();
        let mut spec = base();
        m.max_states = spec.new_states.len();
        let mut rng = rng_from_seed(1);
        assert!(!m.waypoint_path(&mut spec, &mut rng));
        assert_eq!(spec.new_states.len(), m.max_states);
    }

    #[test]
    fn mutation_changes_something_eventually() {
        let m = Mutator::default();
        let spec = base();
        let orig = binser::to_bytes(&spec).unwrap();
        let changed = (0..16u64).any(|s| binser::to_bytes(&m.mutate(&spec, s)).unwrap() != orig);
        assert!(changed, "16 mutations left the spec untouched");
    }
}
