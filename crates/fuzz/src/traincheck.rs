//! The regret-close measurement: does retraining on the exported hard
//! cases actually close the regret gap the fuzzer found?
//!
//! This is the closing arc of ROADMAP item 5. The fuzzer *finds* hard
//! scenarios and `export_to_campaign` *folds* them into a training
//! campaign; [`retrain_close`] measures whether that loop pays off.
//! It scores every corpus entry against a baseline classifier, grows
//! the base curriculum with the worst offenders, retrains from the same
//! seed, rescores, and reports the per-entry and aggregate regret
//! deltas. Everything is a pure function of its inputs — two runs with
//! the same corpus, base dataset, and seeds produce bitwise identical
//! reports at any thread count.

use crate::corpus::{export_to_campaign, CorpusEntry};
use libra::LibraClassifier;
use libra_dataset::{CampaignDataset, GroundTruthParams};
use libra_obs as obs;
use libra_phy::McsTable;
use libra_util::par::par_map;
use libra_util::rng::rng_from_seed;
use std::collections::BTreeSet;

/// One corpus entry's before/after regret under the retrained model.
#[derive(Debug, Clone)]
pub struct TrainCheckRow {
    /// Scenario name.
    pub name: String,
    /// Max relative regret under the baseline classifier.
    pub before_max: f64,
    /// Max relative regret under the retrained classifier.
    pub after_max: f64,
    /// `after_max - before_max`; negative means the retrain helped.
    pub delta: f64,
    /// Whether this scenario's rows entered the retraining dataset.
    pub exported: bool,
}

/// The full regret-close report of one retraining round.
#[derive(Debug, Clone)]
pub struct TrainCheck {
    /// Per-entry rows, in corpus order.
    pub rows: Vec<TrainCheckRow>,
    /// Dataset rows (entries + NA twins) the export appended.
    pub exported_rows: usize,
    /// Training rows the retrained model saw (base + exported).
    pub train_rows: usize,
    /// Mean of `before_max` over all entries.
    pub mean_before: f64,
    /// Mean of `after_max` over all entries.
    pub mean_after: f64,
    /// Entries whose max regret fell by more than the tolerance.
    pub improved: usize,
    /// Entries whose max regret rose by more than the tolerance.
    pub worsened: usize,
}

impl TrainCheck {
    /// `mean_after - mean_before`: the aggregate regret the retrain
    /// closed (negative) or opened (positive).
    pub fn mean_delta(&self) -> f64 {
        self.mean_after - self.mean_before
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / f64::from(n)
    }
}

fn scenario_names(ds: &CampaignDataset) -> BTreeSet<String> {
    ds.entries
        .iter()
        .chain(ds.na_entries.iter())
        .map(|e| e.scenario.clone())
        .collect()
}

/// Runs one export → retrain → replay round and measures the regret
/// delta on every corpus entry.
///
/// `base` is the curriculum the baseline was trained on (for the
/// default tooling, [`crate::seeds::reduced_campaign`]); the `top`
/// worst-regret entries not already present are folded in via
/// [`export_to_campaign`], a fresh classifier trains from `train_seed`,
/// and both models rescore the whole corpus. Entries beyond `top` (or
/// already present in `base`) still appear in the report — they measure
/// generalization rather than memorization.
pub fn retrain_close(
    entries: &[CorpusEntry],
    base: &CampaignDataset,
    baseline: &LibraClassifier,
    top: usize,
    train_seed: u64,
    tolerance: f64,
) -> TrainCheck {
    let _span = obs::span("fuzz.traincheck");
    let before: Vec<f64> = par_map(entries, |_, e| e.rescore(baseline).max());

    let base_names = scenario_names(base);
    let mut grown = base.clone();
    let exported_rows = export_to_campaign(entries, top, &mut grown);
    let grown_names = scenario_names(&grown);

    let data = grown.to_ml_3class(&McsTable::x60(), &GroundTruthParams::default());
    let train_rows = data.len();
    let mut rng = rng_from_seed(train_seed);
    let retrained = LibraClassifier::train(&data, &mut rng);

    let after: Vec<f64> = par_map(entries, |_, e| e.rescore(&retrained).max());

    let rows: Vec<TrainCheckRow> = entries
        .iter()
        .zip(before.iter().zip(after.iter()))
        .map(|(e, (&before_max, &after_max))| TrainCheckRow {
            name: e.spec.name.clone(),
            before_max,
            after_max,
            delta: after_max - before_max,
            exported: grown_names.contains(&e.spec.name) && !base_names.contains(&e.spec.name),
        })
        .collect();

    let improved = rows.iter().filter(|r| r.delta < -tolerance).count();
    let worsened = rows.iter().filter(|r| r.delta > tolerance).count();
    obs::counter("fuzz.traincheck.entries", rows.len() as u64);
    obs::counter("fuzz.traincheck.improved", improved as u64);
    obs::counter("fuzz.traincheck.worsened", worsened as u64);

    TrainCheck {
        mean_before: mean(rows.iter().map(|r| r.before_max)),
        mean_after: mean(rows.iter().map(|r| r.after_max)),
        rows,
        exported_rows,
        train_rows,
        improved,
        worsened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{score_spec, EvalParams};
    use crate::seeds::{
        default_classifier, mini_corpus_plan, reduced_campaign, DEFAULT_TRAIN_SEED,
    };

    fn corpus(names: &[&str]) -> Vec<CorpusEntry> {
        mini_corpus_plan()
            .into_iter()
            .filter(|s| names.contains(&s.name.as_str()))
            .map(|spec| {
                let eval = EvalParams::default();
                let report = score_spec(&spec, 0xC105E, &eval, default_classifier());
                CorpusEntry::new(spec, 0xC105E, eval, &report)
            })
            .collect()
    }

    #[test]
    fn reports_every_entry_and_marks_exports() {
        let entries = corpus(&["hard-lobby-crowd", "hard-blk-ladder"]);
        assert_eq!(entries.len(), 2, "mini corpus plan drifted");
        let base = reduced_campaign();
        // top=1: only the worse of the two scenarios enters the
        // training set; the other measures generalization.
        let check = retrain_close(
            &entries,
            &base,
            default_classifier(),
            1,
            DEFAULT_TRAIN_SEED,
            0.01,
        );
        assert_eq!(check.rows.len(), 2);
        assert_eq!(check.rows.iter().filter(|r| r.exported).count(), 1);
        let exported = check.rows.iter().find(|r| r.exported).unwrap();
        let held_out = check.rows.iter().find(|r| !r.exported).unwrap();
        assert!(
            exported.before_max >= held_out.before_max,
            "export must pick the worst-regret entry"
        );
        assert!(check.exported_rows > 0);
        assert!(check.train_rows > base.entries.len() + base.na_entries.len());
        // Stored regret matches the baseline rescore: the corpus was
        // scored by the same classifier.
        for (row, entry) in check.rows.iter().zip(&entries) {
            assert_eq!(row.name, entry.spec.name);
            assert!((row.before_max - entry.max_regret).abs() < 1e-12);
            assert!((row.delta - (row.after_max - row.before_max)).abs() < 1e-12);
        }
        assert!((check.mean_delta() - (check.mean_after - check.mean_before)).abs() < 1e-12);
    }

    #[test]
    fn regret_close_is_deterministic() {
        let entries = corpus(&["hard-lobby-crowd"]);
        let base = reduced_campaign();
        let a = retrain_close(&entries, &base, default_classifier(), 4, 0x7A11, 0.01);
        let b = retrain_close(&entries, &base, default_classifier(), 4, 0x7A11, 0.01);
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.before_max.to_bits(), rb.before_max.to_bits());
            assert_eq!(ra.after_max.to_bits(), rb.after_max.to_bits());
        }
        assert_eq!(a.train_rows, b.train_rows);
        assert_eq!(a.exported_rows, b.exported_rows);
    }
}
