//! Seed scenarios for the search, the hand-picked hard-case mini
//! corpus, and the shared small classifier the fuzz tooling scores
//! against.

use libra::LibraClassifier;
use libra_channel::{Blocker, BlockerPlacement, Environment, Interferer, Point, Pose};
use libra_dataset::{
    generate, main_campaign_plan, testing_campaign_plan, CampaignConfig, CampaignDataset,
    GroundTruthParams, Impairment, Instruments, NewStateSpec, ScenarioSpec,
};
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;
use std::sync::OnceLock;

/// Maximum new states a seed scenario carries into the search — longer
/// walks are truncated so every candidate stays cheap to score.
const SEED_MAX_STATES: usize = 4;

/// The initial population: every scenario of the main and testing
/// campaign plans, truncated to at most [`SEED_MAX_STATES`] new states.
pub fn seed_pool() -> Vec<ScenarioSpec> {
    let mut pool = main_campaign_plan();
    pool.extend(testing_campaign_plan());
    for spec in &mut pool {
        spec.new_states.truncate(SEED_MAX_STATES);
    }
    pool
}

fn state(
    kind: Impairment,
    rx: Pose,
    blockers: Vec<Blocker>,
    interferers: Vec<Interferer>,
    key: &str,
) -> NewStateSpec {
    NewStateSpec {
        kind,
        rx,
        blockers,
        interferers,
        position_key: key.to_string(),
    }
}

/// The checked-in hard-case plan: scenarios hand-picked for regimes the
/// paper's fixed grid under-samples — metal-wall reflections, blocker
/// crowds, the L-corridor corner, extreme range, boresight interference
/// and partial-blockage ladders. The corpus regression test scores and
/// blesses these once, then replays them forever.
pub fn mini_corpus_plan() -> Vec<ScenarioSpec> {
    let p = Point::new;
    let mut specs = Vec::new();

    // Conference room: the east wall is metal, so a displaced Rx near it
    // lives off a strong specular path that blockage kills entirely.
    {
        let tx = Pose::new(p(0.8, 3.4), 0.0);
        let rx0 = Pose::new(p(8.0, 3.4), 180.0);
        specs.push(ScenarioSpec {
            env: Environment::ConferenceRoom,
            name: "hard-conf-metal".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![
                state(
                    Impairment::Displacement,
                    Pose::new(p(9.6, 1.0), 180.0),
                    vec![],
                    vec![],
                    "hard-conf-metal-p1",
                ),
                state(
                    Impairment::Blockage,
                    rx0,
                    vec![BlockerPlacement::MidPath.blocker(tx.position, rx0.position, 0.0)],
                    vec![],
                    "hard-conf-metal-p0",
                ),
            ],
        });
    }

    // Lab: Rx drops behind a metallic cabinet row — NLOS with only
    // cabinet reflections left.
    {
        let tx = Pose::new(p(1.0, 4.6), 0.0);
        let rx0 = Pose::new(p(10.5, 4.6), 180.0);
        specs.push(ScenarioSpec {
            env: Environment::Lab,
            name: "hard-lab-cabinet".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![
                state(
                    Impairment::Displacement,
                    Pose::new(p(10.5, 2.0), 180.0),
                    vec![],
                    vec![],
                    "hard-lab-cabinet-p1",
                ),
                state(
                    Impairment::Blockage,
                    rx0,
                    vec![BlockerPlacement::NearRx.blocker(tx.position, rx0.position, 0.1)],
                    vec![],
                    "hard-lab-cabinet-p0",
                ),
            ],
        });
    }

    // Lobby: a crossing crowd — four staggered torsos spanning the LOS.
    {
        let tx = Pose::new(p(1.0, 7.0), 0.0);
        let rx0 = Pose::new(p(15.0, 7.0), 180.0);
        let crowd = vec![
            Blocker::human(p(6.0, 6.8)),
            Blocker::human(p(8.0, 7.2)),
            Blocker::human(p(10.0, 6.9)),
            Blocker::human(p(12.0, 7.1)),
        ];
        specs.push(ScenarioSpec {
            env: Environment::Lobby,
            name: "hard-lobby-crowd".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![state(
                Impairment::Blockage,
                rx0,
                crowd,
                vec![],
                "hard-lobby-crowd-p0",
            )],
        });
    }

    // L-corridor: the Rx turns the corner — the classic mmWave cliff.
    {
        let tx = Pose::new(p(1.0, 1.25), 0.0);
        let rx0 = Pose::new(p(14.0, 1.25), 180.0);
        specs.push(ScenarioSpec {
            env: Environment::LCorridor,
            name: "hard-lcorr-corner".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![
                state(
                    Impairment::Displacement,
                    Pose::new(p(16.75, 4.0), 225.0),
                    vec![],
                    vec![],
                    "hard-lcorr-corner-p1",
                ),
                state(
                    Impairment::Displacement,
                    Pose::new(p(16.75, 8.0), 225.0),
                    vec![],
                    vec![],
                    "hard-lcorr-corner-p2",
                ),
            ],
        });
    }

    // Narrow corridor at extreme range: low SNR margin, then a blocker.
    {
        let tx = Pose::new(p(0.8, 0.87), 0.0);
        let rx0 = Pose::new(p(28.0, 0.87), 180.0);
        specs.push(ScenarioSpec {
            env: Environment::CorridorNarrow,
            name: "hard-narrow-far".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![state(
                Impairment::Blockage,
                rx0,
                vec![BlockerPlacement::NearRx.blocker(tx.position, rx0.position, 0.0)],
                vec![],
                "hard-narrow-far-p0",
            )],
        });
    }

    // Lobby: a saturated hidden terminal sitting in the Rx boresight
    // (between Rx and Tx), so the interference lands in the main lobe.
    {
        let tx = Pose::new(p(1.0, 7.0), 0.0);
        let rx0 = Pose::new(p(12.0, 7.0), 180.0);
        specs.push(ScenarioSpec {
            env: Environment::Lobby,
            name: "hard-intf-boresight".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![state(
                Impairment::Interference,
                rx0,
                vec![],
                vec![Interferer {
                    position: p(3.0, 7.3),
                    eirp_dbm: 17.0,
                    duty_cycle: 1.0,
                }],
                "hard-intf-boresight-p0",
            )],
        });
    }

    // Conference room: a hard rotation — the Rx swings most of the way
    // off boresight in one step.
    {
        let tx = Pose::new(p(0.8, 3.4), 0.0);
        let rx0 = Pose::new(p(7.0, 5.5), 180.0);
        specs.push(ScenarioSpec {
            env: Environment::ConferenceRoom,
            name: "hard-rot-flip".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![
                state(
                    Impairment::Displacement,
                    rx0.rotated(75.0),
                    vec![],
                    vec![],
                    "hard-rot-flip-p0",
                ),
                state(
                    Impairment::Displacement,
                    rx0.rotated(-90.0),
                    vec![],
                    vec![],
                    "hard-rot-flip-p0",
                ),
            ],
        });
    }

    // Medium corridor: a partial-blockage ladder — the same spot at
    // three attenuation depths straddles the BA/RA decision boundary.
    {
        let tx = Pose::new(p(0.8, 1.6), 0.0);
        let rx0 = Pose::new(p(20.0, 1.6), 180.0);
        let at = |db: f64| {
            vec![Blocker {
                attenuation_db: db,
                ..BlockerPlacement::MidPath.blocker(tx.position, rx0.position, 0.2)
            }]
        };
        specs.push(ScenarioSpec {
            env: Environment::CorridorMedium,
            name: "hard-blk-ladder".into(),
            tx,
            initial_rx: rx0,
            new_states: vec![
                state(
                    Impairment::Blockage,
                    rx0,
                    at(10.0),
                    vec![],
                    "hard-blk-ladder-p0",
                ),
                state(
                    Impairment::Blockage,
                    rx0,
                    at(22.0),
                    vec![],
                    "hard-blk-ladder-p0",
                ),
                state(
                    Impairment::Blockage,
                    rx0,
                    at(34.0),
                    vec![],
                    "hard-blk-ladder-p0",
                ),
            ],
        });
    }

    specs
}

/// Training seed of [`default_classifier`] — also the default baseline
/// seed of the regret-close check, so "retrained" differs from
/// "baseline" only by the exported rows, never by the RNG stream.
pub const DEFAULT_TRAIN_SEED: u64 = 0x5EED;

/// The reduced training campaign behind [`default_classifier`]: six
/// scenarios of the main plan (the keep-list of the determinism suite,
/// `crates/bench/tests/determinism.rs`), regenerated deterministically.
/// This is also the base curriculum `traincheck::retrain_close` grows
/// with exported hard cases.
pub fn reduced_campaign() -> CampaignDataset {
    let keep = [
        "lobby-back",
        "lobby-rot1",
        "lobby-blk0",
        "lobby-intf0",
        "lab-back",
        "conf-rot1",
    ];
    let plan: Vec<_> = main_campaign_plan()
        .into_iter()
        .filter(|s| keep.contains(&s.name.as_str()))
        .collect();
    assert_eq!(plan.len(), keep.len(), "determinism keep-list drifted");
    let cfg = CampaignConfig {
        seed: 0xD17E,
        instruments: Instruments {
            trace_frames: 25,
            ..Instruments::default()
        },
        repeats: 1,
    };
    generate(&plan, &cfg)
}

/// The classifier every fuzz entry point scores against by default: the
/// reduced-campaign model of the determinism suite
/// (`crates/bench/tests/determinism.rs`), trained once per process.
/// Small enough to train in seconds, yet covers all three label
/// classes, which is what regret scoring needs.
pub fn default_classifier() -> &'static LibraClassifier {
    static CLF: OnceLock<LibraClassifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let ds = reduced_campaign();
        let data = ds.to_ml_3class(&McsTable::x60(), &GroundTruthParams::default());
        let mut rng = rng_from_seed(DEFAULT_TRAIN_SEED);
        LibraClassifier::train(&data, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_channel::ScenarioBounds;

    #[test]
    fn mini_corpus_is_valid_and_uniquely_named() {
        let bounds = ScenarioBounds::default();
        let plan = mini_corpus_plan();
        assert!((5..=10).contains(&plan.len()));
        let mut names: Vec<&str> = plan.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), plan.len(), "duplicate scenario names");
        for spec in &plan {
            spec.validate(&bounds).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn seed_pool_is_valid_and_bounded() {
        let bounds = ScenarioBounds::default();
        let pool = seed_pool();
        assert!(pool.len() > 20);
        for spec in &pool {
            assert!(spec.new_states.len() <= SEED_MAX_STATES);
            spec.validate(&bounds).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
