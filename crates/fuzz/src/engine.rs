//! The coverage-guided search loop.
//!
//! Batch-synchronous evolution, chosen for exact thread-count
//! invariance: each batch freezes the parent population (seed pool +
//! corpus so far), derives one RNG stream per candidate from
//! `(seed, candidate index)`, evaluates the batch with
//! `libra_util::par::par_map` (index-ordered collection), then folds
//! keep/coverage decisions sequentially in candidate order. Nothing
//! depends on which worker scored which candidate, so the corpus and
//! manifest are bitwise identical at any `--threads` count.
//!
//! Coverage guidance is the classic mutational-fuzzing feedback loop:
//! candidates that reached a *new* bucket of the SNR × impairment × MCS
//! grid join the corpus even at low regret, and corpus members are
//! parents for later batches — the search radiates out of explored
//! regions instead of re-finding the same failure.

use crate::corpus::CorpusEntry;
use crate::mutate::Mutator;
use crate::seeds::seed_pool;
use libra::regret::{CoverageKey, RegretReport};
use libra::{LibraClassifier, SimConfig};
use libra_dataset::{generate, CampaignConfig, Instruments, ScenarioSpec};
use libra_mac::{BaOverheadPreset, ProtocolParams};
use libra_obs as obs;
use libra_util::par::par_map;
use libra_util::rng::{derive_seed, derive_seed_index, rng_from_seed};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Everything needed to score a scenario reproducibly — stored with
/// every corpus entry so replay re-runs the exact same evaluation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EvalParams {
    /// Simulator configuration (protocol parameters included).
    pub sim: SimConfig,
    /// Flow duration per entry, ms.
    pub flow_ms: f64,
    /// Frames per measured 1 s trace.
    pub trace_frames: usize,
    /// Repeated traces per state.
    pub repeats: usize,
}

impl Default for EvalParams {
    fn default() -> Self {
        Self {
            // The highest-stakes §8 combo: BA costs 250 ms, so a wrong
            // BA/RA call is maximally visible in delivered bytes.
            sim: SimConfig::new(ProtocolParams::new(BaOverheadPreset::Directional7, 2.0)),
            flow_ms: 1000.0,
            trace_frames: 25,
            repeats: 1,
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Total candidates to evaluate.
    pub budget: usize,
    /// Candidates per batch (the parent snapshot granularity).
    pub batch: usize,
    /// Scoring parameters.
    pub eval: EvalParams,
    /// Keep threshold: candidates whose max regret reaches this join
    /// the corpus even without new coverage.
    pub keep_regret: f64,
    /// Corpus size cap (worst regret wins ties by name).
    pub max_corpus: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 0xF022,
            budget: 64,
            batch: 16,
            eval: EvalParams::default(),
            keep_regret: 0.05,
            max_corpus: 32,
        }
    }
}

/// Aggregate statistics of one search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzStats {
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Candidates kept (before the corpus cap).
    pub kept: usize,
    /// Distinct coverage buckets reached.
    pub coverage_buckets: usize,
    /// Mean of per-candidate mean regret.
    pub mean_regret: f64,
    /// Worst per-entry regret seen anywhere in the run.
    pub max_regret: f64,
}

/// The result of a search run.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The corpus, sorted by max regret (desc), then name.
    pub corpus: Vec<CorpusEntry>,
    /// Run statistics.
    pub stats: FuzzStats,
}

/// Scores one scenario: regenerate its dataset from `(fuzz_seed,
/// spec.name)` and score every entry against `Oracle-Data`. The
/// campaign generator derives the per-scenario stream from the master
/// seed and the scenario *name*, so unique candidate names are the
/// whole determinism handle.
pub fn score_spec(
    spec: &ScenarioSpec,
    fuzz_seed: u64,
    eval: &EvalParams,
    clf: &LibraClassifier,
) -> RegretReport {
    let cfg = CampaignConfig {
        seed: fuzz_seed,
        instruments: Instruments {
            trace_frames: eval.trace_frames,
            ..Instruments::default()
        },
        repeats: eval.repeats,
    };
    let ds = generate(std::slice::from_ref(spec), &cfg);
    RegretReport::score(&ds.entries, clf, &eval.sim, eval.flow_ms)
}

/// Runs the coverage-guided search. Deterministic in `cfg.seed` at any
/// thread count.
pub fn run_fuzz(cfg: &FuzzConfig, clf: &LibraClassifier) -> FuzzOutcome {
    let _span = obs::span("fuzz.run");
    let pool = seed_pool();
    let mutator = Mutator::default();

    let mut coverage: BTreeSet<CoverageKey> = BTreeSet::new();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut evaluated = 0usize;
    let mut kept = 0usize;
    let mut sum_mean = 0.0f64;
    let mut max_regret = 0.0f64;
    let mut next_index = 0u64;

    while evaluated < cfg.budget {
        let n = cfg.batch.max(1).min(cfg.budget - evaluated);
        // Freeze the parent population for this batch: seed scenarios
        // plus everything the corpus holds so far.
        let parents: Vec<&ScenarioSpec> =
            pool.iter().chain(corpus.iter().map(|e| &e.spec)).collect();

        // Candidate construction is sequential and cheap; scoring is
        // the expensive part and runs in parallel below.
        let candidates: Vec<ScenarioSpec> = (0..n)
            .map(|i| {
                let index = next_index + i as u64;
                let cand_seed = derive_seed_index(cfg.seed, index);
                let mut rng = rng_from_seed(cand_seed);
                let parent = parents[rng.gen_range(0..parents.len())];
                let mut spec = mutator.mutate(parent, derive_seed(cand_seed, "mutate"));
                spec.name = format!("fz-{:08x}-{:04}", cfg.seed as u32, index);
                spec
            })
            .collect();
        next_index += n as u64;

        let reports: Vec<RegretReport> = par_map(&candidates, |_, spec| {
            let _g = obs::span("fuzz.candidate");
            obs::counter("fuzz.scenarios", 1);
            score_spec(spec, cfg.seed, &cfg.eval, clf)
        });

        // Sequential fold in candidate order: coverage novelty and keep
        // decisions are order-dependent, so the order must not depend
        // on worker scheduling.
        for (spec, report) in candidates.into_iter().zip(reports) {
            evaluated += 1;
            sum_mean += report.mean();
            let cand_max = report.max();
            max_regret = max_regret.max(cand_max);
            let keys = report.coverage();
            let novel = keys.iter().any(|k| !coverage.contains(k));
            if novel || cand_max >= cfg.keep_regret {
                coverage.extend(keys.iter().copied());
                corpus.push(CorpusEntry::new(spec, cfg.seed, cfg.eval, &report));
                kept += 1;
                obs::counter("fuzz.kept", 1);
            }
        }
    }

    // Cap the corpus at the hardest cases; ties break by name so the
    // cut is stable.
    corpus.sort_by(|a, b| {
        b.max_regret
            .partial_cmp(&a.max_regret)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.spec.name.cmp(&b.spec.name))
    });
    corpus.truncate(cfg.max_corpus);

    let stats = FuzzStats {
        evaluated,
        kept,
        coverage_buckets: coverage.len(),
        mean_regret: if evaluated > 0 {
            sum_mean / evaluated as f64
        } else {
            0.0
        },
        max_regret,
    };
    FuzzOutcome { corpus, stats }
}

/// Renders `BENCH_fuzz.json`: the machine-readable perf + quality
/// record of one run. Hand-written JSON with fixed key order and fixed
/// float precision, so equal runs produce equal bytes.
pub fn bench_json(stats: &FuzzStats, corpus_len: usize, elapsed_secs: f64) -> String {
    let sps = if elapsed_secs > 0.0 {
        stats.evaluated as f64 / elapsed_secs
    } else {
        0.0
    };
    format!(
        "{{\n  \"bench\": \"fuzz\",\n  \"evaluated\": {},\n  \"scenarios_per_sec\": {:.2},\n  \"mean_regret\": {:.6},\n  \"max_regret\": {:.6},\n  \"coverage_buckets\": {},\n  \"kept\": {},\n  \"corpus_size\": {}\n}}\n",
        stats.evaluated,
        sps,
        stats.mean_regret,
        stats.max_regret,
        stats.coverage_buckets,
        stats.kept,
        corpus_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::default_classifier;

    #[test]
    fn tiny_run_is_seed_deterministic() {
        let clf = default_classifier();
        let cfg = FuzzConfig {
            budget: 3,
            batch: 2,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg, clf);
        let b = run_fuzz(&cfg, clf);
        assert_eq!(a.stats.evaluated, 3);
        assert_eq!(a.corpus.len(), b.corpus.len());
        for (x, y) in a.corpus.iter().zip(&b.corpus) {
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.digest, y.digest);
        }
    }

    #[test]
    fn bench_json_shape() {
        let stats = FuzzStats {
            evaluated: 10,
            kept: 3,
            coverage_buckets: 7,
            mean_regret: 0.0125,
            max_regret: 0.25,
        };
        let s = bench_json(&stats, 3, 2.0);
        assert!(s.contains("\"scenarios_per_sec\": 5.00"));
        assert!(s.contains("\"max_regret\": 0.250000"));
        assert!(s.ends_with("}\n"));
    }
}
