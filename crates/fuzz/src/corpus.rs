//! The on-disk hard-case corpus and its regression replay.
//!
//! Layout: one `<name>.scenario` file per entry (the workspace's
//! `binser` format: the full [`CorpusEntry`] including spec, evaluation
//! parameters and the regret record at discovery time) plus a
//! `manifest.json` — deterministic, hand-rendered JSON sorted by name,
//! with seeds and digests as hex strings. Equal corpora produce equal
//! manifests byte-for-byte; CI diffs them across thread counts.
//!
//! Replay is the regression contract: re-simulate every stored scenario
//! from its recorded seed and parameters, and flag any entry whose max
//! regret *worsened* beyond a tolerance (the classifier or simulator
//! regressed on a known hard case) or whose regret digest changed (the
//! pipeline lost bitwise determinism).

use crate::engine::{score_spec, EvalParams};
use libra::regret::{CoverageKey, RegretReport};
use libra::LibraClassifier;
use libra_dataset::{generate, CampaignConfig, CampaignDataset, Instruments, ScenarioSpec};
use libra_obs as obs;
use libra_util::binser;
use libra_util::par::par_map;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;

/// One stored hard case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The scenario itself.
    pub spec: ScenarioSpec,
    /// Master seed of the run that found it (the campaign stream
    /// derives from this seed and the scenario name).
    pub fuzz_seed: u64,
    /// Evaluation parameters regret was measured under.
    pub eval: EvalParams,
    /// Mean relative regret at discovery.
    pub mean_regret: f64,
    /// Max relative regret at discovery.
    pub max_regret: f64,
    /// Coverage buckets the scenario exercised.
    pub coverage: Vec<CoverageKey>,
    /// Regret-report digest at discovery (bitwise replay check).
    pub digest: u64,
}

impl CorpusEntry {
    /// Builds an entry from a scored candidate.
    pub fn new(
        spec: ScenarioSpec,
        fuzz_seed: u64,
        eval: EvalParams,
        report: &RegretReport,
    ) -> Self {
        Self {
            spec,
            fuzz_seed,
            eval,
            mean_regret: report.mean(),
            max_regret: report.max(),
            coverage: report.coverage(),
            digest: report.digest(),
        }
    }

    /// Re-scores the stored scenario under its stored parameters.
    pub fn rescore(&self, clf: &LibraClassifier) -> RegretReport {
        score_spec(&self.spec, self.fuzz_seed, &self.eval, clf)
    }
}

/// One row of a replay run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayRow {
    /// Scenario name.
    pub name: String,
    /// Max regret at discovery.
    pub stored_max: f64,
    /// Max regret now.
    pub replayed_max: f64,
    /// Digest at discovery.
    pub stored_digest: u64,
    /// Digest now.
    pub replayed_digest: u64,
    /// True when `replayed_max > stored_max + tolerance`.
    pub worsened: bool,
}

/// Replays every entry against `clf`. Entries are independent, so they
/// replay in parallel; rows come back in entry order.
pub fn replay(entries: &[CorpusEntry], clf: &LibraClassifier, tolerance: f64) -> Vec<ReplayRow> {
    let _span = obs::span("fuzz.replay");
    par_map(entries, |_, e| {
        let report = e.rescore(clf);
        let replayed_max = report.max();
        ReplayRow {
            name: e.spec.name.clone(),
            stored_max: e.max_regret,
            replayed_max,
            stored_digest: e.digest,
            replayed_digest: report.digest(),
            worsened: replayed_max > e.max_regret + tolerance,
        }
    })
}

/// Greedily shrinks an entry — dropping whole states, then blockers,
/// then interferers — while its max regret stays within `1e-9` of the
/// original. Pure function of `(entry, clf)`: re-scores after every
/// tentative removal (per-state measurement streams derive from state
/// order, so removals legitimately reshuffle downstream states and only
/// re-scoring can judge them).
pub fn minimize(entry: &CorpusEntry, clf: &LibraClassifier) -> CorpusEntry {
    let _span = obs::span("fuzz.minimize");
    const TOL: f64 = 1e-9;
    let target = entry.max_regret - TOL;
    let mut spec = entry.spec.clone();

    let keeps_regret = |spec: &ScenarioSpec, clf: &LibraClassifier| {
        score_spec(spec, entry.fuzz_seed, &entry.eval, clf).max() >= target
    };

    // States, from the back so indices stay stable.
    let mut i = spec.new_states.len();
    while i > 0 && spec.new_states.len() > 1 {
        i -= 1;
        let mut cand = spec.clone();
        cand.new_states.remove(i);
        if keeps_regret(&cand, clf) {
            spec = cand;
        }
    }
    // Blockers and interferers within the surviving states.
    for si in 0..spec.new_states.len() {
        let mut bi = spec.new_states[si].blockers.len();
        while bi > 0 {
            bi -= 1;
            let mut cand = spec.clone();
            cand.new_states[si].blockers.remove(bi);
            if keeps_regret(&cand, clf) {
                spec = cand;
            }
        }
        let mut ii = spec.new_states[si].interferers.len();
        while ii > 0 {
            ii -= 1;
            let mut cand = spec.clone();
            cand.new_states[si].interferers.remove(ii);
            if keeps_regret(&cand, clf) {
                spec = cand;
            }
        }
    }

    let report = score_spec(&spec, entry.fuzz_seed, &entry.eval, clf);
    CorpusEntry::new(spec, entry.fuzz_seed, entry.eval, &report)
}

/// Folds the `top` worst-regret corpus scenarios into a campaign
/// dataset — the hard cases become training data, closing the fuzzing
/// loop (ROADMAP item 5).
///
/// Each exported scenario's dataset is regenerated from its recorded
/// `(fuzz_seed, spec)` — exactly the evaluation stream regret was
/// measured under, so the model trains on the same observations it got
/// wrong. Scenarios whose name already appears in `dataset` are
/// skipped, making repeated exports idempotent. Returns the number of
/// rows (entries + NA twins) appended; regeneration runs in parallel
/// and rows append in worst-regret order, so the grown dataset is
/// deterministic.
pub fn export_to_campaign(
    entries: &[CorpusEntry],
    top: usize,
    dataset: &mut CampaignDataset,
) -> usize {
    let _span = obs::span("fuzz.export");
    let mut sorted: Vec<&CorpusEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| {
        b.max_regret
            .partial_cmp(&a.max_regret)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.spec.name.cmp(&b.spec.name))
    });
    sorted.truncate(top);

    let present: BTreeSet<&str> = dataset
        .entries
        .iter()
        .chain(dataset.na_entries.iter())
        .map(|e| e.scenario.as_str())
        .collect();
    let fresh: Vec<&CorpusEntry> = sorted
        .into_iter()
        .filter(|e| !present.contains(e.spec.name.as_str()))
        .collect();

    let regenerated: Vec<CampaignDataset> = par_map(&fresh, |_, entry| {
        let cfg = CampaignConfig {
            seed: entry.fuzz_seed,
            instruments: Instruments {
                trace_frames: entry.eval.trace_frames,
                ..Instruments::default()
            },
            repeats: entry.eval.repeats,
        };
        generate(std::slice::from_ref(&entry.spec), &cfg)
    });
    let mut added = 0usize;
    for ds in regenerated {
        added += ds.entries.len() + ds.na_entries.len();
        obs::counter(
            "fuzz.export.rows",
            (ds.entries.len() + ds.na_entries.len()) as u64,
        );
        dataset.entries.extend(ds.entries);
        dataset.na_entries.extend(ds.na_entries);
    }
    added
}

/// Writes the corpus: one `.scenario` file per entry plus the manifest.
pub fn save_corpus(dir: &Path, entries: &[CorpusEntry]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    for entry in entries {
        let path = dir.join(format!("{}.scenario", entry.spec.name));
        binser::write_file(&path, entry).map_err(|e| format!("write {}: {e:?}", path.display()))?;
    }
    let manifest = manifest_json(entries);
    let path = dir.join("manifest.json");
    std::fs::write(&path, manifest).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(())
}

/// Loads every `.scenario` file in `dir`, sorted by file name — load
/// order is a property of the directory contents, not of the writer.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|r| r.ok())
        .map(|d| d.path())
        .filter(|p| p.extension().map(|x| x == "scenario").unwrap_or(false))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| binser::read_file(p).map_err(|e| format!("read {}: {e:?}", p.display())))
        .collect()
}

/// Renders the deterministic manifest: entries sorted by name, u64s as
/// zero-padded hex, floats at fixed precision.
pub fn manifest_json(entries: &[CorpusEntry]) -> String {
    let mut sorted: Vec<&CorpusEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| a.spec.name.cmp(&b.spec.name));
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"name\": \"{}\",\n      \"file\": \"{}.scenario\",\n      \"env\": \"{}\",\n      \"fuzz_seed\": \"{:#018x}\",\n      \"mean_regret\": {:.6},\n      \"max_regret\": {:.6},\n      \"coverage_buckets\": {},\n      \"digest\": \"{:#018x}\"\n    }}",
            e.spec.name,
            e.spec.name,
            e.spec.env.name(),
            e.fuzz_seed,
            e.mean_regret,
            e.max_regret,
            e.coverage.len(),
            e.digest,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::{default_classifier, mini_corpus_plan};

    fn one_entry() -> CorpusEntry {
        let spec = mini_corpus_plan()
            .into_iter()
            .find(|s| s.name == "hard-lobby-crowd")
            .unwrap();
        let eval = EvalParams::default();
        let report = score_spec(&spec, 0xC0, &eval, default_classifier());
        CorpusEntry::new(spec, 0xC0, eval, &report)
    }

    #[test]
    fn roundtrip_through_disk() {
        let entry = one_entry();
        let dir = std::env::temp_dir().join(format!("libra-fuzz-corpus-{}", std::process::id()));
        save_corpus(&dir, std::slice::from_ref(&entry)).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            binser::to_bytes(&loaded[0]).unwrap(),
            binser::to_bytes(&entry).unwrap()
        );
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert_eq!(manifest, manifest_json(std::slice::from_ref(&entry)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_matches_stored_digest() {
        let entry = one_entry();
        let rows = replay(std::slice::from_ref(&entry), default_classifier(), 0.0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].stored_digest, rows[0].replayed_digest);
        assert!(!rows[0].worsened);
    }

    #[test]
    fn export_appends_regenerated_rows_idempotently() {
        let entry = one_entry();
        let mut dataset = CampaignDataset {
            entries: Vec::new(),
            na_entries: Vec::new(),
        };
        let added = export_to_campaign(std::slice::from_ref(&entry), 8, &mut dataset);
        assert!(added > 0, "export produced no rows");
        assert_eq!(dataset.entries.len() + dataset.na_entries.len(), added);
        assert!(dataset
            .entries
            .iter()
            .all(|e| e.scenario == "hard-lobby-crowd"));

        // The regenerated rows are exactly the stream regret was scored
        // under.
        let direct = generate(
            std::slice::from_ref(&entry.spec),
            &CampaignConfig {
                seed: entry.fuzz_seed,
                instruments: Instruments {
                    trace_frames: entry.eval.trace_frames,
                    ..Instruments::default()
                },
                repeats: entry.eval.repeats,
            },
        );
        assert_eq!(
            binser::to_bytes(&dataset.entries).unwrap(),
            binser::to_bytes(&direct.entries).unwrap()
        );

        // Exporting again is a no-op: the scenario is already present.
        let again = export_to_campaign(std::slice::from_ref(&entry), 8, &mut dataset);
        assert_eq!(again, 0);
        assert_eq!(dataset.entries.len() + dataset.na_entries.len(), added);
    }

    #[test]
    fn manifest_is_sorted_and_stable() {
        let entry = one_entry();
        let mut two = vec![entry.clone(), entry];
        two[1].spec.name = "aaa-first".into();
        let m = manifest_json(&two);
        assert!(m.find("aaa-first").unwrap() < m.find("hard-lobby-crowd").unwrap());
        assert_eq!(m, manifest_json(&two));
    }
}
