//! # libra-fuzz
//!
//! Coverage-guided scenario search over the LiBRA simulator (ROADMAP
//! item 5): instead of only walking the paper's fixed §8 grid, actively
//! *search* `ScenarioSpec` space for configurations where
//! `LibraClassifier::decide` diverges from `Oracle-Data`.
//!
//! The loop is the classic mutational-fuzzing shape:
//!
//! * [`mutate`] — a deterministic mutator perturbs Rx/Tx poses,
//!   rotations, blocker paths and crowds, interferer placements and
//!   levels, state counts, and the environment itself (geometry and
//!   wall materials change by swapping rooms from the catalogue), under
//!   the physical bounds of `libra_channel::bounds`.
//! * [`engine`] — candidates run through the §8 campaign generator +
//!   trace simulator and are scored by relative throughput regret vs
//!   `Oracle-Data` ([`libra::regret`]); coverage is tracked over the
//!   bucketed SNR × impairment × MCS grid, and a candidate is kept when
//!   it reaches a new bucket or exceeds the regret threshold.
//! * [`corpus`] — kept scenarios persist to disk (`*.scenario` +
//!   `manifest.json`) and double as a regression suite: `replay`
//!   re-simulates every stored scenario and checks regret has not
//!   worsened; `minimize` greedily shrinks a scenario while preserving
//!   its worst-case regret; `export_to_campaign` folds the worst
//!   offenders back into a training campaign dataset.
//! * [`seeds`] — the seed pool (trimmed campaign plans), the
//!   hand-picked hard-case mini corpus, and the shared small classifier.
//! * [`traincheck`] — the regret-close measurement: export the worst
//!   corpus entries, retrain on the grown curriculum, and report how
//!   much regret the retrain closed per entry and in aggregate.
//!
//! Determinism is the load-bearing contract, matching the rest of the
//! workspace: the whole search is a pure function of `FuzzConfig::seed`.
//! Candidates derive their RNG streams by index, batches evaluate via
//! `libra_util::par` with index-ordered folds, and corpus files and
//! manifests are bitwise identical at any `--threads` count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod engine;
pub mod mutate;
pub mod seeds;
pub mod traincheck;

pub use corpus::{
    export_to_campaign, load_corpus, manifest_json, minimize, replay, save_corpus, CorpusEntry,
    ReplayRow,
};
pub use engine::{
    bench_json, run_fuzz, score_spec, EvalParams, FuzzConfig, FuzzOutcome, FuzzStats,
};
pub use mutate::Mutator;
pub use seeds::{
    default_classifier, mini_corpus_plan, reduced_campaign, seed_pool, DEFAULT_TRAIN_SEED,
};
pub use traincheck::{retrain_close, TrainCheck, TrainCheckRow};
