//! Tier-1 regression replay of the checked-in mini corpus
//! (ISSUE 6 satellite 3).
//!
//! The corpus under `tests/corpus/` holds the hand-picked hard cases of
//! `libra_fuzz::mini_corpus_plan` — metal-room reflections, a crossing
//! crowd, the L-corridor corner, boresight interference, a
//! partial-blockage ladder — scored once and pinned.
//!
//! Blessing works like `crates/bench/tests/golden.rs`: if the corpus
//! directory is missing or empty, the test scores the plan, writes the
//! corpus, and passes; commit the files to pin. Any later run replays
//! the stored entries and fails if a scenario's max regret worsened
//! (the classifier/simulator regressed on a known hard case) or its
//! regret digest changed (bitwise determinism broke). Re-bless
//! deliberately by deleting `tests/corpus/` and re-running.

use libra_fuzz::{
    default_classifier, load_corpus, mini_corpus_plan, replay, save_corpus, score_spec,
    CorpusEntry, EvalParams,
};
use std::path::PathBuf;

const CORPUS_DIR: &str = "tests/corpus";

/// Master seed the mini corpus is measured under (per-scenario streams
/// derive from this and each scenario's name).
const MINI_SEED: u64 = 0x4A2D;

/// Replay tolerance on max regret. Regret is a ratio in [0, 1]; the
/// pipeline is bitwise deterministic, so any drift is a real behaviour
/// change — the tolerance only forgives sub-percent numeric wiggle if
/// the evaluation is ever deliberately re-tuned.
const TOLERANCE: f64 = 0.01;

fn corpus_dir() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(CORPUS_DIR)
}

fn bless() -> Vec<CorpusEntry> {
    let clf = default_classifier();
    let eval = EvalParams::default();
    mini_corpus_plan()
        .into_iter()
        .map(|spec| {
            let report = score_spec(&spec, MINI_SEED, &eval, clf);
            CorpusEntry::new(spec, MINI_SEED, eval, &report)
        })
        .collect()
}

#[test]
fn mini_corpus_replay_has_not_worsened() {
    let dir = corpus_dir();
    let existing = load_corpus(&dir).unwrap_or_default();
    if existing.is_empty() {
        let entries = bless();
        save_corpus(&dir, &entries).expect("bless mini corpus");
        eprintln!(
            "blessed mini corpus ({} scenarios) at {}; commit it to pin",
            entries.len(),
            dir.display()
        );
        return;
    }

    assert_eq!(
        existing.len(),
        mini_corpus_plan().len(),
        "checked-in corpus out of sync with mini_corpus_plan; re-bless deliberately"
    );

    let rows = replay(&existing, default_classifier(), TOLERANCE);
    for row in &rows {
        assert_eq!(
            row.stored_digest, row.replayed_digest,
            "{}: regret digest drifted — determinism broke or the corpus is stale",
            row.name
        );
        assert!(
            !row.worsened,
            "{}: max regret worsened {:.4} -> {:.4} (tolerance {TOLERANCE})",
            row.name, row.stored_max, row.replayed_max
        );
    }
}
