//! Property tests for the scenario mutator (ISSUE 6 satellite 1).
//!
//! The two contracts the search engine leans on:
//!
//! 1. **Validity**: any chain of mutations starting from a valid
//!    campaign scenario stays within the physical bounds of
//!    `libra_channel::bounds` — poses inside the room with wall
//!    clearance, blocker discs/attenuations in human ranges,
//!    interferers within reach, entity counts bounded.
//! 2. **Reproducibility**: mutation is a pure function of
//!    `(spec, seed)`, checked bitwise through `binser` bytes.

use libra_channel::ScenarioBounds;
use libra_dataset::{main_campaign_plan, testing_campaign_plan};
use libra_fuzz::Mutator;
use libra_util::binser;
use libra_util::rng::derive_seed_index;
use proptest::prelude::*;

proptest! {
    // Mutation chains: pick any seed scenario, apply up to 6 chained
    // mutations, and demand validity after every step.
    #[test]
    fn mutation_chains_stay_within_bounds(
        scenario_idx in 0usize..64,
        seed in any::<u64>(),
        depth in 1usize..6,
    ) {
        let pool = main_campaign_plan();
        let m = Mutator::default();
        let mut spec = pool[scenario_idx % pool.len()].clone();
        prop_assert!(spec.validate(&m.bounds).is_ok());
        for step in 0..depth {
            spec = m.mutate(&spec, derive_seed_index(seed, step as u64));
            if let Err(e) = spec.validate(&m.bounds) {
                return Err(TestCaseError::fail(format!("step {step}: {e}")));
            }
        }
    }

    // Same seed, same mutant — bitwise.
    #[test]
    fn mutation_is_bitwise_reproducible(
        scenario_idx in 0usize..64,
        seed in any::<u64>(),
    ) {
        let pool = main_campaign_plan();
        let m = Mutator::default();
        let spec = &pool[scenario_idx % pool.len()];
        let a = binser::to_bytes(&m.mutate(spec, seed)).unwrap();
        let b = binser::to_bytes(&m.mutate(spec, seed)).unwrap();
        prop_assert_eq!(a, b);
    }
}

// Not a property, but the anchor the properties build on: every
// hand-written campaign scenario is valid under the default bounds, so
// "mutants stay valid" starts from a true premise for the whole plan.
#[test]
fn every_campaign_scenario_is_valid() {
    let bounds = ScenarioBounds::default();
    for spec in main_campaign_plan()
        .iter()
        .chain(testing_campaign_plan().iter())
    {
        spec.validate(&bounds)
            .unwrap_or_else(|e| panic!("invalid plan scenario: {e}"));
    }
}
