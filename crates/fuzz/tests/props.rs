//! Property tests for the scenario mutator (ISSUE 6 satellite 1).
//!
//! The two contracts the search engine leans on:
//!
//! 1. **Validity**: any chain of mutations starting from a valid
//!    campaign scenario stays within the physical bounds of
//!    `libra_channel::bounds` — poses inside the room with wall
//!    clearance, blocker discs/attenuations in human ranges,
//!    interferers within reach, entity counts bounded.
//! 2. **Reproducibility**: mutation is a pure function of
//!    `(spec, seed)`, checked bitwise through `binser` bytes.

use libra_channel::ScenarioBounds;
use libra_dataset::{main_campaign_plan, testing_campaign_plan, Impairment};
use libra_fuzz::Mutator;
use libra_util::binser;
use libra_util::rng::{derive_seed_index, rng_from_seed};
use proptest::prelude::*;

proptest! {
    // Mutation chains: pick any seed scenario, apply up to 6 chained
    // mutations, and demand validity after every step.
    #[test]
    fn mutation_chains_stay_within_bounds(
        scenario_idx in 0usize..64,
        seed in any::<u64>(),
        depth in 1usize..6,
    ) {
        let pool = main_campaign_plan();
        let m = Mutator::default();
        let mut spec = pool[scenario_idx % pool.len()].clone();
        prop_assert!(spec.validate(&m.bounds).is_ok());
        for step in 0..depth {
            spec = m.mutate(&spec, derive_seed_index(seed, step as u64));
            if let Err(e) = spec.validate(&m.bounds) {
                return Err(TestCaseError::fail(format!("step {step}: {e}")));
            }
        }
    }

    // Waypoint-path mobility mutation: inserted intermediates are
    // bounded by the state cap, keyed `-wpN`, typed Displacement, and
    // never displace the original states. (Validity of accepted
    // mutants is the chain property above — a lerp across the
    // non-convex L-corridor may leave the room, which `mutate`'s
    // retry-and-revert filters out.)
    #[test]
    fn waypoint_paths_are_bounded(
        scenario_idx in 0usize..64,
        seed in any::<u64>(),
    ) {
        let pool = main_campaign_plan();
        let m = Mutator::default();
        let spec = pool[scenario_idx % pool.len()].clone();
        let cap = m.max_states.min(m.bounds.max_states);
        let mut grown = spec.clone();
        let mut rng = rng_from_seed(seed);
        let changed = m.waypoint_path(&mut grown, &mut rng);
        if !changed {
            prop_assert!(spec.new_states.len() >= cap, "refused below the cap");
            prop_assert_eq!(
                binser::to_bytes(&grown).unwrap(),
                binser::to_bytes(&spec).unwrap()
            );
            return Ok(());
        }
        let added = grown.new_states.len() - spec.new_states.len();
        prop_assert!((1..=3).contains(&added));
        prop_assert!(grown.new_states.len() <= cap);
        let mut originals = Vec::new();
        for st in &grown.new_states {
            if st.position_key.contains("-wp") {
                prop_assert_eq!(st.kind, Impairment::Displacement);
            } else {
                originals.push(binser::to_bytes(st).unwrap());
            }
        }
        let expected: Vec<_> = spec
            .new_states
            .iter()
            .map(|st| binser::to_bytes(st).unwrap())
            .collect();
        prop_assert_eq!(originals, expected, "original states changed");
    }

    // Same seed, same mutant — bitwise.
    #[test]
    fn mutation_is_bitwise_reproducible(
        scenario_idx in 0usize..64,
        seed in any::<u64>(),
    ) {
        let pool = main_campaign_plan();
        let m = Mutator::default();
        let spec = &pool[scenario_idx % pool.len()];
        let a = binser::to_bytes(&m.mutate(spec, seed)).unwrap();
        let b = binser::to_bytes(&m.mutate(spec, seed)).unwrap();
        prop_assert_eq!(a, b);
    }
}

// Not a property, but the anchor the properties build on: every
// hand-written campaign scenario is valid under the default bounds, so
// "mutants stay valid" starts from a true premise for the whole plan.
#[test]
fn every_campaign_scenario_is_valid() {
    let bounds = ScenarioBounds::default();
    for spec in main_campaign_plan()
        .iter()
        .chain(testing_campaign_plan().iter())
    {
        spec.validate(&bounds)
            .unwrap_or_else(|e| panic!("invalid plan scenario: {e}"));
    }
}
