//! Thread-count invariance of the fuzz pipeline (ISSUE 6 satellite 2),
//! matching the contract of `crates/bench/tests/determinism.rs`: every
//! artifact — corpus entries, manifest bytes, replay regret digests —
//! is bitwise identical at 1 worker thread and at N.
//!
//! The parallel count honours `LIBRA_THREADS` when it asks for 2+
//! workers (CI pins it), and defaults to 4 otherwise.

use libra_fuzz::{load_corpus, manifest_json, replay, run_fuzz, save_corpus, FuzzConfig};
use libra_util::binser;
use libra_util::par::set_threads;

fn parallel_threads() -> usize {
    std::env::var("LIBRA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

fn small_cfg() -> FuzzConfig {
    FuzzConfig {
        seed: 0xF12D,
        budget: 6,
        batch: 3,
        ..FuzzConfig::default()
    }
}

#[test]
fn corpus_and_replay_are_thread_count_invariant() {
    let clf = libra_fuzz::default_classifier();
    let cfg = small_cfg();

    set_threads(1);
    let seq = run_fuzz(&cfg, clf);
    let seq_manifest = manifest_json(&seq.corpus);
    let seq_replay = binser::to_bytes(&replay(&seq.corpus, clf, 0.0)).expect("serialize replay");

    set_threads(parallel_threads());
    let par = run_fuzz(&cfg, clf);
    let par_manifest = manifest_json(&par.corpus);
    let par_replay = binser::to_bytes(&replay(&par.corpus, clf, 0.0)).expect("serialize replay");
    set_threads(0);

    assert_eq!(
        seq_manifest, par_manifest,
        "corpus manifest differs across thread counts"
    );
    assert_eq!(
        binser::to_bytes(&seq.corpus).unwrap(),
        binser::to_bytes(&par.corpus).unwrap(),
        "corpus entries differ across thread counts"
    );
    assert_eq!(
        seq_replay, par_replay,
        "replay rows differ across thread counts"
    );

    // Replay must also reproduce the digests recorded at discovery.
    let rows = replay(&seq.corpus, clf, 0.0);
    for row in &rows {
        assert_eq!(
            row.stored_digest, row.replayed_digest,
            "{}: replay digest drifted from discovery",
            row.name
        );
        assert!(!row.worsened, "{}: regret worsened on replay", row.name);
    }
}

#[test]
fn corpus_survives_disk_roundtrip() {
    let clf = libra_fuzz::default_classifier();
    let out = run_fuzz(
        &FuzzConfig {
            budget: 3,
            batch: 3,
            ..small_cfg()
        },
        clf,
    );
    assert!(
        !out.corpus.is_empty(),
        "tiny run kept nothing — first candidates always bring new coverage"
    );

    let dir = std::env::temp_dir().join(format!("libra-fuzz-determinism-{}", std::process::id()));
    save_corpus(&dir, &out.corpus).expect("save corpus");
    let loaded = load_corpus(&dir).expect("load corpus");
    std::fs::remove_dir_all(&dir).ok();

    // Same entries, bitwise (load sorts by file name, so compare as
    // name-sorted sets).
    let mut saved = out.corpus.clone();
    saved.sort_by(|a, b| a.spec.name.cmp(&b.spec.name));
    assert_eq!(
        binser::to_bytes(&saved).unwrap(),
        binser::to_bytes(&loaded).unwrap(),
        "corpus changed across save/load"
    );
}
