//! # libra-cli
//!
//! The `libractl` command-line tool: generate datasets, train and
//! inspect models, and run link-adaptation simulations from a shell.
//!
//! ```text
//! libractl dataset generate --plan main --out main.bin --csv main.csv
//! libractl dataset summary  --input main.bin --alpha 0.7 --ba-ms 5
//! libractl train            --dataset main.bin --out model.bin
//! libractl classify         --model model.bin --snr-diff 14 --cdr 0 --initial-mcs 4
//! libractl simulate         --model model.bin --dataset test.bin --ba-ms 0.5 --fat-ms 2
//! libractl timeline         --model model.bin --scenario mixed --timelines 10
//! libractl info
//! ```
//!
//! This crate holds the argument-parsing and command logic (testable);
//! the thin binary lives in `src/bin/libractl.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::run;
